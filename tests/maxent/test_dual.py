"""Tests for the convex dual (L-BFGS) solver."""

import numpy as np
import pytest

from repro.exceptions import ConstraintError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.dual import fit_dual
from repro.maxent.ipf import fit_ipf


@pytest.fixture
def paper_constraints(table):
    constraints = ConstraintSet.first_order(table)
    constraints.add_cell(
        constraints.cell_from_table(
            table, ["SMOKING", "FAMILY_HISTORY"], [0, 1]
        )
    )
    return constraints


class TestAgreement:
    def test_matches_ipf_first_order(self, table):
        constraints = ConstraintSet.first_order(table)
        dual = fit_dual(constraints, tol=1e-8)
        ipf = fit_ipf(constraints)
        assert np.allclose(dual.model.joint(), ipf.model.joint(), atol=1e-7)

    def test_matches_ipf_with_cell(self, paper_constraints):
        dual = fit_dual(paper_constraints, tol=1e-8)
        ipf = fit_ipf(paper_constraints)
        assert np.allclose(dual.model.joint(), ipf.model.joint(), atol=1e-7)

    def test_matches_ipf_with_subset_margin(self, table):
        constraints = ConstraintSet.first_order(table)
        constraints.set_subset_margin(
            ["SMOKING", "CANCER"],
            constraints.subset_margin_from_table(table, ["SMOKING", "CANCER"]),
        )
        dual = fit_dual(constraints, tol=1e-8)
        ipf = fit_ipf(constraints)
        assert np.allclose(dual.model.joint(), ipf.model.joint(), atol=1e-6)

    def test_constraints_satisfied(self, paper_constraints):
        fit = fit_dual(paper_constraints, tol=1e-8)
        model = fit.model
        for name in paper_constraints.schema.names:
            assert np.allclose(
                model.marginal([name]),
                paper_constraints.margin(name),
                atol=1e-7,
            )
        pair = model.marginal(["SMOKING", "FAMILY_HISTORY"])
        assert pair[0, 1] == pytest.approx(750 / 3428, abs=1e-7)

    def test_factored_form(self, paper_constraints):
        """The dual multipliers land in the same a-factor slots."""
        fit = fit_dual(paper_constraints, tol=1e-8)
        assert set(fit.model.cell_factors) == {
            (("SMOKING", "FAMILY_HISTORY"), (0, 1))
        }
        assert fit.model.cell_factors[
            (("SMOKING", "FAMILY_HISTORY"), (0, 1))
        ] > 1.0


class TestEdgeCases:
    def test_degenerate_target_rejected(self, table):
        constraints = ConstraintSet.first_order(table)
        from repro.maxent.constraints import CellConstraint

        constraints.add_cell(
            CellConstraint(("SMOKING", "CANCER"), (0, 0), 0.0)
        )
        with pytest.raises(ConstraintError, match="strictly inside"):
            fit_dual(constraints)

    def test_zero_margin_rejected(self, table):
        constraints = ConstraintSet(table.schema)
        constraints.set_margin("SMOKING", [0.5, 0.5, 0.0])
        constraints.set_margin(
            "CANCER", table.first_order_probabilities("CANCER")
        )
        constraints.set_margin(
            "FAMILY_HISTORY", table.first_order_probabilities("FAMILY_HISTORY")
        )
        with pytest.raises(ConstraintError, match="strictly inside"):
            fit_dual(constraints)

    def test_reports_iterations(self, paper_constraints):
        fit = fit_dual(paper_constraints, tol=1e-8)
        assert fit.converged
        assert fit.sweeps >= 1
        assert fit.max_violation < 1e-8
