"""Tests for the IPF solver."""

import numpy as np
import pytest

from repro.exceptions import ConstraintError, ConvergenceError
from repro.maxent.constraints import CellConstraint, ConstraintSet
from repro.maxent.ipf import fit_ipf


@pytest.fixture
def paper_constraints(table):
    """First-order margins plus the Table-2 cell (SMOKING=1, FH=2)."""
    constraints = ConstraintSet.first_order(table)
    constraints.add_cell(
        constraints.cell_from_table(
            table, ["SMOKING", "FAMILY_HISTORY"], [0, 1]
        )
    )
    return constraints


class TestFirstOrderOnly:
    def test_recovers_independence(self, table):
        constraints = ConstraintSet.first_order(table)
        fit = fit_ipf(constraints)
        assert fit.converged
        expected = np.einsum(
            "i,j,k->ijk",
            constraints.margin("SMOKING"),
            constraints.margin("CANCER"),
            constraints.margin("FAMILY_HISTORY"),
        )
        assert np.allclose(fit.model.joint(), expected, atol=1e-9)

    def test_converges_in_one_sweep(self, table):
        constraints = ConstraintSet.first_order(table)
        fit = fit_ipf(constraints)
        assert fit.sweeps <= 2


class TestCellConstraints:
    def test_satisfies_all_constraints(self, paper_constraints):
        fit = fit_ipf(paper_constraints)
        model = fit.model
        for name in paper_constraints.schema.names:
            assert np.allclose(
                model.marginal([name]),
                paper_constraints.margin(name),
                atol=1e-8,
            )
        pair = model.marginal(["SMOKING", "FAMILY_HISTORY"])
        assert pair[0, 1] == pytest.approx(750 / 3428, abs=1e-8)

    def test_joint_normalized(self, paper_constraints):
        fit = fit_ipf(paper_constraints)
        assert fit.model.joint().sum() == pytest.approx(1.0)

    def test_untouched_attribute_stays_independent(self, paper_constraints):
        """The paper notes B drops out of the AC-constraint equations:
        CANCER stays independent of the (SMOKING, FH) pair."""
        fit = fit_ipf(paper_constraints)
        joint = fit.model.joint()
        cancer = fit.model.marginal(["CANCER"])
        pair = fit.model.marginal(["SMOKING", "FAMILY_HISTORY"])
        expected = np.einsum("ik,j->ijk", pair, cancer)
        assert np.allclose(joint, expected, atol=1e-8)

    def test_history_monotone_progress(self, paper_constraints):
        fit = fit_ipf(paper_constraints)
        assert fit.history[-1] < fit.history[0]

    def test_warm_start_faster(self, paper_constraints):
        cold = fit_ipf(paper_constraints)
        warm = fit_ipf(paper_constraints, initial=cold.model)
        assert warm.sweeps <= cold.sweeps
        assert np.allclose(warm.model.joint(), cold.model.joint(), atol=1e-8)

    def test_multiple_cells(self, table):
        constraints = ConstraintSet.first_order(table)
        for subset, values in [
            (("SMOKING", "CANCER"), (0, 0)),
            (("SMOKING", "FAMILY_HISTORY"), (0, 1)),
            (("CANCER", "FAMILY_HISTORY"), (0, 0)),
        ]:
            constraints.add_cell(
                constraints.cell_from_table(table, list(subset), list(values))
            )
        fit = fit_ipf(constraints)
        model = fit.model
        for cell in constraints.cells:
            marginal = model.marginal(list(cell.attributes))
            assert marginal[cell.values] == pytest.approx(
                cell.probability, abs=1e-8
            )

    def test_zero_probability_cell(self, table):
        constraints = ConstraintSet.first_order(table)
        constraints.add_cell(
            CellConstraint(("SMOKING", "CANCER"), (0, 0), 0.0)
        )
        fit = fit_ipf(constraints)
        pair = fit.model.marginal(["SMOKING", "CANCER"])
        assert pair[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_near_one_cell_rejected(self, table):
        constraints = ConstraintSet(table.schema)
        for name in table.schema.names:
            constraints.set_margin(
                name, table.first_order_probabilities(name)
            )
        constraints._cells[(("SMOKING", "CANCER"), (0, 0))] = CellConstraint(
            ("SMOKING", "CANCER"), (0, 0), 1.0
        )
        with pytest.raises(ConstraintError, match="target ~1"):
            fit_ipf(constraints)

    def test_trace_recording(self, paper_constraints):
        fit = fit_ipf(paper_constraints, record_trace=True)
        assert len(fit.trace) == fit.sweeps
        assert "a0" in fit.trace[0]

    def test_convergence_error(self, paper_constraints):
        with pytest.raises(ConvergenceError, match="did not converge"):
            fit_ipf(paper_constraints, tol=1e-15, max_sweeps=1)

    def test_best_effort_mode(self, paper_constraints):
        fit = fit_ipf(
            paper_constraints,
            tol=1e-15,
            max_sweeps=1,
            require_convergence=False,
        )
        assert not fit.converged
        assert fit.sweeps == 1


class TestMaxEntProperty:
    def test_entropy_not_below_empirical(self, table, paper_constraints):
        """The defining property: among distributions satisfying the
        constraints, the fit has maximal entropy.  The empirical joint
        satisfies them too (constraints came from the data), so its entropy
        is a lower bound."""
        from repro.maxent.entropy import entropy

        fit = fit_ipf(paper_constraints)
        assert entropy(fit.model.joint()) >= entropy(
            table.probabilities()
        ) - 1e-9

    def test_factored_form_preserved(self, paper_constraints):
        """The solution stays in Eq-12 product form: one scalar per cell
        constraint, vectors per margin, nothing else."""
        fit = fit_ipf(paper_constraints)
        assert set(fit.model.cell_factors) == {
            (("SMOKING", "FAMILY_HISTORY"), (0, 1))
        }

    def test_incomplete_constraints_rejected(self, table):
        constraints = ConstraintSet(table.schema)
        constraints.set_margin(
            "SMOKING", table.first_order_probabilities("SMOKING")
        )
        with pytest.raises(ConstraintError, match="missing"):
            fit_ipf(constraints)
