"""Tests for the paper's Gauss–Seidel solver and its Table-2 trace."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.gevarter import fit_gevarter
from repro.maxent.ipf import fit_ipf


@pytest.fixture
def paper_constraints(table):
    constraints = ConstraintSet.first_order(table)
    constraints.add_cell(
        constraints.cell_from_table(
            table, ["SMOKING", "FAMILY_HISTORY"], [0, 1]
        )
    )
    return constraints


class TestFixedPoint:
    def test_satisfies_constraints(self, paper_constraints):
        fit = fit_gevarter(paper_constraints)
        assert fit.converged
        model = fit.model
        pair = model.marginal(["SMOKING", "FAMILY_HISTORY"])
        assert pair[0, 1] == pytest.approx(750 / 3428, abs=1e-8)
        for name in paper_constraints.schema.names:
            assert np.allclose(
                model.marginal([name]),
                paper_constraints.margin(name),
                atol=1e-8,
            )

    def test_agrees_with_ipf(self, paper_constraints):
        """Both solvers reach the same (unique) maxent distribution."""
        gevarter = fit_gevarter(paper_constraints)
        ipf = fit_ipf(paper_constraints)
        assert np.allclose(
            gevarter.model.joint(), ipf.model.joint(), atol=1e-8
        )

    def test_agrees_with_ipf_multiple_cells(self, table):
        constraints = ConstraintSet.first_order(table)
        for subset, values in [
            (("SMOKING", "CANCER"), (0, 0)),
            (("SMOKING", "FAMILY_HISTORY"), (0, 1)),
        ]:
            constraints.add_cell(
                constraints.cell_from_table(table, list(subset), list(values))
            )
        gevarter = fit_gevarter(constraints)
        ipf = fit_ipf(constraints)
        assert np.allclose(
            gevarter.model.joint(), ipf.model.joint(), atol=1e-8
        )

    def test_first_order_only_is_immediate(self, table):
        """Eq 60: with margins only, the start point is already the answer."""
        constraints = ConstraintSet.first_order(table)
        fit = fit_gevarter(constraints)
        assert fit.sweeps <= 2
        expected = np.einsum(
            "i,j,k->ijk",
            constraints.margin("SMOKING"),
            constraints.margin("CANCER"),
            constraints.margin("FAMILY_HISTORY"),
        )
        assert np.allclose(fit.model.joint(), expected, atol=1e-9)


class TestTrace:
    def test_trace_starts_at_first_order_values(self, paper_constraints):
        """Table 2 row 0: the a values start at the first-order p's."""
        fit = fit_gevarter(paper_constraints)
        start = fit.trace[0]
        assert start["a^SMOKING_1"] == pytest.approx(1290 / 3428)
        assert start["a^CANCER_2"] == pytest.approx(2995 / 3428)
        assert start["a^SMOKING,FAMILY_HISTORY_1,2"] == 1.0

    def test_trace_length(self, paper_constraints):
        fit = fit_gevarter(paper_constraints)
        # Initial snapshot + one per sweep.
        assert len(fit.trace) == fit.sweeps + 1

    def test_cell_factor_moves_above_one(self, paper_constraints):
        """The constrained cell is in excess (750 observed vs 620 expected),
        so its a factor must end above 1 (the paper's b grows from 1)."""
        fit = fit_gevarter(paper_constraints)
        final = fit.trace[-1]
        assert final["a^SMOKING,FAMILY_HISTORY_1,2"] > 1.0

    def test_trace_optional(self, paper_constraints):
        fit = fit_gevarter(paper_constraints, record_trace=False)
        assert fit.trace == []


class TestConvergenceControl:
    def test_convergence_error(self, paper_constraints):
        with pytest.raises(ConvergenceError):
            fit_gevarter(paper_constraints, tol=1e-15, max_sweeps=1)

    def test_best_effort(self, paper_constraints):
        fit = fit_gevarter(
            paper_constraints,
            tol=1e-15,
            max_sweeps=2,
            require_convergence=False,
        )
        assert not fit.converged

    def test_warm_start(self, paper_constraints):
        cold = fit_gevarter(paper_constraints)
        warm = fit_gevarter(paper_constraints, initial=cold.model)
        assert warm.sweeps <= cold.sweeps
