"""Tests for constraint construction and validation."""

import numpy as np
import pytest

from repro.exceptions import ConstraintError
from repro.maxent.constraints import CellConstraint, ConstraintSet


class TestCellConstraint:
    def test_basic(self):
        constraint = CellConstraint(("A", "B"), (0, 1), 0.25)
        assert constraint.order == 2
        assert constraint.key == (("A", "B"), (0, 1))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConstraintError, match="lengths"):
            CellConstraint(("A", "B"), (0,), 0.25)

    def test_rejects_first_order(self):
        with pytest.raises(ConstraintError, match="order"):
            CellConstraint(("A",), (0,), 0.25)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConstraintError, match="probability"):
            CellConstraint(("A", "B"), (0, 1), 1.5)

    def test_matches(self, schema):
        constraint = CellConstraint(("SMOKING", "FAMILY_HISTORY"), (0, 1), 0.2)
        assert constraint.matches(schema, (0, 0, 1))
        assert constraint.matches(schema, (0, 1, 1))
        assert not constraint.matches(schema, (1, 0, 1))
        assert not constraint.matches(schema, (0, 0, 0))

    def test_describe(self, schema):
        constraint = CellConstraint(("SMOKING", "CANCER"), (0, 0), 0.07)
        text = constraint.describe(schema)
        assert "SMOKING=smoker" in text
        assert "CANCER=yes" in text
        assert "0.07" in text


class TestConstraintSet:
    def test_first_order_from_table(self, table):
        constraints = ConstraintSet.first_order(table)
        constraints.validate_complete()
        assert constraints.margin("CANCER") == pytest.approx(
            [433 / 3428, 2995 / 3428]
        )
        assert len(constraints.cells) == 0

    def test_margin_validation(self, table):
        constraints = ConstraintSet(table.schema)
        with pytest.raises(ConstraintError, match="sum to 1"):
            constraints.set_margin("CANCER", [0.5, 0.6])
        with pytest.raises(ConstraintError, match="length"):
            constraints.set_margin("CANCER", [1.0])
        with pytest.raises(ConstraintError, match="negative"):
            constraints.set_margin("CANCER", [1.2, -0.2])

    def test_validate_complete_missing(self, table):
        constraints = ConstraintSet(table.schema)
        with pytest.raises(ConstraintError, match="missing"):
            constraints.validate_complete()

    def test_add_cell_canonical_order_required(self, table):
        constraints = ConstraintSet.first_order(table)
        with pytest.raises(ConstraintError, match="canonical"):
            constraints.add_cell(
                CellConstraint(("CANCER", "SMOKING"), (0, 0), 0.07)
            )

    def test_add_cell_value_range(self, table):
        constraints = ConstraintSet.first_order(table)
        with pytest.raises(ConstraintError, match="out of range"):
            constraints.add_cell(
                CellConstraint(("SMOKING", "CANCER"), (9, 0), 0.07)
            )

    def test_add_cell_duplicate(self, table):
        constraints = ConstraintSet.first_order(table)
        cell = CellConstraint(("SMOKING", "CANCER"), (0, 0), 0.07)
        constraints.add_cell(cell)
        with pytest.raises(ConstraintError, match="duplicate"):
            constraints.add_cell(cell)

    def test_add_cell_exceeding_margin(self, table):
        constraints = ConstraintSet.first_order(table)
        # P(SMOKING=smoker) ~ .376, so a pair cell at .5 is impossible.
        with pytest.raises(ConstraintError, match="exceeds margin"):
            constraints.add_cell(
                CellConstraint(("SMOKING", "CANCER"), (0, 0), 0.5)
            )

    def test_add_cell_exceeding_containing_cell(self, table):
        constraints = ConstraintSet.first_order(table)
        constraints.add_cell(
            CellConstraint(("SMOKING", "CANCER"), (0, 0), 0.07)
        )
        with pytest.raises(ConstraintError, match="containing"):
            constraints.add_cell(
                CellConstraint(
                    ("SMOKING", "CANCER", "FAMILY_HISTORY"), (0, 0, 0), 0.12
                )
            )

    def test_cell_from_table(self, table):
        constraints = ConstraintSet.first_order(table)
        constraint = constraints.cell_from_table(
            table, ["FAMILY_HISTORY", "SMOKING"], [1, 0]
        )
        # Canonicalized to (SMOKING, FAMILY_HISTORY) order, values realigned.
        assert constraint.attributes == ("SMOKING", "FAMILY_HISTORY")
        assert constraint.values == (0, 1)
        assert constraint.probability == pytest.approx(750 / 3428)

    def test_cells_of_order(self, table):
        constraints = ConstraintSet.first_order(table)
        constraints.add_cell(
            CellConstraint(("SMOKING", "CANCER"), (0, 0), 0.07)
        )
        assert len(constraints.cells_of_order(2)) == 1
        assert len(constraints.cells_of_order(3)) == 0

    def test_copy_is_independent(self, table):
        constraints = ConstraintSet.first_order(table)
        clone = constraints.copy()
        clone.add_cell(CellConstraint(("SMOKING", "CANCER"), (0, 0), 0.07))
        assert len(constraints.cells) == 0
        assert len(clone.cells) == 1
        clone._margins["CANCER"][0] = 0.9
        assert constraints.margin("CANCER")[0] != pytest.approx(0.9)

    def test_len_and_iter(self, table):
        constraints = ConstraintSet.first_order(table)
        constraints.add_cell(CellConstraint(("SMOKING", "CANCER"), (0, 0), 0.07))
        assert len(constraints) == 4  # 3 margins + 1 cell
        assert [c.key for c in constraints] == [(("SMOKING", "CANCER"), (0, 0))]

    def test_margin_unknown(self, table):
        constraints = ConstraintSet(table.schema)
        with pytest.raises(ConstraintError, match="no margin"):
            constraints.margin("CANCER")

    def test_margins_from_numpy(self, table):
        constraints = ConstraintSet(table.schema)
        constraints.set_margin("CANCER", np.array([0.2, 0.8]))
        assert constraints.has_margin("CANCER")
        assert not constraints.has_margin("SMOKING")
