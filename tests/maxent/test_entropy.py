"""Tests for entropy / information helpers."""

import math

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.maxent.entropy import (
    conditional_entropy,
    entropy,
    kl_divergence,
    mutual_information,
)


class TestEntropy:
    def test_uniform_is_log_n(self):
        assert entropy(np.full(8, 1 / 8)) == pytest.approx(math.log(8))

    def test_point_mass_is_zero(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0)

    def test_tensor_input(self):
        joint = np.full((2, 2), 0.25)
        assert entropy(joint) == pytest.approx(math.log(4))

    def test_rejects_non_distribution(self):
        with pytest.raises(DataError, match="sum to 1"):
            entropy(np.array([0.5, 0.2]))

    def test_rejects_negative(self):
        with pytest.raises(DataError, match="non-negative"):
            entropy(np.array([1.2, -0.2]))


class TestKL:
    def test_zero_for_identical(self):
        p = np.array([0.3, 0.7])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_positive_for_different(self):
        assert kl_divergence(np.array([0.9, 0.1]), np.array([0.5, 0.5])) > 0

    def test_infinite_when_support_mismatch(self):
        assert kl_divergence(
            np.array([0.5, 0.5]), np.array([1.0, 0.0])
        ) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(DataError, match="sizes"):
            kl_divergence(np.array([1.0]), np.array([0.5, 0.5]))


class TestMutualInformation:
    def test_independent_is_zero(self):
        joint = np.outer([0.3, 0.7], [0.4, 0.6])
        assert mutual_information(joint) == pytest.approx(0.0, abs=1e-12)

    def test_perfectly_dependent(self):
        joint = np.array([[0.5, 0.0], [0.0, 0.5]])
        assert mutual_information(joint) == pytest.approx(math.log(2))

    def test_requires_2d(self):
        with pytest.raises(DataError, match="2-D"):
            mutual_information(np.full(4, 0.25))


class TestConditionalEntropy:
    def test_chain_rule(self):
        joint = np.array([[0.25, 0.25], [0.1, 0.4]])
        col = joint.sum(axis=0)
        assert conditional_entropy(joint) == pytest.approx(
            entropy(joint) - entropy(col)
        )

    def test_deterministic_given_col(self):
        joint = np.array([[0.5, 0.0], [0.0, 0.5]])
        assert conditional_entropy(joint) == pytest.approx(0.0, abs=1e-12)
