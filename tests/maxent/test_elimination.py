"""Tests for the Appendix-B factored evaluation (variable elimination)."""

import numpy as np
import pytest

from repro.data.schema import Attribute, Schema
from repro.exceptions import QueryError
from repro.maxent import elimination
from repro.maxent.constraints import ConstraintSet
from repro.maxent.ipf import fit_ipf
from repro.maxent.model import MaxEntModel


@pytest.fixture
def fitted_model(table):
    constraints = ConstraintSet.first_order(table)
    for subset, values in [
        (("SMOKING", "CANCER"), (0, 0)),
        (("SMOKING", "FAMILY_HISTORY"), (0, 1)),
    ]:
        constraints.add_cell(
            constraints.cell_from_table(table, list(subset), list(values))
        )
    return fit_ipf(constraints).model


class TestFactorAlgebra:
    def test_multiply_broadcasts(self):
        a = elimination.Factor(("X",), np.array([1.0, 2.0]))
        b = elimination.Factor(("Y",), np.array([3.0, 4.0, 5.0]))
        product = elimination.multiply(a, b)
        assert product.names == ("X", "Y")
        assert product.table.shape == (2, 3)
        assert product.table[1, 2] == pytest.approx(10.0)

    def test_multiply_shared_axis(self):
        a = elimination.Factor(("X", "Y"), np.ones((2, 3)))
        b = elimination.Factor(("Y",), np.array([1.0, 2.0, 3.0]))
        product = elimination.multiply(a, b)
        assert product.names == ("X", "Y")
        assert np.allclose(product.table[0], [1, 2, 3])

    def test_sum_out(self):
        factor = elimination.Factor(("X", "Y"), np.arange(6.0).reshape(2, 3))
        reduced = elimination.sum_out(factor, "Y")
        assert reduced.names == ("X",)
        assert reduced.table.tolist() == [3.0, 12.0]

    def test_sum_out_absent_is_noop(self):
        factor = elimination.Factor(("X",), np.ones(2))
        assert elimination.sum_out(factor, "Z") is factor

    def test_restrict(self):
        factor = elimination.Factor(("X", "Y"), np.arange(6.0).reshape(2, 3))
        restricted = elimination.restrict(factor, {"X": 1})
        assert restricted.names == ("Y",)
        assert restricted.table.tolist() == [3.0, 4.0, 5.0]

    def test_rank_mismatch_rejected(self):
        with pytest.raises(QueryError):
            elimination.Factor(("X",), np.ones((2, 2)))


class TestPartitionSum:
    def test_matches_dense(self, fitted_model):
        dense = float(fitted_model.unnormalized().sum())
        factored = elimination.partition_sum(fitted_model)
        assert factored == pytest.approx(dense, rel=1e-12)

    def test_with_evidence(self, fitted_model):
        evidence = {"SMOKING": "smoker"}
        dense = float(fitted_model.unnormalized()[0].sum())
        factored = elimination.partition_sum(fitted_model, evidence)
        assert factored == pytest.approx(dense, rel=1e-12)

    def test_full_evidence(self, fitted_model):
        evidence = {"SMOKING": 0, "CANCER": 0, "FAMILY_HISTORY": 0}
        dense = float(fitted_model.unnormalized()[0, 0, 0])
        assert elimination.partition_sum(
            fitted_model, evidence
        ) == pytest.approx(dense, rel=1e-12)


class TestQueries:
    def test_query_matches_dense_conditional(self, fitted_model):
        target = {"CANCER": "yes"}
        given = {"SMOKING": "smoker", "FAMILY_HISTORY": "yes"}
        assert elimination.query(fitted_model, target, given) == pytest.approx(
            fitted_model.conditional(target, given), rel=1e-10
        )

    def test_query_marginal(self, fitted_model):
        target = {"CANCER": "yes"}
        assert elimination.query(fitted_model, target) == pytest.approx(
            fitted_model.probability(target), rel=1e-10
        )

    def test_conflicting_evidence(self, fitted_model):
        with pytest.raises(QueryError, match="conflict"):
            elimination.query(
                fitted_model, {"CANCER": "yes"}, {"CANCER": "no"}
            )

    def test_marginal_matches_dense(self, fitted_model):
        factored = elimination.marginal(
            fitted_model, ["SMOKING", "FAMILY_HISTORY"]
        )
        dense = fitted_model.marginal(["SMOKING", "FAMILY_HISTORY"])
        assert np.allclose(factored, dense, atol=1e-12)

    def test_marginal_order_canonicalized(self, fitted_model):
        forward = elimination.marginal(fitted_model, ["SMOKING", "CANCER"])
        backward = elimination.marginal(fitted_model, ["CANCER", "SMOKING"])
        assert np.allclose(forward, backward)


class TestWideSchema:
    def test_chain_structure_scales(self):
        """A 14-attribute chain: dense would be 2^14 cells per query path;
        elimination handles it through small intermediate factors."""
        attributes = [
            Attribute(f"X{i}", ("a", "b")) for i in range(14)
        ]
        schema = Schema(attributes)
        model = MaxEntModel(schema)
        for i in range(13):
            model.cell_factors[((f"X{i}", f"X{i+1}"), (0, 0))] = 2.0
        factored = elimination.partition_sum(model)
        dense = float(model.unnormalized().sum())
        assert factored == pytest.approx(dense, rel=1e-9)

    def test_min_fill_order_covers_all(self):
        factors = [
            elimination.Factor(("A", "B"), np.ones((2, 2))),
            elimination.Factor(("B", "C"), np.ones((2, 2))),
            elimination.Factor(("C", "D"), np.ones((2, 2))),
        ]
        order = elimination.min_fill_order(factors, ["A", "B", "C", "D"])
        assert sorted(order) == ["A", "B", "C", "D"]
