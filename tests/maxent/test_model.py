"""Tests for the factored maxent model (Eq 12)."""

import numpy as np
import pytest

from repro.data.schema import Attribute, Schema
from repro.exceptions import ConstraintError, QueryError
from repro.maxent.model import MaxEntModel


@pytest.fixture
def margins(table):
    return {
        name: table.first_order_probabilities(name)
        for name in table.schema.names
    }


class TestIndependentModel:
    def test_eq61_product_form(self, schema, margins):
        """Eq 61: with only margins, p_ijk = p_i p_j p_k."""
        model = MaxEntModel.independent(schema, margins)
        joint = model.joint()
        expected = np.einsum(
            "i,j,k->ijk",
            margins["SMOKING"],
            margins["CANCER"],
            margins["FAMILY_HISTORY"],
        )
        assert np.allclose(joint, expected)

    def test_paper_table1_probability(self, schema, margins):
        """Table 1 col 1: p^AB_11 = p^A_1 * p^B_1 ~ .048."""
        model = MaxEntModel.independent(schema, margins)
        probability = model.probability({"SMOKING": "smoker", "CANCER": "yes"})
        assert probability == pytest.approx(0.0475, abs=5e-4)

    def test_joint_sums_to_one(self, schema, margins):
        model = MaxEntModel.independent(schema, margins)
        assert model.joint().sum() == pytest.approx(1.0)

    def test_a_values_equal_first_order(self, schema, margins):
        """Eq 60: the a values are just the first-order probabilities."""
        model = MaxEntModel.independent(schema, margins)
        values = model.a_values()
        assert values["a0"] == 1.0
        assert values["a^SMOKING_1"] == pytest.approx(margins["SMOKING"][0])
        assert values["a^CANCER_2"] == pytest.approx(margins["CANCER"][1])


class TestUniformModel:
    def test_uniform(self, schema):
        model = MaxEntModel.uniform(schema)
        joint = model.joint()
        assert np.allclose(joint, 1.0 / 12)


class TestCellFactors:
    def test_cell_factor_scales_slice(self, schema, margins):
        base = MaxEntModel.independent(schema, margins)
        boosted = MaxEntModel.independent(schema, margins)
        boosted.cell_factors[(("SMOKING", "CANCER"), (0, 0))] = 2.0
        raw_base = base.unnormalized()
        raw_boosted = boosted.unnormalized()
        assert np.allclose(raw_boosted[0, 0, :], 2.0 * raw_base[0, 0, :])
        assert np.allclose(raw_boosted[1:], raw_base[1:])

    def test_joint_renormalizes_defensively(self, schema, margins):
        model = MaxEntModel.independent(schema, margins)
        model.cell_factors[(("SMOKING", "CANCER"), (0, 0))] = 3.0
        assert model.joint().sum() == pytest.approx(1.0)

    def test_normalize_sets_a0(self, schema, margins):
        model = MaxEntModel.independent(schema, margins)
        model.cell_factors[(("SMOKING", "CANCER"), (0, 0))] = 3.0
        model.normalize()
        assert model.unnormalized().sum() * model.a0 == pytest.approx(1.0)

    def test_rejects_negative_cell_factor(self, schema):
        with pytest.raises(ConstraintError, match="negative"):
            MaxEntModel(schema, None, {(("SMOKING", "CANCER"), (0, 0)): -1.0})

    def test_rejects_negative_margin_factor(self, schema):
        with pytest.raises(ConstraintError, match="negative"):
            MaxEntModel(schema, {"CANCER": np.array([-0.1, 1.1])})

    def test_rejects_wrong_margin_shape(self, schema):
        with pytest.raises(ConstraintError, match="shape"):
            MaxEntModel(schema, {"CANCER": np.ones(3)})


class TestQueries:
    def test_marginal(self, schema, margins):
        model = MaxEntModel.independent(schema, margins)
        pair = model.marginal(["SMOKING", "CANCER"])
        assert pair.shape == (3, 2)
        assert pair.sum() == pytest.approx(1.0)
        assert np.allclose(
            pair, np.outer(margins["SMOKING"], margins["CANCER"])
        )

    def test_marginal_order_insensitive(self, schema, margins):
        model = MaxEntModel.independent(schema, margins)
        assert np.allclose(
            model.marginal(["CANCER", "SMOKING"]),
            model.marginal(["SMOKING", "CANCER"]),
        )

    def test_probability_empty_assignment(self, schema, margins):
        model = MaxEntModel.independent(schema, margins)
        assert model.probability({}) == 1.0

    def test_conditional_ratio_identity(self, schema, margins):
        """P(A|B) * P(B) == P(A,B) — the paper's central identity."""
        model = MaxEntModel.independent(schema, margins)
        model.cell_factors[(("SMOKING", "CANCER"), (0, 0))] = 2.0
        target = {"CANCER": "yes"}
        given = {"SMOKING": "smoker"}
        conditional = model.conditional(target, given)
        assert conditional * model.probability(given) == pytest.approx(
            model.probability({**target, **given})
        )

    def test_conditional_independence_case(self, schema, margins):
        model = MaxEntModel.independent(schema, margins)
        assert model.conditional(
            {"CANCER": "yes"}, {"SMOKING": "smoker"}
        ) == pytest.approx(margins["CANCER"][0])

    def test_conditional_conflicting_evidence(self, schema, margins):
        model = MaxEntModel.independent(schema, margins)
        with pytest.raises(QueryError, match="conflict"):
            model.conditional({"CANCER": "yes"}, {"CANCER": "no"})

    def test_conditional_consistent_overlap(self, schema, margins):
        model = MaxEntModel.independent(schema, margins)
        assert model.conditional(
            {"CANCER": "yes"}, {"CANCER": "yes"}
        ) == pytest.approx(1.0)

    def test_conditional_zero_evidence(self, schema):
        margins = {
            "SMOKING": np.array([1.0, 0.0, 0.0]),
            "CANCER": np.array([0.5, 0.5]),
            "FAMILY_HISTORY": np.array([0.5, 0.5]),
        }
        model = MaxEntModel.independent(schema, margins)
        with pytest.raises(QueryError, match="zero"):
            model.conditional({"CANCER": "yes"}, {"SMOKING": "non-smoker"})

    def test_expected_count(self, schema, margins):
        """Eq 33: predicted mean is N * p."""
        model = MaxEntModel.independent(schema, margins)
        mean = model.expected_count(3428, ["SMOKING", "CANCER"], [0, 0])
        expected = 3428 * margins["SMOKING"][0] * margins["CANCER"][0]
        assert mean == pytest.approx(expected)

    def test_expected_count_order_insensitive(self, schema, margins):
        model = MaxEntModel.independent(schema, margins)
        forward = model.expected_count(100, ["SMOKING", "CANCER"], [2, 1])
        backward = model.expected_count(100, ["CANCER", "SMOKING"], [1, 2])
        assert forward == pytest.approx(backward)


class TestCopy:
    def test_copy_is_deep(self, schema, margins):
        model = MaxEntModel.independent(schema, margins)
        clone = model.copy()
        clone.margin_factors["CANCER"][0] = 0.9
        clone.cell_factors[(("SMOKING", "CANCER"), (0, 0))] = 5.0
        assert model.margin_factors["CANCER"][0] != pytest.approx(0.9)
        assert not model.cell_factors

    def test_zero_mass_model(self):
        schema = Schema([Attribute("A", ("x", "y")), Attribute("B", ("u", "v"))])
        model = MaxEntModel(
            schema, {"A": np.zeros(2), "B": np.ones(2)}
        )
        with pytest.raises(ConstraintError, match="zero total mass"):
            model.joint()
