"""Tests for whole-subset marginal constraints (the log-linear extension)."""

import numpy as np
import pytest

from repro.exceptions import ConstraintError
from repro.maxent import elimination
from repro.maxent.constraints import ConstraintSet
from repro.maxent.gevarter import fit_gevarter
from repro.maxent.ipf import fit_ipf


@pytest.fixture
def constraints(table):
    constraints = ConstraintSet.first_order(table)
    constraints.set_subset_margin(
        ["SMOKING", "CANCER"],
        constraints.subset_margin_from_table(table, ["SMOKING", "CANCER"]),
    )
    return constraints


class TestValidation:
    def test_shape_checked(self, table):
        constraints = ConstraintSet.first_order(table)
        with pytest.raises(ConstraintError, match="shape"):
            constraints.set_subset_margin(
                ["SMOKING", "CANCER"], np.ones((2, 2)) / 4
            )

    def test_sum_checked(self, table):
        constraints = ConstraintSet.first_order(table)
        with pytest.raises(ConstraintError, match="sum to 1"):
            constraints.set_subset_margin(
                ["SMOKING", "CANCER"], np.full((3, 2), 0.1)
            )

    def test_negative_rejected(self, table):
        constraints = ConstraintSet.first_order(table)
        array = np.full((3, 2), 1 / 6)
        array[0, 0] = -0.1
        array[0, 1] = 1 / 6 + 0.1 + 1 / 6
        with pytest.raises(ConstraintError, match="negative"):
            constraints.set_subset_margin(["SMOKING", "CANCER"], array)

    def test_first_order_consistency_checked(self, table):
        """A subset margin implying different first-order margins than the
        ones already set is rejected."""
        constraints = ConstraintSet.first_order(table)
        inconsistent = np.array([[0.3, 0.3], [0.1, 0.1], [0.1, 0.1]])
        with pytest.raises(ConstraintError, match="inconsistent"):
            constraints.set_subset_margin(["SMOKING", "CANCER"], inconsistent)

    def test_duplicate_rejected(self, table, constraints):
        with pytest.raises(ConstraintError, match="duplicate"):
            constraints.set_subset_margin(
                ["CANCER", "SMOKING"],
                constraints.subset_margin_from_table(
                    table, ["SMOKING", "CANCER"]
                ),
            )

    def test_single_attribute_rejected(self, table):
        constraints = ConstraintSet.first_order(table)
        with pytest.raises(ConstraintError, match="order >= 2"):
            constraints.set_subset_margin(["CANCER"], np.array([0.2, 0.8]))

    def test_canonical_order_applied(self, table):
        constraints = ConstraintSet.first_order(table)
        target = constraints.subset_margin_from_table(
            table, ["CANCER", "SMOKING"]
        )
        constraints.set_subset_margin(["CANCER", "SMOKING"], target)
        assert constraints.has_subset_margin(["SMOKING", "CANCER"])

    def test_copy_independent(self, table, constraints):
        clone = constraints.copy()
        clone.subset_margins  # accessor works
        assert clone.has_subset_margin(["SMOKING", "CANCER"])


class TestFitting:
    def test_ipf_satisfies_subset_margin(self, table, constraints):
        fit = fit_ipf(constraints)
        assert fit.converged
        pair = fit.model.marginal(["SMOKING", "CANCER"])
        expected = table.marginal(["SMOKING", "CANCER"]) / table.total
        assert np.allclose(pair, expected, atol=1e-8)

    def test_other_attribute_independent(self, table, constraints):
        """With only an AB margin constrained, C stays independent."""
        fit = fit_ipf(constraints)
        joint = fit.model.joint()
        pair = fit.model.marginal(["SMOKING", "CANCER"])
        history = fit.model.marginal(["FAMILY_HISTORY"])
        assert np.allclose(
            joint, np.einsum("ij,k->ijk", pair, history), atol=1e-8
        )

    def test_mixed_cell_and_subset(self, table):
        constraints = ConstraintSet.first_order(table)
        constraints.set_subset_margin(
            ["SMOKING", "CANCER"],
            constraints.subset_margin_from_table(table, ["SMOKING", "CANCER"]),
        )
        constraints.add_cell(
            constraints.cell_from_table(
                table, ["SMOKING", "FAMILY_HISTORY"], [0, 1]
            )
        )
        fit = fit_ipf(constraints)
        pair = fit.model.marginal(["SMOKING", "FAMILY_HISTORY"])
        assert pair[0, 1] == pytest.approx(750 / 3428, abs=1e-8)
        ab = fit.model.marginal(["SMOKING", "CANCER"])
        assert np.allclose(
            ab, table.marginal(["SMOKING", "CANCER"]) / table.total, atol=1e-8
        )

    def test_table_factor_created(self, table, constraints):
        fit = fit_ipf(constraints)
        assert ("SMOKING", "CANCER") in fit.model.table_factors

    def test_gevarter_rejects_subset_margins(self, constraints):
        with pytest.raises(ConstraintError, match="fit_ipf"):
            fit_gevarter(constraints)

    def test_elimination_includes_table_factors(self, table, constraints):
        model = fit_ipf(constraints).model
        dense = float(model.unnormalized().sum())
        assert elimination.partition_sum(model) == pytest.approx(
            dense, rel=1e-10
        )
        target = {"CANCER": "yes"}
        given = {"SMOKING": "smoker"}
        assert elimination.query(model, target, given) == pytest.approx(
            model.conditional(target, given), rel=1e-9
        )

    def test_model_copy_preserves_table_factors(self, table, constraints):
        model = fit_ipf(constraints).model
        clone = model.copy()
        assert np.allclose(
            clone.table_factors[("SMOKING", "CANCER")],
            model.table_factors[("SMOKING", "CANCER")],
        )
        clone.table_factors[("SMOKING", "CANCER")][0, 0] = 99.0
        assert model.table_factors[("SMOKING", "CANCER")][0, 0] != 99.0

    def test_a_values_include_table_factors(self, table, constraints):
        model = fit_ipf(constraints).model
        values = model.a_values()
        assert "a^SMOKING,CANCER_1,1" in values
