"""Shared fixtures: the paper's data, schemas, and seeded RNGs."""

import numpy as np
import pytest

from repro.eval.paper import paper_schema, paper_table


@pytest.fixture
def schema():
    """The paper's smoking/cancer/family-history schema."""
    return paper_schema()


@pytest.fixture
def table():
    """The paper's exact Figure-1 contingency table (N = 3428)."""
    return paper_table()


@pytest.fixture
def rng():
    """A deterministically seeded random generator."""
    return np.random.default_rng(42)
