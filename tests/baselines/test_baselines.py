"""Tests for the independence / empirical / naive Bayes baselines."""

import numpy as np
import pytest

from repro.baselines.empirical import empirical_joint, empirical_model
from repro.baselines.independence import independence_model
from repro.baselines.naive_bayes import NaiveBayesClassifier
from repro.data.contingency import ContingencyTable
from repro.exceptions import DataError, QueryError
from repro.maxent.entropy import entropy


class TestIndependence:
    def test_margins_match_data(self, table):
        model = independence_model(table)
        for name in table.schema.names:
            assert np.allclose(
                model.marginal([name]),
                table.first_order_probabilities(name),
            )

    def test_no_association(self, table):
        model = independence_model(table)
        assert model.conditional(
            {"CANCER": "yes"}, {"SMOKING": "smoker"}
        ) == pytest.approx(model.probability({"CANCER": "yes"}))


class TestEmpirical:
    def test_joint_equals_frequencies(self, table):
        joint = empirical_joint(table)
        assert np.allclose(joint, table.counts / table.total)

    def test_smoothing_fills_zeros(self, schema):
        counts = np.zeros(schema.shape, dtype=np.int64)
        counts[0, 0, 0] = 10
        table = ContingencyTable(schema, counts)
        smoothed = empirical_joint(table, smoothing=1.0)
        assert (smoothed > 0).all()
        assert smoothed.sum() == pytest.approx(1.0)

    def test_model_wrapper_matches_joint(self, table):
        model = empirical_model(table)
        assert np.allclose(model.joint(), empirical_joint(table), atol=1e-12)

    def test_model_queries(self, table):
        model = empirical_model(table)
        assert model.conditional(
            {"CANCER": "yes"}, {"SMOKING": "smoker"}
        ) == pytest.approx(240 / 1290)

    def test_negative_smoothing_rejected(self, table):
        with pytest.raises(DataError):
            empirical_joint(table, smoothing=-1.0)

    def test_entropy_ordering(self, table):
        """Independence >= discovered maxent >= empirical: each model down
        the chain satisfies strictly more data constraints."""
        from repro.discovery.engine import discover

        h_independent = entropy(independence_model(table).joint())
        h_discovered = entropy(discover(table).model.joint())
        h_empirical = entropy(empirical_joint(table))
        assert h_independent >= h_discovered - 1e-9
        assert h_discovered >= h_empirical - 1e-9


class TestNaiveBayes:
    def test_posterior_sums_to_one(self, table):
        classifier = NaiveBayesClassifier(table, "CANCER")
        posterior = classifier.class_distribution({"SMOKING": "smoker"})
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_single_feature_matches_direct_conditional(self, table):
        """With one feature, NB posterior equals the empirical conditional
        (up to smoothing)."""
        classifier = NaiveBayesClassifier(table, "CANCER", smoothing=0.0)
        posterior = classifier.class_distribution({"SMOKING": "smoker"})
        assert posterior["yes"] == pytest.approx(240 / 1290, abs=1e-9)

    def test_predict_majority(self, table):
        classifier = NaiveBayesClassifier(table, "CANCER")
        assert classifier.predict({"SMOKING": "smoker"}) == "no"

    def test_evidence_shifts_posterior(self, table):
        classifier = NaiveBayesClassifier(table, "CANCER")
        base = classifier.class_distribution({})["yes"]
        smoker = classifier.class_distribution({"SMOKING": "smoker"})["yes"]
        assert smoker > base

    def test_class_in_evidence_rejected(self, table):
        classifier = NaiveBayesClassifier(table, "CANCER")
        with pytest.raises(QueryError, match="class attribute"):
            classifier.class_distribution({"CANCER": "yes"})

    def test_unknown_feature_rejected(self, table):
        classifier = NaiveBayesClassifier(table, "CANCER")
        with pytest.raises(Exception):
            classifier.class_distribution({"WEIGHT": "high"})

    def test_negative_smoothing_rejected(self, table):
        with pytest.raises(DataError):
            NaiveBayesClassifier(table, "CANCER", smoothing=-0.5)
