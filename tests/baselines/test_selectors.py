"""Tests for the chi-square and BIC constraint selectors."""

import numpy as np
import pytest

from repro.baselines.bic_selector import (
    BICSelectorConfig,
    discover_bic,
    log_likelihood,
)
from repro.baselines.chi2_selector import Chi2SelectorConfig, discover_chi2
from repro.baselines.independence import independence_model
from repro.exceptions import DataError
from repro.synth.generators import (
    independent_population,
    random_planted_population,
)


class TestChi2Selector:
    def test_finds_paper_association(self, table):
        result = discover_chi2(table, Chi2SelectorConfig(max_order=2))
        found = {(c.attributes, c.values) for c in result.found}
        assert (("SMOKING", "CANCER"), (0, 0)) in found

    def test_constraints_satisfied(self, table):
        result = discover_chi2(table, Chi2SelectorConfig(max_order=2))
        for cell in result.found:
            marginal = result.model.marginal(list(cell.attributes))
            assert marginal[cell.values] == pytest.approx(
                cell.probability, abs=1e-7
            )

    def test_alpha_validation(self):
        with pytest.raises(DataError):
            Chi2SelectorConfig(alpha=0.0)

    def test_stricter_alpha_fewer_constraints(self, table):
        loose = discover_chi2(
            table, Chi2SelectorConfig(alpha=0.05, max_order=2)
        )
        strict = discover_chi2(
            table, Chi2SelectorConfig(alpha=1e-12, max_order=2)
        )
        assert len(strict.found) <= len(loose.found)

    def test_max_constraints(self, table):
        result = discover_chi2(
            table, Chi2SelectorConfig(max_order=2, max_constraints=1)
        )
        assert len(result.found) == 1

    def test_quiet_on_independent_data(self, rng):
        population = independent_population(rng, num_attributes=3)
        table = population.sample_table(5000, rng)
        result = discover_chi2(
            table, Chi2SelectorConfig(max_order=2, bonferroni=True)
        )
        assert len(result.found) <= 1


class TestBICSelector:
    def test_improves_likelihood(self, table):
        result = discover_bic(table, BICSelectorConfig(max_order=2))
        base = log_likelihood(table, independence_model(table))
        fitted = log_likelihood(table, result.model)
        assert fitted > base

    def test_steps_have_positive_delta(self, table):
        result = discover_bic(table, BICSelectorConfig(max_order=2))
        assert len(result.steps) > 0
        assert all(step.delta_bic > 0 for step in result.steps)

    def test_finds_paper_association(self, table):
        result = discover_bic(table, BICSelectorConfig(max_order=2))
        found_subsets = {c.attributes for c in result.found}
        assert ("SMOKING", "CANCER") in found_subsets or (
            "SMOKING",
            "FAMILY_HISTORY",
        ) in found_subsets

    def test_heavier_penalty_fewer_constraints(self, table):
        light = discover_bic(
            table, BICSelectorConfig(max_order=2, penalty_multiplier=1.0)
        )
        heavy = discover_bic(
            table, BICSelectorConfig(max_order=2, penalty_multiplier=20.0)
        )
        assert len(heavy.found) <= len(light.found)

    def test_penalty_validation(self):
        with pytest.raises(DataError):
            BICSelectorConfig(penalty_multiplier=0.0)

    def test_max_constraints(self, table):
        result = discover_bic(
            table, BICSelectorConfig(max_order=2, max_constraints=1)
        )
        assert len(result.found) <= 1

    def test_recovers_planted_pair(self, rng):
        """BIC detects the planted attribute pair (it may express the
        association through a sibling cell of the same marginal)."""
        population = random_planted_population(
            rng, num_attributes=3, num_planted=1, strength=4.0
        )
        table = population.sample_table(20000, rng)
        result = discover_bic(table, BICSelectorConfig(max_order=2))
        assert population.planted[0].attributes in {
            c.attributes for c in result.found
        }


class TestSelectorAgreement:
    def test_all_three_find_strong_planted_signal(self, rng):
        """On a strong planted effect with plenty of data, MML, chi2 and
        BIC all detect the planted attribute pair.  (A selector may adopt
        the complementary cell of a binary attribute — the same
        association expressed differently — so agreement is asserted at
        the subset level.)"""
        from repro.discovery.config import DiscoveryConfig
        from repro.discovery.engine import discover

        population = random_planted_population(
            np.random.default_rng(3), num_attributes=3, num_planted=1,
            strength=5.0,
        )
        table = population.sample_table(30000, rng)
        planted_subset = population.planted[0].attributes

        mml = discover(table, DiscoveryConfig(max_order=2))
        chi2 = discover_chi2(table, Chi2SelectorConfig(max_order=2))
        bic = discover_bic(table, BICSelectorConfig(max_order=2))
        assert planted_subset in {c.attributes for c in mml.found}
        assert planted_subset in {c.attributes for c in chi2.found}
        assert planted_subset in {c.attributes for c in bic.found}
