"""Tests for the hierarchical log-linear forward-selection baseline."""

import numpy as np
import pytest

from repro.baselines.loglinear import (
    LogLinearConfig,
    discover_loglinear,
)
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.exceptions import DataError
from repro.synth.generators import (
    independent_population,
    random_planted_population,
)


class TestPaperData:
    def test_adopts_associated_pairs(self, table):
        result = discover_loglinear(table, LogLinearConfig(max_order=2))
        assert ("SMOKING", "CANCER") in result.found_subsets
        assert ("SMOKING", "FAMILY_HISTORY") in result.found_subsets

    def test_margins_fitted_exactly(self, table):
        result = discover_loglinear(table, LogLinearConfig(max_order=2))
        for subset in result.found_subsets:
            fitted = result.model.marginal(list(subset))
            observed = table.marginal(list(subset)) / table.total
            assert np.allclose(fitted, observed, atol=1e-8)

    def test_steps_record_statistics(self, table):
        result = discover_loglinear(table, LogLinearConfig(max_order=2))
        for step in result.steps:
            assert step.g2 > 0
            assert step.dof > 0
            assert step.p_value < 0.01

    def test_parameter_count_exceeds_cell_based(self, table):
        """The trade-off the paper's design makes: whole-margin terms
        spend (I-1)(J-1) parameters per pair, cells spend 1 each."""
        loglinear = discover_loglinear(table, LogLinearConfig(max_order=2))
        cell_based = discover(table, DiscoveryConfig(max_order=2))
        loglinear_parameters = loglinear.num_interaction_parameters()
        # Cell-based discovery spends exactly one parameter per adoption.
        assert len(cell_based.found) == len(cell_based.model.cell_factors)
        # Whole-margin terms spend (I-1)(J-1) each: the 3x2 smoking pairs
        # cost 2 apiece, so overall strictly more than 1 per subset.
        assert loglinear_parameters > len(loglinear.found_subsets)
        smoking_pairs = [
            s for s in loglinear.found_subsets if "SMOKING" in s
        ]
        assert smoking_pairs  # the smoking interactions are adopted
        assert loglinear_parameters >= 2 * len(smoking_pairs)

    def test_quiet_on_independent_data(self, rng):
        population = independent_population(rng, num_attributes=3)
        table = population.sample_table(5000, rng)
        result = discover_loglinear(table, LogLinearConfig(max_order=2))
        assert len(result.found_subsets) <= 1

    def test_recovers_planted_pair(self, rng):
        population = random_planted_population(
            rng, num_attributes=3, num_planted=1, strength=4.0
        )
        table = population.sample_table(20000, rng)
        result = discover_loglinear(table, LogLinearConfig(max_order=2))
        assert population.planted[0].attributes in result.found_subsets


class TestConfig:
    def test_alpha_validated(self):
        with pytest.raises(DataError):
            LogLinearConfig(alpha=1.0)

    def test_max_terms(self, table):
        result = discover_loglinear(
            table, LogLinearConfig(max_order=2, max_terms=1)
        )
        assert len(result.found_subsets) == 1

    def test_empty_table_rejected(self, schema):
        from repro.data.contingency import ContingencyTable

        with pytest.raises(DataError, match="empty"):
            discover_loglinear(ContingencyTable.zeros(schema))

    def test_stricter_alpha_fewer_terms(self, table):
        loose = discover_loglinear(
            table, LogLinearConfig(alpha=0.05, max_order=2)
        )
        strict = discover_loglinear(
            table, LogLinearConfig(alpha=1e-12, max_order=2)
        )
        assert len(strict.found_subsets) <= len(loose.found_subsets)


class TestAgainstCellBased:
    def test_both_capture_the_association(self, table):
        """Both model families reproduce the smoker-cancer conditional."""
        loglinear = discover_loglinear(table, LogLinearConfig(max_order=2))
        cell_based = discover(table, DiscoveryConfig(max_order=2))
        empirical = 240 / 1290
        for model in (loglinear.model, cell_based.model):
            fitted = model.conditional(
                {"CANCER": "yes"}, {"SMOKING": "smoker"}
            )
            assert fitted == pytest.approx(empirical, abs=0.01)
