"""Tests for synthetic population generators."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.synth.generators import (
    PlantedCell,
    build_planted_population,
    chained_population,
    drifted_margins,
    independent_population,
    near_deterministic_population,
    random_margins,
    random_planted_population,
    random_schema,
    recovery_score,
    skewed_population,
)
from repro.synth.surveys import (
    medical_survey_population,
    smoking_cancer_population,
    telemetry_population,
)


class TestRandomSchema:
    def test_cardinality_bounds(self, rng):
        schema = random_schema(rng, 5, min_values=2, max_values=3)
        assert len(schema) == 5
        assert all(2 <= a.cardinality <= 3 for a in schema)

    def test_generic_names(self, rng):
        schema = random_schema(rng, 3)
        assert schema.names == ("A", "B", "C")

    def test_limits(self, rng):
        with pytest.raises(DataError):
            random_schema(rng, 0)
        with pytest.raises(DataError):
            random_schema(rng, 27)


class TestPlantedPopulation:
    def test_joint_normalized(self, rng):
        population = random_planted_population(rng)
        assert population.joint.sum() == pytest.approx(1.0)
        assert (population.joint >= 0).all()

    def test_planted_cell_is_in_excess(self, rng):
        """A strength>1 planted cell's probability exceeds the product of
        its margins."""
        schema = random_schema(rng, 3)
        margins = random_margins(rng, schema)
        cell = PlantedCell(("A", "B"), (0, 0), 4.0)
        population = build_planted_population(schema, margins, [cell])
        joint = population.joint
        pair = joint.sum(axis=2)
        margin_a = joint.sum(axis=(1, 2))
        margin_b = joint.sum(axis=(0, 2))
        assert pair[0, 0] > margin_a[0] * margin_b[0]

    def test_no_planting_is_independent(self, rng):
        population = independent_population(rng, num_attributes=3)
        joint = population.joint
        margin_a = joint.sum(axis=(1, 2))
        margin_b = joint.sum(axis=(0, 2))
        margin_c = joint.sum(axis=(0, 1))
        expected = np.einsum("i,j,k->ijk", margin_a, margin_b, margin_c)
        assert np.allclose(joint, expected, atol=1e-12)

    def test_distinct_planted_cells(self, rng):
        population = random_planted_population(rng, num_planted=3)
        assert len(population.planted_keys()) == 3

    def test_sample_reproducible(self):
        population = random_planted_population(np.random.default_rng(5))
        first = population.sample(100, np.random.default_rng(9))
        second = population.sample(100, np.random.default_rng(9))
        assert np.array_equal(first.rows, second.rows)

    def test_sample_table_total(self, rng):
        population = random_planted_population(rng)
        table = population.sample_table(1234, rng)
        assert table.total == 1234

    def test_invalid_strength(self):
        with pytest.raises(DataError):
            PlantedCell(("A", "B"), (0, 0), 0.0)

    def test_out_of_range_planted_value(self, rng):
        schema = random_schema(rng, 2, min_values=2, max_values=2)
        margins = random_margins(rng, schema)
        with pytest.raises(DataError, match="out of range"):
            build_planted_population(
                schema, margins, [PlantedCell(("A", "B"), (0, 9), 2.0)]
            )


class TestRecoveryScore:
    def test_perfect_recovery(self, rng):
        population = random_planted_population(rng, num_planted=2)
        precision, recall = recovery_score(
            population, population.planted_keys()
        )
        assert precision == 1.0
        assert recall == 1.0

    def test_false_alarm_hurts_precision(self, rng):
        population = random_planted_population(rng, num_planted=1)
        keys = population.planted_keys() | {(("A", "B"), (1, 1))}
        precision, recall = recovery_score(population, keys)
        assert recall == 1.0
        assert precision == pytest.approx(0.5)

    def test_nothing_found(self, rng):
        population = random_planted_population(rng, num_planted=2)
        precision, recall = recovery_score(population, set())
        assert recall == 0.0

    def test_null_population_empty_found_is_perfect(self, rng):
        population = independent_population(rng)
        precision, recall = recovery_score(population, set())
        assert precision == 1.0
        assert recall == 1.0


class TestSurveyWorlds:
    @pytest.mark.parametrize(
        "factory",
        [
            smoking_cancer_population,
            medical_survey_population,
            telemetry_population,
        ],
    )
    def test_valid_distribution(self, factory):
        population = factory()
        assert population.joint.sum() == pytest.approx(1.0)
        assert (population.joint >= 0).all()
        assert len(population.planted) >= 2

    def test_smoking_world_margins_match_paper(self):
        population = smoking_cancer_population()
        joint = population.joint
        smoking = joint.sum(axis=(1, 2))
        assert smoking == pytest.approx([0.376, 0.331, 0.293], abs=1e-9)

    def test_smoking_world_associations_match_paper_direction(self):
        """Smokers and family-history carriers have elevated cancer rates."""
        population = smoking_cancer_population()
        joint = population.joint
        p_cancer_smoker = joint[0, 0, :].sum() / joint[0].sum()
        p_cancer_nonsmoker = joint[1, 0, :].sum() / joint[1].sum()
        assert p_cancer_smoker > p_cancer_nonsmoker

    def test_telemetry_anomaly_association(self):
        population = telemetry_population()
        joint = population.joint
        # P(anomaly | high vibration) > P(anomaly | low vibration)
        high = joint[:, 1, :, 1].sum() / joint[:, 1, :, :].sum()
        low = joint[:, 0, :, 1].sum() / joint[:, 0, :, :].sum()
        assert high > low


class TestChainedPopulation:
    def test_one_link_per_adjacent_pair(self, rng):
        population = chained_population(rng, num_attributes=5, strength=3.0)
        names = population.schema.names
        planted_pairs = [cell.attributes for cell in population.planted]
        assert planted_pairs == [
            (names[i], names[i + 1]) for i in range(len(names) - 1)
        ]

    def test_every_attribute_participates(self, rng):
        population = chained_population(rng, num_attributes=4)
        covered = {
            name for cell in population.planted for name in cell.attributes
        }
        assert covered == set(population.schema.names)

    def test_too_short_chain_rejected(self, rng):
        with pytest.raises(DataError, match="at least two"):
            chained_population(rng, num_attributes=1)


class TestNearDeterministicPopulation:
    def test_rule_dominates_conditional(self, rng):
        population = near_deterministic_population(rng, strength=40.0)
        joint = population.joint
        # P(B=first | A=first) should be near 1: the planted cell acts
        # like a hard rule.
        axis_rest = tuple(range(2, len(population.schema)))
        pair = joint.sum(axis=axis_rest) if axis_rest else joint
        conditional = pair[0, 0] / pair[0, :].sum()
        assert conditional > 0.9

    def test_strength_validated(self, rng):
        with pytest.raises(DataError, match="strength"):
            near_deterministic_population(rng, strength=1.0)


class TestSkewedPopulation:
    def test_margins_are_skewed(self, rng):
        population = skewed_population(rng, skew=8.0)
        for axis, attribute in enumerate(population.schema):
            other = tuple(
                a for a in range(len(population.schema)) if a != axis
            )
            margin = population.joint.sum(axis=other)
            assert margin[0] == max(margin)
            assert margin[0] > 0.5

    def test_planted_in_rare_corner(self, rng):
        population = skewed_population(rng, num_planted=1)
        (cell,) = population.planted
        for name, value in zip(cell.attributes, cell.values):
            assert value == population.schema.attribute(name).cardinality - 1

    def test_skew_validated(self, rng):
        with pytest.raises(DataError, match="skew"):
            skewed_population(rng, skew=1.0)

    def test_multiple_plants_are_disjoint_and_canonical(self, rng):
        population = skewed_population(rng, num_attributes=4, num_planted=2)
        keys = population.planted_keys()
        assert len(keys) == 2
        names = population.schema.names
        used = []
        for attributes, _values in keys:
            # Canonical schema order, as CellConstraint.key reports it.
            assert attributes == tuple(
                sorted(attributes, key=names.index)
            )
            used.extend(attributes)
        assert len(used) == len(set(used))

    def test_too_many_plants_rejected(self, rng):
        with pytest.raises(DataError, match="disjoint pairs"):
            skewed_population(rng, num_attributes=4, num_planted=3)


class TestDriftedMargins:
    def test_drift_zero_is_identity_up_to_clipping(self, rng):
        schema = random_schema(rng, 3)
        margins = random_margins(rng, schema)
        shifted = drifted_margins(rng, margins, drift=0.0)
        for name in margins:
            assert shifted[name] == pytest.approx(margins[name])

    def test_drift_moves_margins_and_keeps_them_valid(self, rng):
        schema = random_schema(rng, 3)
        margins = random_margins(rng, schema)
        shifted = drifted_margins(rng, margins, drift=0.8)
        moved = False
        for name in margins:
            assert shifted[name].sum() == pytest.approx(1.0)
            assert (shifted[name] >= 0.01).all()
            if not np.allclose(shifted[name], margins[name], atol=1e-6):
                moved = True
        assert moved

    def test_drift_range_validated(self, rng):
        schema = random_schema(rng, 2)
        margins = random_margins(rng, schema)
        with pytest.raises(DataError, match="drift"):
            drifted_margins(rng, margins, drift=1.5)


class TestHighCardinalityPlanting:
    def test_cardinality_bounds_forwarded(self, rng):
        population = random_planted_population(
            rng, num_attributes=3, min_values=5, max_values=6
        )
        assert all(5 <= a.cardinality <= 6 for a in population.schema)
