"""Tests for the adversarial/stress population generators."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.synth.adversarial import (
    apply_label_noise,
    correlated_drifted_margins,
    duplicate_rows,
    heavy_tailed_population,
    high_order_population,
    near_singular_population,
    orbit_truth,
    wide_population,
    zipf_cardinalities,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestWidePopulation:
    def test_width_and_plants(self):
        population = wide_population(
            rng(), num_attributes=12, num_planted=3
        )
        assert len(population.schema) == 12
        assert len(population.planted) == 3
        joint = population.joint
        assert joint.shape == (2,) * 12
        assert joint.sum() == pytest.approx(1.0)

    def test_cell_budget_enforced(self):
        with pytest.raises(DataError, match="cells"):
            wide_population(rng(), num_attributes=40)

    def test_high_order_plants_deep_cells(self):
        population = high_order_population(
            rng(), num_attributes=6, order=4
        )
        assert all(
            len(cell.attributes) == 4 for cell in population.planted
        )


class TestZipf:
    def test_cardinalities_stay_in_range(self):
        cards = zipf_cardinalities(rng(), 6, max_cardinality=12)
        assert len(cards) == 6
        assert all(2 <= c <= 12 for c in cards)

    def test_heavy_tailed_forces_a_head_attribute(self):
        population = heavy_tailed_population(
            rng(), num_attributes=5, max_cardinality=10
        )
        cards = [a.cardinality for a in population.schema]
        assert max(cards) == 10

    def test_heavy_tailed_population_valid(self):
        population = heavy_tailed_population(rng(), num_attributes=5)
        assert population.joint.sum() == pytest.approx(1.0)
        assert (population.joint >= 0).all()


class TestDriftAndSingularity:
    def test_correlated_drift_returns_distributions(self):
        margins = {"A": np.full(3, 1 / 3), "B": np.full(4, 0.25)}
        drifted = correlated_drifted_margins(
            rng(), margins, drift=0.3, correlation=0.9
        )
        assert set(drifted) == {"A", "B"}
        for margin in drifted.values():
            assert margin.sum() == pytest.approx(1.0)
            assert (margin > 0).all()

    def test_near_singular_attributes_have_headroom(self):
        population = near_singular_population(rng(), epsilon=0.004)
        # Every attribute has at least 3 values so the epsilon-pinned
        # tail value never collides with the planted head cells.
        for attribute in population.schema:
            assert attribute.cardinality >= 3
        # The starved values exist: some margins are tiny but nonzero.
        for name in population.schema.names:
            margin = population.joint.sum(
                axis=tuple(
                    axis
                    for axis, other in enumerate(population.schema.names)
                    if other != name
                )
            )
            assert margin.min() < 0.02
            assert margin.min() > 0.0


class TestCorruptions:
    def _dataset(self):
        from repro.synth.generators import chained_population

        population = chained_population(rng(), 3)
        return population.sample(2000, rng(1))

    def test_label_noise_preserves_size(self):
        dataset = self._dataset()
        noisy = apply_label_noise(dataset, rng(2), rate=0.1)
        assert len(noisy) == len(dataset)
        assert noisy.schema == dataset.schema

    def test_duplicate_rows_inflates(self):
        dataset = self._dataset()
        inflated = duplicate_rows(dataset, rng(3), fraction=0.3)
        assert len(inflated) == int(len(dataset) * 1.3)


class TestOrbitTruth:
    def test_orbit_covers_all_value_combinations(self):
        population = wide_population(
            rng(5), num_attributes=6, num_planted=2
        )
        truth = orbit_truth(population)
        planted_subsets = {
            cell.attributes for cell in population.planted
        }
        # Binary attributes: each planted pair's orbit is all 4 cells.
        assert len(truth) == 4 * len(planted_subsets)
        for attributes, values in truth:
            assert attributes in planted_subsets
            assert len(values) == len(attributes)

    def test_include_subsets_adds_lower_orders(self):
        population = high_order_population(
            rng(6), num_attributes=6, num_planted=1, order=4
        )
        plain = orbit_truth(population)
        expanded = orbit_truth(population, include_subsets=True)
        assert len(expanded) > len(plain)
        orders = {len(attributes) for attributes, _ in expanded}
        assert orders == {2, 3, 4}
