"""Concurrent batch serving: order, equivalence, failure surfacing, caches."""

import multiprocessing

import numpy as np
import pytest

from repro.api.session import QuerySession
from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.discovery.engine import discover
from repro.exceptions import ParallelError, QueryError, ReproError
from repro.parallel.pool import WorkerPool
from repro.parallel.query import ParallelQueryEvaluator
from repro.parallel.shm import shm_available

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

TRANSPORTS = [
    "pipe",
    pytest.param(
        "shm",
        marks=pytest.mark.skipif(
            not shm_available(), reason="shared memory unavailable"
        ),
    ),
]


@pytest.fixture(scope="module")
def model(request):
    from repro.eval.paper import paper_table

    return discover(paper_table()).model


@pytest.fixture(scope="module")
def queries():
    return [
        "CANCER=yes | SMOKING=smoker",
        "CANCER=yes",
        "SMOKING=smoker | FAMILY_HISTORY=yes",
        "FAMILY_HISTORY=yes | CANCER=no",
        "CANCER=no | SMOKING=non-smoker",
    ] * 5


class TestParallelBatchEquivalence:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_results_keep_input_order(self, model, queries, workers):
        serial = QuerySession(model).batch(queries)
        with QuerySession(model, max_workers=workers) as session:
            parallel = session.batch(queries)
            # Warm per-worker caches: a second pass must agree too.
            again = session.batch(queries)
        assert parallel == serial
        assert again == serial

    def test_empty_and_single_batches(self, model):
        with QuerySession(model, max_workers=2) as session:
            assert session.batch([]) == []
            assert session.batch(["CANCER=yes"]) == pytest.approx(
                [QuerySession(model).ask("CANCER=yes")]
            )

    def test_more_workers_than_queries(self, model):
        with QuerySession(model, max_workers=4) as session:
            values = session.batch(["CANCER=yes", "CANCER=no"])
        assert values == QuerySession(model).batch(["CANCER=yes", "CANCER=no"])

    def test_kb_query_many_with_workers(self, queries):
        from repro.eval.paper import paper_table

        kb = ProbabilisticKnowledgeBase.from_data(paper_table())
        assert kb.query_many(queries, max_workers=2) == kb.query_many(queries)

    def test_session_rejects_bad_worker_count(self, model):
        with pytest.raises(QueryError):
            QuerySession(model, max_workers=0)


class TestTransportEquivalence:
    """Model broadcasts through shared memory answer exactly like pipes.

    The shm rows ship the model as a packed float block through a shared
    segment and rebuild it worker-side; any repack drift (a reordered
    factor product, a truncated float) shows up as a !=, since query
    results are compared exactly, not approximately.
    """

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_batches_match_serial_exactly(self, model, queries, transport):
        serial = QuerySession(model).batch(queries)
        with ParallelQueryEvaluator(
            model, max_workers=2, transport=transport
        ) as evaluator:
            assert evaluator.batch(queries) == serial
            # Warm workers (amortized broadcast) must agree too.
            assert evaluator.batch(queries) == serial

    def test_unchanged_model_skips_rebroadcast(self, model):
        with ParallelQueryEvaluator(
            model, pool=WorkerPool(2, inline=True), transport="shm"
        ) as evaluator:
            evaluator.batch(["CANCER=yes"])
            shared_after_init = evaluator.counters.bytes_shared
            assert shared_after_init > 0
            evaluator.batch(["CANCER=no"])
            assert evaluator.counters.broadcasts_total == 2
            assert evaluator.counters.broadcasts_skipped == 1
            # Nothing was re-shipped for the second batch.
            assert evaluator.counters.bytes_shared == shared_after_init
            evaluator.set_model(model.copy())
            evaluator.batch(["CANCER=yes"])
            assert evaluator.counters.bytes_shared > shared_after_init

    def test_pipe_counts_pickled_payloads(self, model):
        with ParallelQueryEvaluator(
            model, pool=WorkerPool(2, inline=True), transport="pipe"
        ) as evaluator:
            evaluator.batch(["CANCER=yes"])
            assert evaluator.counters.bytes_pickled > 0
            assert evaluator.counters.bytes_shared == 0


class TestFailureSurfacing:
    def test_poisoned_query_raises_query_error(self, model, queries):
        with QuerySession(model, max_workers=2) as session:
            poisoned = [*queries, "NO_SUCH_ATTRIBUTE=yes"]
            with pytest.raises(QueryError) as excinfo:
                session.batch(poisoned)
            assert isinstance(excinfo.value, ReproError)
            # The pool survives a failed batch.
            assert session.batch(queries[:3]) == QuerySession(model).batch(
                queries[:3]
            )

    def test_unknown_value_label_raises_query_error(self, model):
        session = QuerySession(model, max_workers=2)
        try:
            with pytest.raises(QueryError):
                session.batch(
                    ["CANCER=yes | SMOKING=definitely-not-a-level"]
                )
        finally:
            session.close()

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_session_recovers_after_worker_death(self, model):
        from repro.api.session import QuerySession

        session = QuerySession(model, max_workers=2)
        try:
            expected = session.batch(["CANCER=yes"] * 4)
            # Kill the pool out from under the session...
            session._parallel.pool.run("_tasks:die", [(), ()])
        except ParallelError:
            pass
        try:
            # ...the next batch must start a fresh pool, not fail forever
            # on "pool is closed".
            assert session.batch(["CANCER=yes"] * 4) == expected
        finally:
            session.close()

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_dead_worker_raises_clean_repro_error(self, model):
        evaluator = ParallelQueryEvaluator(model, max_workers=2)
        # Prime the pool (workers started, sessions built)...
        assert evaluator.batch(["CANCER=yes"] * 4) == pytest.approx(
            [QuerySession(model).ask("CANCER=yes")] * 4
        )
        # ...then kill the workers mid-task: the death must surface as a
        # ParallelError (a ReproError), not a raw pipe exception.
        with pytest.raises(ParallelError) as excinfo:
            evaluator.pool.run("_tasks:die", [(), ()])
        assert isinstance(excinfo.value, ReproError)
        evaluator.close()


class TestModelLifecycle:
    def test_in_place_update_invalidates_worker_sessions(self):
        from repro.eval.paper import paper_table

        table = paper_table()
        kb = ProbabilisticKnowledgeBase.from_data(table)
        with kb.session(max_workers=2) as session:
            before = session.batch(["CANCER=yes | SMOKING=smoker"])
            # Skew the next window hard toward smokers with cancer so the
            # refreshed model must answer differently.
            rng = np.random.default_rng(3)
            delta = table.schema  # reuse schema
            from repro.data.streaming import TableBuilder

            builder = TableBuilder(delta)
            for _ in range(4000):
                history = "yes" if rng.random() < 0.5 else "no"
                builder.add_record(
                    {
                        "SMOKING": "smoker",
                        "CANCER": "yes",
                        "FAMILY_HISTORY": history,
                    }
                )
            kb.ingest(builder)
            after = session.batch(["CANCER=yes | SMOKING=smoker"])
            serial_after = QuerySession(kb.model).batch(
                ["CANCER=yes | SMOKING=smoker"]
            )
        assert after != before
        assert after == serial_after

    def test_set_model_rebroadcasts(self, model):
        other = model.copy()
        with QuerySession(model, max_workers=2) as session:
            first = session.batch(["CANCER=yes"])
            session.set_model(other)
            second = session.batch(["CANCER=yes"])
        assert first == second

    def test_close_then_reuse_restarts_pool(self, model):
        session = QuerySession(model, max_workers=2)
        first = session.batch(["CANCER=yes"])
        session.close()
        second = session.batch(["CANCER=yes"])
        session.close()
        assert first == second
