"""Worker tasks for the pool tests (module-level so workers can resolve
them by dotted name; see ``repro.parallel.pool.resolve_task``)."""

import os

from repro.exceptions import DataError


def echo(state, value):
    return value


def put(state, key, value):
    state[key] = value


def get(state, key):
    return state.get(key)


def put_or_die(state, key, value):
    if key is None:
        raise RuntimeError("poisoned shard")
    state[key] = value


def raise_data_error(state, message):
    raise DataError(message)


def raise_value_error(state, message):
    raise ValueError(message)


def die(state):
    # A hard crash: no exception reply ever reaches the master, the pipe
    # just breaks — the "poisoned worker" the pool must surface cleanly.
    os._exit(3)
