"""The shared-memory transport: segments, handles, packing, cleanup.

Covers the transport seam in isolation — pool/free-list reuse, zero-copy
attach views, bit-exact model packing — and its hard guarantees: no
shared-memory segment outlives its owner, whether the owner closes
cleanly, is garbage collected, dies with a worker, or exits the
interpreter without cleaning up at all.
"""

import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.discovery.engine import discover
from repro.exceptions import ParallelError
from repro.maxent.model import MaxEntModel
from repro.parallel.shm import (
    SegmentAttachments,
    SharedTensorPool,
    TransportCounters,
    model_payload_bytes,
    pack_model,
    resolve_transport,
    shm_available,
    unpack_model,
)

HAS_SHM = shm_available()
HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

needs_shm = pytest.mark.skipif(
    not HAS_SHM, reason="shared memory unavailable on this platform"
)


def shm_names() -> set:
    """Names in /dev/shm (POSIX) — the leak oracle for subprocess tests."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:
        return set()


class TestResolveTransport:
    def test_explicit_choice_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_TRANSPORT", "shm")
        assert resolve_transport("pipe") == "pipe"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_TRANSPORT", "pipe")
        assert resolve_transport() == "pipe"

    def test_auto_prefers_shm_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_TRANSPORT", raising=False)
        assert resolve_transport() == ("shm" if HAS_SHM else "pipe")
        assert resolve_transport("auto") == resolve_transport()

    def test_unknown_transport_rejected(self):
        with pytest.raises(ParallelError, match="unknown"):
            resolve_transport("carrier-pigeon")

    def test_whitespace_and_case_tolerated(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_TRANSPORT", " PIPE ")
        assert resolve_transport() == "pipe"


@needs_shm
class TestSharedTensorPool:
    def test_publish_round_trips_exact_bytes(self):
        rng = np.random.default_rng(5)
        array = rng.random((7, 3))
        with SharedTensorPool() as pool:
            handle = pool.publish(array)
            # Views alias the attachment's mapping: the attachments
            # object must outlive them (dropping it unmaps the segment).
            attachments = SegmentAttachments()
            view = attachments.view(handle)
            assert view.dtype == np.float64
            assert not view.flags.writeable
            assert view.tobytes() == array.tobytes()
            attachments.close()

    def test_free_list_reuses_segment_per_shape(self):
        with SharedTensorPool() as pool:
            handle_a, _view = pool.acquire((4, 4), np.float64)
            pool.release(handle_a)
            handle_b, _view = pool.acquire((4, 4), np.float64)
            # Same mapped segment, new generation.
            assert handle_b.name == handle_a.name
            assert handle_b.generation > handle_a.generation
            # A different shape maps a new segment.
            handle_c, _view = pool.acquire((2, 8), np.float64)
            assert handle_c.name != handle_b.name
            assert len(pool.segment_names) == 2

    def test_close_unlinks_every_segment(self):
        pool = SharedTensorPool()
        handles = [pool.publish(np.zeros(16)) for _ in range(3)]
        pool.release(handles[0])  # free and in-use alike must go
        names = set(pool.segment_names)
        assert names <= shm_names()
        pool.close()
        assert not names & shm_names()
        assert pool.closed
        pool.close()  # idempotent

    def test_close_survives_live_views(self):
        # Close must unlink even with a caller-held view outstanding.
        # The view dangles afterwards (numpy does not pin the mapping) —
        # owners drop their views before closing, as the executors do.
        pool = SharedTensorPool()
        handle, view = pool.acquire((8,), np.float64)
        names = set(pool.segment_names)
        del view
        pool.close()
        assert not names & shm_names()

    def test_acquire_after_close_rejected(self):
        pool = SharedTensorPool()
        pool.close()
        with pytest.raises(ParallelError):
            pool.acquire((2,), np.float64)

    def test_garbage_collection_unlinks(self):
        pool = SharedTensorPool()
        pool.publish(np.ones(32))
        names = set(pool.segment_names)
        del pool
        assert not names & shm_names()

    def test_attach_to_unlinked_segment_raises_parallel_error(self):
        pool = SharedTensorPool()
        handle = pool.publish(np.ones(4))
        pool.close()
        with pytest.raises(ParallelError, match="attach"):
            SegmentAttachments().view(handle)

    def test_attachments_cache_by_name(self):
        with SharedTensorPool() as pool:
            handle = pool.publish(np.arange(6.0))
            attachments = SegmentAttachments()
            first = attachments.view(handle)
            assert attachments.take_attach_ns() > 0
            again = attachments.view(handle)
            # Second view re-uses the mapping: no new attach time.
            assert attachments.take_attach_ns() == 0
            assert np.array_equal(first, again)
            attachments.close()

    def test_writable_view_feeds_master_copy(self):
        with SharedTensorPool() as pool:
            handle, master_view = pool.acquire((5,), np.float64)
            worker = SegmentAttachments()
            slab = worker.view(handle, writable=True)
            slab[:] = [1.0, 2.0, 3.0, 4.0, 5.0]
            assert master_view.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]
            worker.close()


class TestTransportCounters:
    def test_delta_subtracts_snapshot(self):
        counters = TransportCounters()
        counters.bytes_shared += 100
        snapshot = counters.snapshot()
        counters.bytes_shared += 50
        counters.broadcasts_total += 2
        counters.broadcasts_skipped += 1
        delta = counters.delta(snapshot)
        assert delta.bytes_shared == 50
        assert delta.broadcasts_total == 2
        assert delta.broadcasts_skipped == 1
        assert delta.bytes_pickled == 0

    def test_to_dict_is_json_ready(self):
        data = TransportCounters(bytes_pickled=3, attach_ns=9).to_dict()
        assert data["bytes_pickled"] == 3
        assert data["attach_ns"] == 9
        assert set(data) == {
            "bytes_pickled",
            "bytes_shared",
            "broadcasts_total",
            "broadcasts_skipped",
            "attach_ns",
            "bytes_wire",
            "round_trips",
        }


class TestModelPacking:
    @pytest.fixture(scope="class")
    def fitted_model(self):
        from repro.eval.paper import paper_table

        return discover(paper_table()).model

    def test_round_trip_is_bit_identical(self, fitted_model):
        layout, block = pack_model(fitted_model)
        rebuilt = unpack_model(fitted_model.schema, layout, block)
        assert rebuilt.fingerprint() == fitted_model.fingerprint()
        # The joint — factor products in the original multiplication
        # order — must match byte for byte, not just approximately.
        assert (
            rebuilt.joint().tobytes() == fitted_model.joint().tobytes()
        )

    def test_rebuilt_model_owns_its_memory(self, fitted_model):
        layout, block = pack_model(fitted_model)
        rebuilt = unpack_model(fitted_model.schema, layout, block)
        block[:] = -1.0  # simulate the segment being rewritten
        assert rebuilt.joint().tobytes() == fitted_model.joint().tobytes()

    def test_independent_model_packs(self, schema, table):
        model = MaxEntModel.independent(
            schema,
            {
                name: table.first_order_probabilities(name)
                for name in schema.names
            },
        )
        layout, block = pack_model(model)
        assert not layout["cells"] and not layout["tables"]
        rebuilt = unpack_model(schema, layout, block)
        assert rebuilt.joint().tobytes() == model.joint().tobytes()

    def test_length_mismatch_rejected(self, fitted_model):
        layout, block = pack_model(fitted_model)
        with pytest.raises(ParallelError, match="layout"):
            unpack_model(
                fitted_model.schema, layout, np.append(block, 1.0)
            )

    def test_payload_bytes_counts_every_factor(self, fitted_model):
        _layout, block = pack_model(fitted_model)
        assert model_payload_bytes(fitted_model) == block.nbytes


@needs_shm
class TestCleanupGuarantees:
    """No leaked segments: worker death, GC, and interpreter shutdown."""

    def _run_child(self, code: str) -> subprocess.CompletedProcess:
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        return subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )

    def test_interpreter_exit_without_close_leaks_nothing(self):
        # The atexit hook (and failing that, the resource tracker) must
        # reap segments a sloppy caller never released.
        before = shm_names()
        result = self._run_child(
            "import numpy as np\n"
            "from repro.parallel.shm import SharedTensorPool\n"
            "pool = SharedTensorPool()\n"
            "handle = pool.publish(np.ones((64, 64)))\n"
            "print(handle.name)\n"
        )
        assert result.returncode == 0, result.stderr
        assert "Traceback" not in result.stderr
        leaked = shm_names() - before
        assert not leaked

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_worker_death_leaks_no_segments(self):
        # Workers only attach; the master owns every segment, so killing
        # the whole pool mid-order must leave /dev/shm clean after close.
        from repro.parallel.pool import WorkerPool
        from repro.parallel.scan import ShardedScanExecutor
        from repro.eval.paper import paper_table
        from repro.maxent.constraints import ConstraintSet

        table = paper_table()
        constraints = ConstraintSet.first_order(table)
        model = MaxEntModel.independent(
            table.schema,
            {
                name: table.first_order_probabilities(name)
                for name in table.schema.names
            },
        )
        before = shm_names()
        executor = ShardedScanExecutor(
            pool=WorkerPool(2), transport="shm"
        )
        executor.begin_order(table, 2, constraints, None)
        executor.scan(model)
        with pytest.raises(ParallelError):
            executor.pool.run("_tasks:die", [(), ()])
        executor.end_order()  # safe on the dead pool
        executor.close()
        assert not shm_names() - before

    def test_executor_close_releases_all_segments(self):
        from repro.parallel.pool import WorkerPool
        from repro.parallel.scan import ShardedScanExecutor
        from repro.eval.paper import paper_table
        from repro.maxent.constraints import ConstraintSet

        table = paper_table()
        constraints = ConstraintSet.first_order(table)
        model = MaxEntModel.independent(
            table.schema,
            {
                name: table.first_order_probabilities(name)
                for name in table.schema.names
            },
        )
        before = shm_names()
        with ShardedScanExecutor(
            pool=WorkerPool(2, inline=True),
            transport="shm",
            result_threshold_bytes=0,  # force slabs even at toy size
        ) as executor:
            executor.begin_order(table, 2, constraints, None)
            executor.scan(model)
            executor.end_order()
            assert shm_names() - before  # segments live mid-run
        assert not shm_names() - before
