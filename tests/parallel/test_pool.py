"""WorkerPool: pinned dispatch, state persistence, failure surfacing."""

import multiprocessing

import pytest

from repro.exceptions import DataError, ParallelError, ReproError
from repro.parallel.pool import WorkerPool, resolve_task, shard_bounds

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

ECHO = "_tasks:echo"
PUT = "_tasks:put"
GET = "_tasks:get"
DATA_ERROR = "_tasks:raise_data_error"
VALUE_ERROR = "_tasks:raise_value_error"
DIE = "_tasks:die"


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loads_remainder(self):
        assert shard_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_shards_than_items(self):
        bounds = shard_bounds(2, 4)
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_zero_items(self):
        assert shard_bounds(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_covers_everything_contiguously(self):
        for n_items in range(0, 23):
            for n_shards in range(1, 7):
                bounds = shard_bounds(n_items, n_shards)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_items
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start

    def test_rejects_bad_counts(self):
        with pytest.raises(ParallelError):
            shard_bounds(3, 0)
        with pytest.raises(ParallelError):
            shard_bounds(-1, 2)


class TestResolveTask:
    def test_resolves_module_functions(self):
        func = resolve_task("_tasks:echo")
        assert func({}, 7) == 7

    @pytest.mark.parametrize(
        "address",
        [
            "no_colon",
            ":func",
            "mod:",
            "no.such.module:fn",
            "_tasks:no_such_function",
        ],
    )
    def test_rejects_bad_addresses(self, address):
        with pytest.raises(ParallelError):
            resolve_task(address)


class TestInlinePool:
    def test_results_in_shard_order(self):
        with WorkerPool(3, inline=True) as pool:
            assert pool.run(ECHO, [(1,), (2,), (3,)]) == [1, 2, 3]

    def test_state_is_per_worker_slot(self):
        with WorkerPool(2, inline=True) as pool:
            pool.run(PUT, [("k", "worker0"), ("k", "worker1")])
            assert pool.run(GET, [("k",), ("k",)]) == ["worker0", "worker1"]

    def test_max_workers_one_defaults_to_inline(self):
        pool = WorkerPool(1)
        assert pool.inline
        assert pool.run(ECHO, [("x",)]) == ["x"]
        pool.close()

    def test_too_many_shards_rejected(self):
        with WorkerPool(2, inline=True) as pool:
            with pytest.raises(ParallelError):
                pool.run(ECHO, [(1,), (2,), (3,)])

    def test_closed_pool_rejected(self):
        pool = WorkerPool(2, inline=True)
        pool.close()
        with pytest.raises(ParallelError):
            pool.run(ECHO, [(1,)])

    def test_rejects_nonpositive_worker_count(self):
        with pytest.raises(ParallelError):
            WorkerPool(0)

    def test_library_errors_reraised_as_themselves(self):
        # Same failure contract as the process pool.
        with WorkerPool(2, inline=True) as pool:
            with pytest.raises(DataError, match="boom"):
                pool.run(DATA_ERROR, [("boom",), ("boom",)])
            assert pool.run(ECHO, [(1,), (2,)]) == [1, 2]

    def test_foreign_errors_wrapped_in_parallel_error(self):
        with WorkerPool(2, inline=True) as pool:
            with pytest.raises(ParallelError, match="ValueError"):
                pool.run(VALUE_ERROR, [("nope",), ("nope",)])

    def test_all_shards_run_before_an_error_is_raised(self):
        # Mirrors the process path, which collects every reply first:
        # shard 1 fails but shards 0 and 2 still execute.
        with WorkerPool(3, inline=True) as pool:
            with pytest.raises(ParallelError):
                pool.run(
                    "_tasks:put_or_die",
                    [("k", "w0"), (None, None), ("k", "w2")],
                )
            assert pool.run(GET, [("k",), ("k",), ("k",)]) == [
                "w0",
                None,
                "w2",
            ]


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
class TestProcessPool:
    def test_results_in_shard_order(self):
        with WorkerPool(3) as pool:
            assert not pool.inline
            assert pool.run(ECHO, [(1,), (2,), (3,)]) == [1, 2, 3]

    def test_state_pinned_to_workers_across_calls(self):
        with WorkerPool(2) as pool:
            pool.run(PUT, [("k", "w0"), ("k", "w1")])
            # Pinned dispatch: the same worker serves the same shard slot,
            # so per-worker caches survive across run() calls.
            assert pool.run(GET, [("k",), ("k",)]) == ["w0", "w1"]

    def test_broadcast_hits_every_worker(self):
        with WorkerPool(2) as pool:
            pool.broadcast(PUT, "k", "same")
            assert pool.run(GET, [("k",), ("k",)]) == ["same", "same"]

    def test_library_errors_reraised_as_themselves(self):
        with WorkerPool(2) as pool:
            with pytest.raises(DataError, match="boom"):
                pool.run(DATA_ERROR, [("boom",), ("boom",)])
            # The pool survives a task exception.
            assert pool.run(ECHO, [(1,), (2,)]) == [1, 2]

    def test_foreign_errors_wrapped_in_parallel_error(self):
        with WorkerPool(1, inline=False) as pool:
            with pytest.raises(ParallelError, match="ValueError"):
                pool.run(VALUE_ERROR, [("nope",)])

    def test_dead_worker_surfaces_as_repro_error(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ParallelError, match="died"):
                pool.run(DIE, [(), ()])
            assert isinstance(ParallelError("x"), ReproError)
            # A dead worker poisons the pool; it reports closed afterwards.
            with pytest.raises(ParallelError):
                pool.run(ECHO, [(1,)])

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.run(ECHO, [(1,), (2,)])
        pool.close()
        pool.close()

    def test_spawn_start_method_round_trips(self):
        # Spawn-safety: the child re-imports task modules by dotted name
        # (multiprocessing ships the parent's sys.path to spawned
        # children, so the same addresses resolve).
        with WorkerPool(2, start_method="spawn") as pool:
            assert pool.broadcast(ECHO, 5) == [5, 5]
            pool.run(PUT, [("k", "w0"), ("k", "w1")])
            assert pool.run(GET, [("k",), ("k",)]) == ["w0", "w1"]


class TestInterpreterShutdown:
    """Abandoned pools must die quietly when the interpreter exits.

    ``WorkerPool.__del__`` (and the module atexit hook backing it) runs
    during shutdown, when module globals other finalizers rely on may
    already be None — the regression these subprocess tests pin is an
    ignored-exception traceback on stderr from exactly that window.
    """

    def _exit_cleanly(self, code: str) -> None:
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[2] / "src")
        tests = str(Path(__file__).resolve().parent)
        env = dict(os.environ, PYTHONPATH=os.pathsep.join([src, tests]))
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "Traceback" not in result.stderr, result.stderr
        assert "Exception ignored" not in result.stderr, result.stderr

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_running_pool_abandoned_at_exit(self):
        self._exit_cleanly(
            "from repro.parallel.pool import WorkerPool\n"
            "pool = WorkerPool(2)\n"  # module global: None'd at shutdown
            "assert pool.run('_tasks:echo', [(1,), (2,)]) == [1, 2]\n"
        )

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_pool_held_only_by_cycle_at_exit(self):
        # A pool kept alive by a reference cycle is torn down by the
        # shutdown GC pass, the worst-cased timing for __del__.
        self._exit_cleanly(
            "from repro.parallel.pool import WorkerPool\n"
            "pool = WorkerPool(2)\n"
            "pool.run('_tasks:put', [('k', 1), ('k', 2)])\n"
            "cycle = {'pool': pool}\n"
            "cycle['self'] = cycle\n"
            "del pool, cycle\n"
        )

    def test_inline_pool_abandoned_at_exit(self):
        self._exit_cleanly(
            "from repro.parallel.pool import WorkerPool\n"
            "pool = WorkerPool(3, inline=True)\n"
            "pool.run('_tasks:echo', [(1,), (2,), (3,)])\n"
        )
