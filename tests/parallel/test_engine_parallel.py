"""Acceptance: 4-worker discovery == serial discovery on every scenario.

`repro discover --workers 4` must produce bit-identical adopted
constraints and fitted models to `--workers 1` on every smoke-tier
scenario in the registry, plus a wide full-tier world (smoke sizes; the
decisions are size-independent because the sharded kernels are
float-for-float identical to the serial ones).  One engine — and
therefore one worker pool — serves all scenarios, the way a long-lived
service would.
"""

import numpy as np
import pytest

from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.scenarios import get_scenario, run_scenario, scenario_names


@pytest.fixture(scope="module")
def instances():
    # The smoke tier covers every structure class the original fleet
    # had; one wide full-tier scenario exercises sharding over many
    # attributes without dragging the whole stress tier into this suite.
    names = [*scenario_names("smoke"), "wide-order2"]
    return {
        name: get_scenario(name).build(smoke=True) for name in names
    }


def test_every_registry_scenario_is_worker_invariant(instances):
    for name, instance in instances.items():
        scenario = get_scenario(name)
        serial = DiscoveryEngine(
            DiscoveryConfig(max_order=scenario.max_order)
        ).run(instance.table)
        with DiscoveryEngine(
            DiscoveryConfig(max_order=scenario.max_order, max_workers=4)
        ) as engine:
            parallel = engine.run(instance.table)
        assert [c.key for c in parallel.found] == [
            c.key for c in serial.found
        ], f"adopted constraints diverged on scenario {name!r}"
        assert [c.probability for c in parallel.found] == [
            c.probability for c in serial.found
        ], f"constraint targets diverged on scenario {name!r}"
        assert np.array_equal(
            parallel.model.joint(), serial.model.joint()
        ), f"fitted model diverged on scenario {name!r}"


def test_max_workers_is_not_serialized():
    # Execution knob, machine-local: a saved artifact must not spawn
    # process pools on whatever host later loads it.
    config = DiscoveryConfig(max_order=2, max_workers=4)
    data = config.to_dict()
    assert "max_workers" not in data
    assert DiscoveryConfig.from_dict(data).max_workers == 1


def test_runner_outcomes_match_under_workers():
    serial = run_scenario(
        "single-pairwise", smoke=True, workers=1, include_baselines=False
    )
    parallel = run_scenario(
        "single-pairwise", smoke=True, workers=2, include_baselines=False
    )
    assert parallel.workers == 2
    assert parallel.constraints_found == serial.constraints_found
    assert parallel.precision == serial.precision
    assert parallel.recall == serial.recall
    assert parallel.kl_empirical_fitted == serial.kl_empirical_fitted
    assert parallel.gate_failures == serial.gate_failures
