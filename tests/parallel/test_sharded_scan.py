"""Sharded scans == serial scans, bit for bit, at every split.

The contract: splitting an order's subsets across shard kernels and
concatenating their outputs reproduces the serial
:class:`~repro.significance.kernels.OrderScanKernel` scan exactly — every
CellTest float (m1, m2, predicted, moments), the feasible ranges and
determined flags, the cell order, and therefore the greedy argmax — for
any shard count and any split, including empty and maximally uneven ones.
At the engine level that makes a parallel discovery run's adopted
constraints and fitted marginals bit-identical to a serial run's.
"""

import pickle
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.contingency import ContingencyTable
from repro.data.schema import Attribute, Schema
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.exceptions import ConstraintError, DataError, ParallelError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.ipf import fit_ipf
from repro.maxent.model import MaxEntModel
from repro.parallel.pool import WorkerPool, shard_bounds
from repro.parallel.scan import ShardedScanExecutor, scan_order_sharded
from repro.parallel.shm import shm_available
from repro.significance.kernels import OrderScanKernel
from repro.significance.mml import most_significant

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Both executor transports; shm skipped where the platform lacks it.
TRANSPORTS = [
    "pipe",
    pytest.param(
        "shm",
        marks=pytest.mark.skipif(
            not shm_available(), reason="shared memory unavailable"
        ),
    ),
]


@st.composite
def scan_worlds(draw, max_attributes=4, max_values=3):
    """A random (table, constraints, model) triple ready to scan."""
    count = draw(st.integers(2, max_attributes))
    attributes = []
    for index in range(count):
        cardinality = draw(st.integers(2, max_values))
        attributes.append(
            Attribute(
                f"ATTR{index}", tuple(f"v{v}" for v in range(cardinality))
            )
        )
    schema = Schema(attributes)
    cells = schema.num_cells
    counts = draw(
        st.lists(st.integers(1, 12), min_size=cells, max_size=cells)
    )
    table = ContingencyTable(
        schema, np.array(counts, dtype=np.int64).reshape(schema.shape)
    )
    constraints = ConstraintSet.first_order(table)
    for _ in range(draw(st.integers(0, 3))):
        order = draw(st.integers(2, count))
        subsets = table.subsets_of_order(order)
        subset = subsets[draw(st.integers(0, len(subsets) - 1))]
        values = tuple(
            draw(st.integers(0, schema.attribute(name).cardinality - 1))
            for name in subset
        )
        candidate = constraints.cell_from_table(table, subset, values)
        if candidate.probability >= 0.99:
            continue
        try:
            constraints.add_cell(candidate)
        except ConstraintError:
            continue
    model = MaxEntModel.independent(
        schema,
        {name: table.first_order_probabilities(name) for name in schema.names},
    )
    if draw(st.booleans()):
        try:
            model = fit_ipf(
                constraints,
                initial=model,
                max_sweeps=40,
                require_convergence=False,
            ).model
        except ConstraintError:
            pass
    return table, constraints, model


@st.composite
def shard_splits(draw, n_items: int):
    """Arbitrary contiguous bounds over ``n_items``: 1-4 shards, any cuts
    (empty and maximally uneven shards included)."""
    n_shards = draw(st.integers(1, 4))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(0, n_items),
                min_size=n_shards - 1,
                max_size=n_shards - 1,
            )
        )
    )
    edges = [0, *cuts, n_items]
    return list(zip(edges, edges[1:]))


class TestShardedScanBitIdentity:
    @SETTINGS
    @given(world=scan_worlds(), data=st.data())
    def test_any_split_matches_serial(self, world, data):
        table, constraints, model = world
        for order in range(2, len(table.schema) + 1):
            n_subsets = len(table.subsets_of_order(order))
            shards = data.draw(shard_splits(n_subsets), label=f"order{order}")
            try:
                serial = OrderScanKernel(table, order, constraints).scan(
                    model
                )
            except DataError:
                with pytest.raises(DataError):
                    scan_order_sharded(
                        table, model, order, constraints, shards=shards
                    )
                continue
            sharded = scan_order_sharded(
                table, model, order, constraints, shards=shards
            )
            assert sharded == serial

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4])
    def test_balanced_splits_match_serial(self, table, num_shards):
        from repro.discovery.engine import discover

        state = discover(table, DiscoveryConfig(max_order=2))
        serial = OrderScanKernel(table, 3, state.constraints).scan(
            state.model
        )
        sharded = scan_order_sharded(
            table,
            state.model,
            3,
            state.constraints,
            num_shards=num_shards,
        )
        assert sharded == serial

    def test_uneven_bounds_cover_and_match(self, table):
        from repro.discovery.engine import discover

        state = discover(table, DiscoveryConfig(max_order=2))
        subsets = len(table.subsets_of_order(2))
        # Maximally uneven: everything in the last shard, two empty.
        shards = [(0, 0), (0, 0), (0, subsets)]
        serial = OrderScanKernel(table, 2, state.constraints).scan(
            state.model
        )
        sharded = scan_order_sharded(
            table, state.model, 2, state.constraints, shards=shards
        )
        assert sharded == serial


class TestTransportBitIdentity:
    """Both transports reproduce the serial scan, bit for bit.

    The pipe rows re-run the executor suite's core property with pickling
    payloads; the shm rows feed the kernels zero-copy shared views and
    return float columns through shared slabs (``result_threshold_bytes=0``
    forces slabs even at toy sizes), so any encode/decode drift — a single
    ulp anywhere in the m1/m2/moment floats — fails these.
    """

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @SETTINGS
    @given(world=scan_worlds())
    def test_executor_matches_serial(self, transport, world):
        table, constraints, model = world
        executor = ShardedScanExecutor(
            pool=WorkerPool(3, inline=True),
            transport=transport,
            result_threshold_bytes=0,
        )
        try:
            for order in range(2, len(table.schema) + 1):
                try:
                    serial = OrderScanKernel(
                        table, order, constraints
                    ).scan(model)
                except DataError:
                    continue
                executor.begin_order(table, order, constraints, None)
                tests, chosen = executor.scan(model)
                executor.end_order()
                assert tests == serial
                assert chosen == most_significant(list(serial))
        finally:
            executor.close()

    def test_rescan_same_model_skips_republish(self, table):
        constraints = ConstraintSet.first_order(table)
        model = MaxEntModel.independent(
            table.schema,
            {
                name: table.first_order_probabilities(name)
                for name in table.schema.names
            },
        )
        with ShardedScanExecutor(
            pool=WorkerPool(2, inline=True), transport="shm"
        ) as executor:
            executor.begin_order(table, 2, constraints, None)
            first, _ = executor.scan(model)
            second, _ = executor.scan(model)
            executor.end_order()
            assert executor.counters.broadcasts_total == 2
            assert executor.counters.broadcasts_skipped == 1
            # The skipped rebroadcast serves the same segment contents.
            assert first == second
            # A *changed* model republishes: same segment, fresh payload.
            shifted = MaxEntModel.independent(
                table.schema,
                {
                    name: np.roll(
                        table.first_order_probabilities(name), 1
                    )
                    for name in table.schema.names
                },
            )
            executor.begin_order(table, 2, constraints, None)
            third, _ = executor.scan(shifted)
            assert executor.counters.broadcasts_skipped == 1
            serial = OrderScanKernel(table, 2, constraints).scan(shifted)
            assert third == serial

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_env_var_selects_transport(self, transport, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_TRANSPORT", transport)
        with ShardedScanExecutor(
            pool=WorkerPool(2, inline=True)
        ) as executor:
            assert executor.transport == transport


class TestLazyScanTests:
    """The lazy CellTest list: decode-once, and decodable after close."""

    def _scan(self, table, executor_kwargs=None):
        constraints = ConstraintSet.first_order(table)
        model = MaxEntModel.independent(
            table.schema,
            {
                name: table.first_order_probabilities(name)
                for name in table.schema.names
            },
        )
        executor = ShardedScanExecutor(
            pool=WorkerPool(2, inline=True), **(executor_kwargs or {})
        )
        executor.begin_order(table, 2, constraints, None)
        tests, _chosen = executor.scan(model)
        executor.end_order()
        serial = OrderScanKernel(table, 2, constraints).scan(model)
        return executor, tests, serial

    def test_concurrent_readers_materialize_once(self, table, monkeypatch):
        executor, tests, serial = self._scan(table)
        executor.close()
        from repro.parallel import scan as scan_module

        decodes = []
        real = scan_module.tests_from_columns

        def counting(columns):
            decodes.append(threading.get_ident())
            return real(columns)

        monkeypatch.setattr(scan_module, "tests_from_columns", counting)
        shard_count = len(tests._shards)
        barrier = threading.Barrier(8)
        results = []

        def read():
            barrier.wait()
            results.append(list(tests))

        threads = [threading.Thread(target=read) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # One decode pass (one call per shard), all by the same winner.
        assert len(decodes) == shard_count
        assert len(set(decodes)) == 1
        assert all(result == serial for result in results)
        assert tests.materialized

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_decodes_after_executor_closed(self, table, transport):
        # Column payloads are retained copies, not shared-segment views:
        # a trace read long after the pool (and its segments) are gone
        # must still decode — equality, indexing, and pickling included.
        executor, tests, serial = self._scan(
            table,
            {"transport": transport, "result_threshold_bytes": 0},
        )
        executor.close()
        assert not tests.materialized
        assert tests == serial
        assert tests[0] == serial[0]
        revived = pickle.loads(pickle.dumps(tests))
        assert revived == serial
        assert len(revived) == len(serial)


class TestShardedEngineEquivalence:
    """Engine-level: sharded executors never change discovery's answers."""

    def _survey_table(self):
        from repro.synth.surveys import medical_survey_population

        rng = np.random.default_rng(11)
        return medical_survey_population().sample_table(3000, rng)

    def _assert_runs_identical(self, serial, parallel):
        assert [c.key for c in parallel.found] == [
            c.key for c in serial.found
        ]
        assert [c.probability for c in parallel.found] == [
            c.probability for c in serial.found
        ]
        assert len(parallel.scans) == len(serial.scans)
        for ours, theirs in zip(parallel.scans, serial.scans):
            assert ours.order == theirs.order
            assert ours.tests == theirs.tests  # every m1/m2/moment float
            assert ours.chosen == theirs.chosen
        # Fitted model, down to the last bit of every marginal.
        assert np.array_equal(
            parallel.model.joint(), serial.model.joint()
        )

    @pytest.mark.parametrize("num_workers", [1, 2, 3, 4])
    def test_inline_pools_every_worker_count(self, num_workers):
        survey = self._survey_table()
        config = DiscoveryConfig(max_order=3)
        serial = DiscoveryEngine(config).run(survey)
        executor = ShardedScanExecutor(
            pool=WorkerPool(num_workers, inline=True)
        )
        with DiscoveryEngine(config, executor=executor) as engine:
            parallel = engine.run(survey)
        executor.close()
        self._assert_runs_identical(serial, parallel)

    def test_process_pool_matches_serial(self):
        survey = self._survey_table()
        config = DiscoveryConfig(max_order=3, max_workers=2)
        serial = DiscoveryEngine(DiscoveryConfig(max_order=3)).run(survey)
        with DiscoveryEngine(config) as engine:
            assert engine.executor is not None
            parallel = engine.run(survey)
        self._assert_runs_identical(serial, parallel)

    def test_rerun_under_executor_matches_serial(self):
        rng = np.random.default_rng(23)
        from repro.synth.surveys import medical_survey_population

        population = medical_survey_population()
        first = population.sample_table(2500, rng)
        delta = population.sample_table(800, rng)
        merged = first + delta

        config = DiscoveryConfig(max_order=2)
        previous = DiscoveryEngine(config).run(first)
        serial = DiscoveryEngine(config).rerun(merged, previous)
        parallel_config = DiscoveryConfig(max_order=2, max_workers=2)
        with DiscoveryEngine(parallel_config) as engine:
            parallel = engine.rerun(merged, previous)
        assert [c.key for c in parallel.found] == [
            c.key for c in serial.found
        ]
        assert np.array_equal(
            parallel.model.joint(), serial.model.joint()
        )


class TestExecutorLifecycle:
    def test_scan_without_begin_order_rejected(self):
        executor = ShardedScanExecutor(pool=WorkerPool(2, inline=True))
        with pytest.raises(ParallelError):
            executor.scan(None)
        executor.close()

    def test_shard_count_capped_by_subsets(self, table):
        # 3 attributes -> one order-3 subset; 4 workers must collapse to
        # a single shard rather than initializing empty kernels.
        constraints = ConstraintSet.first_order(table)
        executor = ShardedScanExecutor(pool=WorkerPool(4, inline=True))
        executor.begin_order(table, 3, constraints, None)
        assert executor._active_shards == 1
        executor.end_order()
        executor.close()

    def test_bounds_match_pool_helper(self, table):
        subsets = table.subsets_of_order(2)
        assert shard_bounds(len(subsets), 2)[0][0] == 0
