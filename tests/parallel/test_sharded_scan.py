"""Sharded scans == serial scans, bit for bit, at every split.

The contract: splitting an order's subsets across shard kernels and
concatenating their outputs reproduces the serial
:class:`~repro.significance.kernels.OrderScanKernel` scan exactly — every
CellTest float (m1, m2, predicted, moments), the feasible ranges and
determined flags, the cell order, and therefore the greedy argmax — for
any shard count and any split, including empty and maximally uneven ones.
At the engine level that makes a parallel discovery run's adopted
constraints and fitted marginals bit-identical to a serial run's.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.contingency import ContingencyTable
from repro.data.schema import Attribute, Schema
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.exceptions import ConstraintError, DataError, ParallelError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.ipf import fit_ipf
from repro.maxent.model import MaxEntModel
from repro.parallel.pool import WorkerPool, shard_bounds
from repro.parallel.scan import ShardedScanExecutor, scan_order_sharded
from repro.significance.kernels import OrderScanKernel

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def scan_worlds(draw, max_attributes=4, max_values=3):
    """A random (table, constraints, model) triple ready to scan."""
    count = draw(st.integers(2, max_attributes))
    attributes = []
    for index in range(count):
        cardinality = draw(st.integers(2, max_values))
        attributes.append(
            Attribute(
                f"ATTR{index}", tuple(f"v{v}" for v in range(cardinality))
            )
        )
    schema = Schema(attributes)
    cells = schema.num_cells
    counts = draw(
        st.lists(st.integers(1, 12), min_size=cells, max_size=cells)
    )
    table = ContingencyTable(
        schema, np.array(counts, dtype=np.int64).reshape(schema.shape)
    )
    constraints = ConstraintSet.first_order(table)
    for _ in range(draw(st.integers(0, 3))):
        order = draw(st.integers(2, count))
        subsets = table.subsets_of_order(order)
        subset = subsets[draw(st.integers(0, len(subsets) - 1))]
        values = tuple(
            draw(st.integers(0, schema.attribute(name).cardinality - 1))
            for name in subset
        )
        candidate = constraints.cell_from_table(table, subset, values)
        if candidate.probability >= 0.99:
            continue
        try:
            constraints.add_cell(candidate)
        except ConstraintError:
            continue
    model = MaxEntModel.independent(
        schema,
        {name: table.first_order_probabilities(name) for name in schema.names},
    )
    if draw(st.booleans()):
        try:
            model = fit_ipf(
                constraints,
                initial=model,
                max_sweeps=40,
                require_convergence=False,
            ).model
        except ConstraintError:
            pass
    return table, constraints, model


@st.composite
def shard_splits(draw, n_items: int):
    """Arbitrary contiguous bounds over ``n_items``: 1-4 shards, any cuts
    (empty and maximally uneven shards included)."""
    n_shards = draw(st.integers(1, 4))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(0, n_items),
                min_size=n_shards - 1,
                max_size=n_shards - 1,
            )
        )
    )
    edges = [0, *cuts, n_items]
    return list(zip(edges, edges[1:]))


class TestShardedScanBitIdentity:
    @SETTINGS
    @given(world=scan_worlds(), data=st.data())
    def test_any_split_matches_serial(self, world, data):
        table, constraints, model = world
        for order in range(2, len(table.schema) + 1):
            n_subsets = len(table.subsets_of_order(order))
            shards = data.draw(shard_splits(n_subsets), label=f"order{order}")
            try:
                serial = OrderScanKernel(table, order, constraints).scan(
                    model
                )
            except DataError:
                with pytest.raises(DataError):
                    scan_order_sharded(
                        table, model, order, constraints, shards=shards
                    )
                continue
            sharded = scan_order_sharded(
                table, model, order, constraints, shards=shards
            )
            assert sharded == serial

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4])
    def test_balanced_splits_match_serial(self, table, num_shards):
        from repro.discovery.engine import discover

        state = discover(table, DiscoveryConfig(max_order=2))
        serial = OrderScanKernel(table, 3, state.constraints).scan(
            state.model
        )
        sharded = scan_order_sharded(
            table,
            state.model,
            3,
            state.constraints,
            num_shards=num_shards,
        )
        assert sharded == serial

    def test_uneven_bounds_cover_and_match(self, table):
        from repro.discovery.engine import discover

        state = discover(table, DiscoveryConfig(max_order=2))
        subsets = len(table.subsets_of_order(2))
        # Maximally uneven: everything in the last shard, two empty.
        shards = [(0, 0), (0, 0), (0, subsets)]
        serial = OrderScanKernel(table, 2, state.constraints).scan(
            state.model
        )
        sharded = scan_order_sharded(
            table, state.model, 2, state.constraints, shards=shards
        )
        assert sharded == serial


class TestShardedEngineEquivalence:
    """Engine-level: sharded executors never change discovery's answers."""

    def _survey_table(self):
        from repro.synth.surveys import medical_survey_population

        rng = np.random.default_rng(11)
        return medical_survey_population().sample_table(3000, rng)

    def _assert_runs_identical(self, serial, parallel):
        assert [c.key for c in parallel.found] == [
            c.key for c in serial.found
        ]
        assert [c.probability for c in parallel.found] == [
            c.probability for c in serial.found
        ]
        assert len(parallel.scans) == len(serial.scans)
        for ours, theirs in zip(parallel.scans, serial.scans):
            assert ours.order == theirs.order
            assert ours.tests == theirs.tests  # every m1/m2/moment float
            assert ours.chosen == theirs.chosen
        # Fitted model, down to the last bit of every marginal.
        assert np.array_equal(
            parallel.model.joint(), serial.model.joint()
        )

    @pytest.mark.parametrize("num_workers", [1, 2, 3, 4])
    def test_inline_pools_every_worker_count(self, num_workers):
        survey = self._survey_table()
        config = DiscoveryConfig(max_order=3)
        serial = DiscoveryEngine(config).run(survey)
        executor = ShardedScanExecutor(
            pool=WorkerPool(num_workers, inline=True)
        )
        with DiscoveryEngine(config, executor=executor) as engine:
            parallel = engine.run(survey)
        executor.close()
        self._assert_runs_identical(serial, parallel)

    def test_process_pool_matches_serial(self):
        survey = self._survey_table()
        config = DiscoveryConfig(max_order=3, max_workers=2)
        serial = DiscoveryEngine(DiscoveryConfig(max_order=3)).run(survey)
        with DiscoveryEngine(config) as engine:
            assert engine.executor is not None
            parallel = engine.run(survey)
        self._assert_runs_identical(serial, parallel)

    def test_rerun_under_executor_matches_serial(self):
        rng = np.random.default_rng(23)
        from repro.synth.surveys import medical_survey_population

        population = medical_survey_population()
        first = population.sample_table(2500, rng)
        delta = population.sample_table(800, rng)
        merged = first + delta

        config = DiscoveryConfig(max_order=2)
        previous = DiscoveryEngine(config).run(first)
        serial = DiscoveryEngine(config).rerun(merged, previous)
        parallel_config = DiscoveryConfig(max_order=2, max_workers=2)
        with DiscoveryEngine(parallel_config) as engine:
            parallel = engine.rerun(merged, previous)
        assert [c.key for c in parallel.found] == [
            c.key for c in serial.found
        ]
        assert np.array_equal(
            parallel.model.joint(), serial.model.joint()
        )


class TestExecutorLifecycle:
    def test_scan_without_begin_order_rejected(self):
        executor = ShardedScanExecutor(pool=WorkerPool(2, inline=True))
        with pytest.raises(ParallelError):
            executor.scan(None)
        executor.close()

    def test_shard_count_capped_by_subsets(self, table):
        # 3 attributes -> one order-3 subset; 4 workers must collapse to
        # a single shard rather than initializing empty kernels.
        constraints = ConstraintSet.first_order(table)
        executor = ShardedScanExecutor(pool=WorkerPool(4, inline=True))
        executor.begin_order(table, 3, constraints, None)
        assert executor._active_shards == 1
        executor.end_order()
        executor.close()

    def test_bounds_match_pool_helper(self, table):
        subsets = table.subsets_of_order(2)
        assert shard_bounds(len(subsets), 2)[0][0] == 0
