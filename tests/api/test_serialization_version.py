"""Tests for the versioned knowledge-base serialization format."""

import json

import pytest

from repro.core.knowledge_base import (
    FORMAT_VERSION,
    ProbabilisticKnowledgeBase,
)
from repro.exceptions import DataError

QUERIES = [
    "CANCER=yes",
    "CANCER=yes | SMOKING=smoker",
    "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes",
]


@pytest.fixture
def kb(table):
    return ProbabilisticKnowledgeBase.from_data(table)


class TestFormatVersion:
    def test_current_version_is_two(self):
        assert FORMAT_VERSION == 2

    def test_to_dict_stamps_version(self, kb):
        assert kb.to_dict()["format_version"] == FORMAT_VERSION

    def test_v2_round_trip(self, kb):
        clone = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
        for text in QUERIES:
            assert clone.query(text) == pytest.approx(
                kb.query(text), rel=1e-12
            )

    def test_v1_dict_migrates(self, kb):
        """A v1 dict is exactly a v2 dict without the version field."""
        legacy = kb.to_dict()
        legacy.pop("format_version")
        clone = ProbabilisticKnowledgeBase.from_dict(legacy)
        for text in QUERIES:
            assert clone.query(text) == pytest.approx(
                kb.query(text), rel=1e-12
            )

    def test_v1_file_round_trip(self, kb, tmp_path):
        legacy = kb.to_dict()
        legacy.pop("format_version")
        path = tmp_path / "legacy_kb.json"
        path.write_text(json.dumps(legacy))
        loaded = ProbabilisticKnowledgeBase.load(path)
        assert loaded.sample_size == kb.sample_size
        # Re-saving upgrades the file to the current format.
        upgraded = tmp_path / "upgraded_kb.json"
        loaded.save(upgraded)
        assert (
            json.loads(upgraded.read_text())["format_version"]
            == FORMAT_VERSION
        )

    def test_future_version_rejected(self, kb):
        data = kb.to_dict()
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(DataError, match="upgrade repro"):
            ProbabilisticKnowledgeBase.from_dict(data)

    @pytest.mark.parametrize("bad", ["2", 2.0, 0, -1, None, True])
    def test_bad_version_rejected(self, kb, bad):
        data = kb.to_dict()
        data["format_version"] = bad
        with pytest.raises(DataError, match="format_version"):
            ProbabilisticKnowledgeBase.from_dict(data)

    def test_non_dict_rejected(self):
        with pytest.raises(DataError, match="malformed"):
            ProbabilisticKnowledgeBase.from_dict([1, 2, 3])
