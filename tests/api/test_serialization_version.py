"""Tests for the versioned knowledge-base serialization format."""

import json

import pytest

from repro.core.knowledge_base import (
    FORMAT_VERSION,
    ProbabilisticKnowledgeBase,
)
from repro.exceptions import DataError

QUERIES = [
    "CANCER=yes",
    "CANCER=yes | SMOKING=smoker",
    "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes",
]


@pytest.fixture
def kb(table):
    return ProbabilisticKnowledgeBase.from_data(table)


def _v2_dict(kb):
    """A faithful v2 payload: the current layout minus the v3 additions."""
    data = kb.to_dict()
    data["format_version"] = 2
    data.pop("revisions")
    data.pop("discovery")
    return data


class TestFormatVersion:
    def test_current_version_is_three(self):
        assert FORMAT_VERSION == 3

    def test_to_dict_stamps_version(self, kb):
        assert kb.to_dict()["format_version"] == FORMAT_VERSION

    def test_v3_round_trip(self, kb):
        clone = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
        for text in QUERIES:
            assert clone.query(text) == pytest.approx(
                kb.query(text), rel=1e-12
            )

    def test_v2_dict_migrates(self, kb):
        """v2 lacks the lifecycle fields; everything else reads unchanged."""
        clone = ProbabilisticKnowledgeBase.from_dict(_v2_dict(kb))
        for text in QUERIES:
            assert clone.query(text) == pytest.approx(
                kb.query(text), rel=1e-12
            )
        assert clone.revisions == []
        assert clone.discovery is None
        assert not clone.can_update

    def test_v1_dict_migrates(self, kb):
        """A v1 dict is exactly a v2 dict without the version field."""
        legacy = _v2_dict(kb)
        legacy.pop("format_version")
        clone = ProbabilisticKnowledgeBase.from_dict(legacy)
        for text in QUERIES:
            assert clone.query(text) == pytest.approx(
                kb.query(text), rel=1e-12
            )
        assert not clone.can_update

    @pytest.mark.parametrize("version", [1, 2])
    def test_legacy_file_round_trip(self, kb, tmp_path, version):
        legacy = _v2_dict(kb)
        if version == 1:
            legacy.pop("format_version")
        path = tmp_path / "legacy_kb.json"
        path.write_text(json.dumps(legacy))
        loaded = ProbabilisticKnowledgeBase.load(path)
        assert loaded.sample_size == kb.sample_size
        # Re-saving upgrades the file to the current format.
        upgraded = tmp_path / "upgraded_kb.json"
        loaded.save(upgraded)
        assert (
            json.loads(upgraded.read_text())["format_version"]
            == FORMAT_VERSION
        )

    def test_future_version_rejected(self, kb):
        data = kb.to_dict()
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(DataError, match="upgrade repro"):
            ProbabilisticKnowledgeBase.from_dict(data)

    @pytest.mark.parametrize("bad", ["2", 2.0, 0, -1, None, True])
    def test_bad_version_rejected(self, kb, bad):
        data = kb.to_dict()
        data["format_version"] = bad
        with pytest.raises(DataError, match="format_version"):
            ProbabilisticKnowledgeBase.from_dict(data)

    def test_non_dict_rejected(self):
        with pytest.raises(DataError, match="malformed"):
            ProbabilisticKnowledgeBase.from_dict([1, 2, 3])


class TestAuditTrailRoundTrip:
    """Format 3 round-trips the discovery trace and revision history."""

    def test_discovery_trace_survives(self, kb):
        clone = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
        original = kb.discovery
        restored = clone.discovery
        assert restored is not None
        assert restored.table == original.table
        assert restored.constraints.cell_keys() == (
            original.constraints.cell_keys()
        )
        assert restored.num_scans() == original.num_scans()
        for old, new in zip(original.scans, restored.scans):
            assert new.order == old.order
            assert new.fit_sweeps == old.fit_sweeps
            assert new.tests == old.tests
            assert new.chosen == old.chosen
        assert restored.config == original.config
        assert restored.summary() == original.summary()

    def test_restored_model_is_attached(self, kb):
        clone = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
        assert clone.discovery.model is clone.model

    def test_revisions_survive(self, kb, table, rng):
        from repro.data.dataset import Dataset

        delta = Dataset.from_joint(
            kb.schema, table.probabilities(), 400, rng
        ).to_contingency()
        kb.update(delta)
        clone = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
        assert clone.revisions == kb.revisions
        assert clone.revisions[0].mode == "initial"
        assert clone.revisions[1].mode in ("warm", "cold")

    def test_save_without_audit(self, kb, tmp_path):
        """include_audit=False writes the model only: smaller, no counts
        disclosed, not updatable — the pre-format-3 shipping shape."""
        full = tmp_path / "full.json"
        lean = tmp_path / "lean.json"
        kb.save(full)
        kb.save(lean, include_audit=False)
        assert lean.stat().st_size < full.stat().st_size
        assert "counts" not in lean.read_text()
        loaded = ProbabilisticKnowledgeBase.load(lean)
        assert loaded.discovery is None
        assert not loaded.can_update
        assert loaded.query(QUERIES[1]) == pytest.approx(
            kb.query(QUERIES[1]), rel=1e-12
        )

    def test_loaded_kb_updates_warm(self, kb, table, rng, tmp_path):
        """The round-tripped audit trail keeps the KB updatable."""
        from repro.data.dataset import Dataset

        path = tmp_path / "kb.json"
        kb.save(path)
        loaded = ProbabilisticKnowledgeBase.load(path)
        assert loaded.can_update
        delta = Dataset.from_joint(
            kb.schema, table.probabilities(), 400, rng
        ).to_contingency()
        revision = loaded.update(delta)
        assert revision.mode == "warm"
        assert loaded.sample_size == table.total + 400
