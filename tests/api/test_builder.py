"""Tests for the fluent probability-expression builder."""

import pytest

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.exceptions import QueryError


@pytest.fixture
def kb(table):
    return ProbabilisticKnowledgeBase.from_data(table)


class TestBuilder:
    def test_unconditional(self, kb):
        assert kb.p("CANCER=yes").value() == pytest.approx(
            kb.query("CANCER=yes")
        )

    def test_conditional(self, kb):
        expression = kb.p("CANCER=yes").given("SMOKING=smoker")
        assert expression.value() == pytest.approx(
            kb.query("CANCER=yes | SMOKING=smoker")
        )

    def test_chained_evidence(self, kb):
        expression = (
            kb.p("CANCER=yes").given("SMOKING=smoker").given("FAMILY_HISTORY=yes")
        )
        assert expression.value() == pytest.approx(
            kb.query("CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes")
        )

    def test_float_conversion(self, kb):
        assert float(kb.p("CANCER=yes")) == pytest.approx(
            kb.query("CANCER=yes")
        )

    def test_immutable_extension(self, kb):
        base = kb.p("CANCER=yes")
        conditioned = base.given("SMOKING=smoker")
        assert base.value() == pytest.approx(kb.query("CANCER=yes"))
        assert conditioned.value() != pytest.approx(base.value())

    def test_plan_exposes_compilation(self, kb):
        plan = kb.p("CANCER=yes").given("SMOKING=smoker").plan()
        assert plan.description == "P(CANCER=yes | SMOKING=smoker)"

    def test_repr_shows_query_without_evaluating(self, kb):
        text = repr(kb.p("CANCER=yes").given("SMOKING=smoker"))
        assert "CANCER=yes | SMOKING=smoker" in text

    def test_repr_never_raises(self, kb):
        """Displaying an invalid expression must not throw; only use does."""
        assert "CANCER=bogus" in repr(kb.p("CANCER=bogus"))

    def test_invalid_expression_raises_on_use(self, kb):
        expression = kb.p("CANCER=maybe")
        with pytest.raises(QueryError, match="unknown value"):
            expression.value()

    def test_overlap_rejected(self, kb):
        with pytest.raises(QueryError, match="both target and evidence"):
            kb.p("CANCER=yes").given("CANCER=no").value()
