"""Tests for the inference-backend protocol, registry, and auto selection."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.backends import (
    DENSE_CELL_LIMIT,
    DenseBackend,
    EliminationBackend,
    available_backends,
    create_backend,
    register_backend,
    select_backend,
    unregister_backend,
)
from repro.api.session import QuerySession
from repro.data.schema import Attribute, Schema
from repro.discovery.engine import discover
from repro.exceptions import QueryError
from repro.maxent.model import MaxEntModel


@pytest.fixture
def model(table):
    return discover(table).model


def wide_schema(width: int) -> Schema:
    return Schema(
        [Attribute(f"X{i}", ("a", "b")) for i in range(width)]
    )


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "dense" in names and "elimination" in names

    def test_unknown_backend_rejected(self, model):
        with pytest.raises(QueryError, match="unknown inference backend"):
            create_backend("quantum", model)

    def test_create_by_name(self, model):
        assert isinstance(create_backend("dense", model), DenseBackend)
        assert isinstance(
            create_backend("elimination", model), EliminationBackend
        )

    def test_custom_backend_plugs_in(self, model):
        @register_backend
        class ScaledDense(DenseBackend):
            name = "scaled-dense"

        try:
            assert "scaled-dense" in available_backends()
            backend = create_backend("scaled-dense", model)
            expected = model.marginal(("CANCER",))
            assert backend.marginal(("CANCER",)) == pytest.approx(expected)
            # The whole session stack works through the plugin.
            session = QuerySession(model, backend="scaled-dense")
            assert session.ask("CANCER=yes") == pytest.approx(
                model.probability({"CANCER": "yes"})
            )
        finally:
            unregister_backend("scaled-dense")
        with pytest.raises(QueryError, match="unknown"):
            create_backend("scaled-dense", model)

    def test_auto_name_reserved(self):
        with pytest.raises(ValueError, match="reserved"):

            @register_backend
            class Bad(DenseBackend):
                name = "auto"

    def test_duplicate_name_rejected(self):
        """A plugin cannot silently replace a built-in backend."""
        with pytest.raises(ValueError, match="already registered"):

            @register_backend
            class Impostor(EliminationBackend):
                name = "dense"

        assert isinstance(
            create_backend("dense", MaxEntModel.uniform(wide_schema(2))),
            DenseBackend,
        )


class TestAutoSelection:
    def test_small_schema_picks_dense(self, model):
        assert select_backend(model) == "dense"
        assert isinstance(create_backend("auto", model), DenseBackend)

    def test_wide_schema_picks_elimination(self):
        width = DENSE_CELL_LIMIT.bit_length()  # 2**width > limit
        model = MaxEntModel.uniform(wide_schema(width))
        assert select_backend(model) == "elimination"
        assert isinstance(create_backend("auto", model), EliminationBackend)

    def test_wide_schema_mpe_with_evidence_stays_restricted(self):
        """Elimination MPE only materializes the free-attribute table."""
        width = DENSE_CELL_LIMIT.bit_length()
        schema = wide_schema(width)
        margins = {a.name: [0.25, 0.75] for a in schema}
        model = MaxEntModel.independent(schema, margins)
        backend = EliminationBackend(model)
        given = {f"X{i}": 0 for i in range(width - 2)}  # pin all but 2
        labels, probability = backend.most_probable(given)
        assert all(labels[name] == "a" for name in given)
        # Free attributes take their individually most likely value.
        assert labels[f"X{width - 1}"] == "b"
        assert probability == pytest.approx(0.75 * 0.75)

    def test_none_means_auto(self, model):
        assert isinstance(create_backend(None, model), DenseBackend)


class TestAgreement:
    def test_marginals_agree_on_paper_model(self, model):
        dense = DenseBackend(model)
        factored = EliminationBackend(model)
        subsets = [
            ("CANCER",),
            ("SMOKING", "CANCER"),
            ("SMOKING", "CANCER", "FAMILY_HISTORY"),
        ]
        for names in subsets:
            np.testing.assert_allclose(
                dense.marginal(names), factored.marginal(names), atol=1e-12
            )

    def test_most_probable_agrees(self, model):
        dense = DenseBackend(model)
        factored = EliminationBackend(model)
        labels_free_d, p_free_d = dense.most_probable()
        labels_free_e, p_free_e = factored.most_probable()
        assert labels_free_d == labels_free_e
        assert p_free_d == pytest.approx(p_free_e, rel=1e-12)
        given = {"SMOKING": 0}
        labels_d, p_d = dense.most_probable(given)
        labels_e, p_e = factored.most_probable(given)
        assert labels_d == labels_e
        assert p_d == pytest.approx(p_e, rel=1e-12)


class TestCacheInvalidation:
    def test_dense_cache_tracks_inplace_mutation(self, model):
        backend = DenseBackend(model)
        before = backend.marginal(("CANCER",)).copy()
        model.margin_factors["CANCER"] = model.margin_factors["CANCER"] * [
            2.0,
            1.0,
        ]
        model.normalize()
        after = backend.marginal(("CANCER",))
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after, model.marginal(("CANCER",)))

    def test_elimination_cache_tracks_inplace_mutation(self, model):
        backend = EliminationBackend(model)
        before = backend.marginal(("SMOKING",)).copy()
        model.margin_factors["SMOKING"] = model.margin_factors["SMOKING"] * [
            3.0,
            1.0,
            1.0,
        ]
        model.normalize()
        after = backend.marginal(("SMOKING",))
        assert not np.allclose(before, after)
        np.testing.assert_allclose(
            after, model.marginal(("SMOKING",)), atol=1e-12
        )

    def test_explicit_invalidate(self, model):
        backend = DenseBackend(model)
        backend.joint()
        backend.marginal(("CANCER",))
        backend.invalidate()
        assert backend._joint is None
        assert not backend._marginals


class TestDenseMarginalLRU:
    def test_repeated_query_returns_cached_array(self, model):
        backend = DenseBackend(model)
        first = backend.marginal(("CANCER", "SMOKING"))
        second = backend.marginal(("SMOKING", "CANCER"))
        assert second is first  # same frozen array, canonical key

    def test_cached_arrays_are_read_only(self, model):
        backend = DenseBackend(model)
        marginal = backend.marginal(("CANCER",))
        with pytest.raises(ValueError):
            marginal[0] = 0.5

    def test_mutation_drops_marginal_cache(self, model):
        backend = DenseBackend(model)
        stale = backend.marginal(("CANCER",))
        model.margin_factors["CANCER"] = model.margin_factors["CANCER"] * [
            2.0,
            1.0,
        ]
        model.normalize()
        fresh = backend.marginal(("CANCER",))
        assert fresh is not stale
        np.testing.assert_allclose(fresh, model.marginal(("CANCER",)))

    def test_lru_evicts_oldest(self, model):
        backend = DenseBackend(model)
        backend.MARGINAL_CACHE_SIZE = 2
        backend.marginal(("SMOKING",))
        backend.marginal(("CANCER",))
        backend.marginal(("FAMILY_HISTORY",))
        assert len(backend._marginals) == 2
        assert ("SMOKING",) not in backend._marginals

    def test_lru_recency_order(self, model):
        backend = DenseBackend(model)
        backend.MARGINAL_CACHE_SIZE = 2
        backend.marginal(("SMOKING",))
        backend.marginal(("CANCER",))
        backend.marginal(("SMOKING",))  # refresh recency
        backend.marginal(("FAMILY_HISTORY",))
        assert ("SMOKING",) in backend._marginals
        assert ("CANCER",) not in backend._marginals

    def test_full_subset_returns_joint_uncached(self, model):
        backend = DenseBackend(model)
        names = model.schema.names
        assert backend.marginal(names) is backend.joint()
        assert names not in backend._marginals

    def test_cached_values_match_model(self, model):
        backend = DenseBackend(model)
        for _ in range(2):
            np.testing.assert_allclose(
                backend.marginal(("SMOKING", "FAMILY_HISTORY")),
                model.marginal(("SMOKING", "FAMILY_HISTORY")),
            )


# -- randomized dense/elimination equivalence (hypothesis) --------------------------


@st.composite
def random_models(draw):
    width = draw(st.integers(min_value=2, max_value=4))
    cardinalities = [
        draw(st.integers(min_value=2, max_value=3)) for _ in range(width)
    ]
    schema = Schema(
        [
            Attribute(f"A{i}", tuple(f"v{j}" for j in range(c)))
            for i, c in enumerate(cardinalities)
        ]
    )
    margins = {
        a.name: [
            draw(
                st.floats(
                    min_value=0.05, max_value=1.0, allow_nan=False
                )
            )
            for _ in range(a.cardinality)
        ]
        for a in schema
    }
    cells = {}
    if width >= 2:
        pair = (schema.names[0], schema.names[1])
        values = tuple(
            draw(st.integers(min_value=0, max_value=c - 1))
            for c in cardinalities[:2]
        )
        factor = draw(
            st.floats(min_value=0.1, max_value=4.0, allow_nan=False)
        )
        cells[(pair, values)] = factor
    model = MaxEntModel(schema, margins, cells)
    model.normalize()
    return model


@given(data=st.data())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_dense_vs_elimination_randomized(data):
    """Plan evaluation through both backends agrees to 1e-10."""
    model = data.draw(random_models())
    schema = model.schema
    target_attr = schema.attributes[0]
    target = f"{target_attr.name}={target_attr.values[0]}"
    evidence_attrs = list(schema.attributes[1:])
    n_given = data.draw(
        st.integers(min_value=0, max_value=len(evidence_attrs))
    )
    given_terms = [
        f"{a.name}={a.values[data.draw(st.integers(0, a.cardinality - 1))]}"
        for a in evidence_attrs[:n_given]
    ]
    text = target if not given_terms else f"{target} | {', '.join(given_terms)}"
    dense = QuerySession(model, backend="dense")
    factored = QuerySession(model, backend="elimination")
    assert dense.ask(text) == pytest.approx(factored.ask(text), abs=1e-10)
