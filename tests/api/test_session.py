"""Tests for query sessions: plans, batching, caching, facade integration."""

import numpy as np
import pytest

from repro.api.plan import QueryPlan, compile_query
from repro.api.session import QuerySession
from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.core.query import Query, QueryEngine
from repro.discovery.engine import discover
from repro.exceptions import QueryError
from repro.maxent.model import MaxEntModel

MIXED_QUERIES = [
    "CANCER=yes",
    "CANCER=yes | SMOKING=smoker",
    "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes",
    "SMOKING=smoker | CANCER=yes",
    "FAMILY_HISTORY=yes",
    "SMOKING=non-smoker | FAMILY_HISTORY=no",
]


@pytest.fixture
def model(table):
    return discover(table).model


@pytest.fixture
def session(model):
    return QuerySession(model)


@pytest.fixture
def kb(table):
    return ProbabilisticKnowledgeBase.from_data(table)


class TestPlanCompilation:
    def test_plan_resolves_indices(self, session):
        plan = session.compile("CANCER=yes | SMOKING=smoker")
        assert plan.target == (("CANCER", 0),)
        assert plan.given == (("SMOKING", 0),)
        assert plan.joint_subset == ("SMOKING", "CANCER")
        assert plan.given_subset == ("SMOKING",)
        assert plan.joint_index == (0, 0)
        assert plan.given_index == (0,)
        assert plan.backend == "dense"
        assert plan.description == "P(CANCER=yes | SMOKING=smoker)"

    def test_string_plans_are_cached(self, session):
        first = session.compile("CANCER=yes | SMOKING=smoker")
        second = session.compile("CANCER=yes | SMOKING=smoker")
        assert first is second

    def test_precompiled_plan_passes_through(self, session):
        plan = session.compile("CANCER=yes")
        assert session.compile(plan) is plan

    def test_query_object_compiles(self, session):
        plan = session.compile(
            Query({"CANCER": "yes"}, {"SMOKING": "smoker"})
        )
        assert isinstance(plan, QueryPlan)
        assert session.evaluate(plan) == pytest.approx(
            session.ask("CANCER=yes | SMOKING=smoker")
        )

    def test_unknown_attribute_rejected_at_compile(self, session):
        with pytest.raises(QueryError, match="no attribute"):
            session.compile("WEIGHT=high")

    def test_conflicting_dict_overlap_rejected(self, session):
        query = Query({"CANCER": "yes"}, {"CANCER": "no"})
        with pytest.raises(QueryError, match="conflict"):
            session.compile(query)

    def test_consistent_dict_overlap_is_certainty(self, session):
        assert session.probability(
            {"CANCER": "yes"}, {"CANCER": "yes"}
        ) == pytest.approx(1.0)

    def test_empty_target_rejected(self, model):
        with pytest.raises(QueryError, match="empty target"):
            compile_query(model.schema, Query({}, {"CANCER": "yes"}))


class TestEvaluation:
    def test_matches_query_engine(self, model, session):
        engine = QueryEngine(model)
        for text in MIXED_QUERIES:
            assert session.ask(text) == pytest.approx(
                engine.ask(text), rel=1e-12
            )

    def test_empty_dict_target_is_one(self, session):
        assert session.probability({}) == 1.0

    def test_zero_evidence_raises(self, schema):
        margins = {
            "SMOKING": np.array([1.0, 0.0, 0.0]),
            "CANCER": np.array([0.5, 0.5]),
            "FAMILY_HISTORY": np.array([0.5, 0.5]),
        }
        session = QuerySession(MaxEntModel.independent(schema, margins))
        with pytest.raises(QueryError, match="zero"):
            session.ask("CANCER=yes | SMOKING=non-smoker")

    def test_distribution_sums_to_one(self, session):
        distribution = session.distribution("CANCER", {"SMOKING": "smoker"})
        assert set(distribution) == {"yes", "no"}
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_distribution_of_fixed_attribute(self, session):
        with pytest.raises(QueryError, match="fixed"):
            session.distribution("CANCER", {"CANCER": "yes"})


class TestBatch:
    def test_batch_equals_sequential(self, model, session):
        queries = MIXED_QUERIES * 5
        batched = session.batch(queries)
        engine = QueryEngine(model)
        sequential = [engine.ask(text) for text in queries]
        assert batched == pytest.approx(sequential, rel=1e-12)

    def test_batch_shares_marginals(self, session):
        session.batch(MIXED_QUERIES * 10)
        info = session.cache_info()
        assert info["hits"] > info["misses"]
        # Only a handful of distinct subsets exist among the queries.
        assert info["marginals_cached"] <= 8

    def test_batch_accepts_mixed_inputs(self, session):
        plan = session.compile("CANCER=yes")
        query = Query({"CANCER": "yes"}, {"SMOKING": "smoker"})
        values = session.batch([plan, query, "FAMILY_HISTORY=yes"])
        assert values[0] == pytest.approx(session.ask("CANCER=yes"))
        assert values[1] == pytest.approx(
            session.ask("CANCER=yes | SMOKING=smoker")
        )

    def test_batch_both_backends_agree(self, model):
        queries = MIXED_QUERIES * 3
        dense = QuerySession(model, backend="dense").batch(queries)
        factored = QuerySession(model, backend="elimination").batch(queries)
        assert dense == pytest.approx(factored, abs=1e-12)


class TestCacheLifecycle:
    def test_lru_respects_model_swap(self, table, schema):
        model_a = discover(table).model
        session = QuerySession(model_a)
        stale = session.ask("CANCER=yes | SMOKING=smoker")
        margins = {
            "SMOKING": np.array([0.2, 0.5, 0.3]),
            "CANCER": np.array([0.9, 0.1]),
            "FAMILY_HISTORY": np.array([0.5, 0.5]),
        }
        model_b = MaxEntModel.independent(schema, margins)
        session.set_model(model_b)
        fresh = session.ask("CANCER=yes | SMOKING=smoker")
        assert fresh != pytest.approx(stale)
        assert fresh == pytest.approx(
            model_b.conditional({"CANCER": "yes"}, {"SMOKING": "smoker"})
        )
        assert session.cache_info()["marginals_cached"] == 2

    def test_invalidate_after_inplace_mutation(self, session):
        before = session.ask("CANCER=yes")
        model = session.model
        model.margin_factors["CANCER"] = model.margin_factors["CANCER"] * [
            2.0,
            1.0,
        ]
        model.normalize()
        session.invalidate()
        after = session.ask("CANCER=yes")
        assert after != pytest.approx(before)
        assert after == pytest.approx(model.probability({"CANCER": "yes"}))

    def test_inplace_mutation_detected_without_invalidate(self, session):
        """The fingerprint check catches in-place edits automatically."""
        before = session.ask("CANCER=yes")
        model = session.model
        model.margin_factors["CANCER"][:] = [5.0, 1.0]
        model.normalize()
        after = session.ask("CANCER=yes")
        assert after != pytest.approx(before)
        assert after == pytest.approx(model.probability({"CANCER": "yes"}))

    def test_cached_marginals_are_read_only(self, session):
        table = session.marginal(("CANCER",))
        with pytest.raises(ValueError, match="read-only"):
            table *= 0.0
        joint = session.backend.joint()
        with pytest.raises(ValueError, match="read-only"):
            joint[...] = 0.0
        # The failed writes corrupted nothing.
        assert session.ask("CANCER=yes") == pytest.approx(
            session.model.probability({"CANCER": "yes"})
        )

    def test_lru_eviction_keeps_answers_correct(self, model):
        session = QuerySession(model, cache_size=1)
        engine = QueryEngine(model)
        for text in MIXED_QUERIES * 3:
            assert session.ask(text) == pytest.approx(engine.ask(text))
        assert session.cache_info()["marginals_cached"] <= 1

    def test_bad_cache_size_rejected(self, model):
        with pytest.raises(QueryError, match="cache_size"):
            QuerySession(model, cache_size=0)


class TestFacade:
    def test_kb_session_roundtrip(self, kb):
        session = kb.session(backend="elimination")
        assert session.backend.name == "elimination"
        assert session.ask("CANCER=yes | SMOKING=smoker") == pytest.approx(
            kb.query("CANCER=yes | SMOKING=smoker"), rel=1e-12
        )

    def test_query_many_matches_single(self, kb):
        values = kb.query_many(MIXED_QUERIES)
        assert values == pytest.approx(
            [kb.query(text) for text in MIXED_QUERIES]
        )

    def test_query_many_with_backend(self, kb):
        values = kb.query_many(MIXED_QUERIES, backend="elimination")
        assert values == pytest.approx(
            [kb.query(text) for text in MIXED_QUERIES], abs=1e-12
        )

    def test_most_probable_on_paper_schema(self, kb):
        labels, probability = kb.most_probable()
        engine = QueryEngine(kb.model)
        assert (labels, probability) == engine.most_probable()
        labels, probability = kb.most_probable({"SMOKING": "smoker"})
        assert labels["SMOKING"] == "smoker"
        assert labels["CANCER"] == "no"
        assert 0.0 < probability <= 1.0

    def test_default_session_is_shared(self, kb):
        kb.query("CANCER=yes")
        kb.query("CANCER=yes")
        assert kb._session.cache_info()["hits"] >= 1
