"""Tests for continuous-column discretization."""

import numpy as np
import pytest

from repro.data.discretize import Discretizer, equal_width_edges, quantile_edges
from repro.exceptions import DataError


class TestEdges:
    def test_equal_width(self):
        edges = equal_width_edges([0.0, 10.0], bins=4)
        assert edges.tolist() == [2.5, 5.0, 7.5]

    def test_equal_width_constant_column(self):
        with pytest.raises(DataError, match="constant"):
            equal_width_edges([3.0, 3.0, 3.0], bins=2)

    def test_quantile(self):
        values = np.arange(100, dtype=float)
        edges = quantile_edges(values, bins=4)
        assert len(edges) == 3
        assert edges[0] < edges[1] < edges[2]

    def test_quantile_too_discrete(self):
        with pytest.raises(DataError, match="distinct"):
            quantile_edges([1.0] * 90 + [2.0] * 10, bins=4)

    def test_rejects_nan(self):
        with pytest.raises(DataError, match="NaN"):
            equal_width_edges([1.0, float("nan")], bins=2)

    def test_rejects_single_bin(self):
        with pytest.raises(DataError, match="bins"):
            equal_width_edges([1.0, 2.0], bins=1)


class TestDiscretizer:
    def test_fit_width(self):
        discretizer = Discretizer.fit("TEMP", [0.0, 10.0], bins=2)
        assert discretizer.num_bins == 2
        assert discretizer.transform([1.0, 9.0]).tolist() == [0, 1]

    def test_fit_quantile(self):
        values = np.linspace(0, 1, 101)
        discretizer = Discretizer.fit("X", values, bins=4, method="quantile")
        counts = np.bincount(discretizer.transform(values), minlength=4)
        assert counts.min() >= 20  # roughly balanced

    def test_fit_unknown_method(self):
        with pytest.raises(DataError, match="unknown binning"):
            Discretizer.fit("X", [0.0, 1.0], bins=2, method="magic")

    def test_out_of_range_clips_to_extreme_bins(self):
        discretizer = Discretizer("X", [0.0, 1.0])
        assert discretizer.transform([-100.0]).tolist() == [0]
        assert discretizer.transform([+100.0]).tolist() == [2]

    def test_boundary_goes_right(self):
        discretizer = Discretizer("X", [1.0])
        # searchsorted side="right": v == edge lands in the upper bin.
        assert discretizer.transform([1.0]).tolist() == [1]

    def test_attribute_labels(self):
        attribute = Discretizer("TEMP", [2.5, 5.0]).attribute()
        assert attribute.name == "TEMP"
        assert attribute.values == ("<2.5", "[2.5,5)", ">=5")

    def test_rejects_unsorted_edges(self):
        with pytest.raises(DataError, match="increasing"):
            Discretizer("X", [2.0, 1.0])

    def test_rejects_nan_transform(self):
        discretizer = Discretizer("X", [0.5])
        with pytest.raises(DataError, match="NaN"):
            discretizer.transform([float("nan")])

    def test_pipeline_into_schema(self):
        """Discretized columns become usable categorical attributes."""
        temperatures = np.array([1.0, 2.0, 8.0, 9.0])
        discretizer = Discretizer.fit("TEMP", temperatures, bins=2)
        attribute = discretizer.attribute()
        indices = discretizer.transform(temperatures)
        assert all(0 <= i < attribute.cardinality for i in indices)
        assert indices.tolist() == [0, 0, 1, 1]
