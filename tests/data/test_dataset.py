"""Tests for raw sample datasets."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import DataError


@pytest.fixture
def small_schema():
    return Schema([Attribute("A", ("x", "y")), Attribute("B", ("u", "v", "w"))])


class TestConstruction:
    def test_from_samples_labels(self, small_schema):
        dataset = Dataset.from_samples(
            small_schema, [("x", "u"), ("y", "w")]
        )
        assert len(dataset) == 2
        assert dataset[0] == (0, 0)
        assert dataset[1] == (1, 2)

    def test_from_samples_indices(self, small_schema):
        dataset = Dataset.from_samples(small_schema, [(1, 2)])
        assert dataset[0] == (1, 2)

    def test_from_samples_empty(self, small_schema):
        dataset = Dataset.from_samples(small_schema, [])
        assert len(dataset) == 0
        assert dataset.to_contingency().total == 0

    def test_from_records(self, small_schema):
        dataset = Dataset.from_records(
            small_schema, [{"A": "y", "B": "u"}]
        )
        assert dataset.record(0) == {"A": "y", "B": "u"}

    def test_wrong_width(self, small_schema):
        with pytest.raises(DataError, match="fields"):
            Dataset.from_samples(small_schema, [("x",)])

    def test_out_of_range_rows(self, small_schema):
        with pytest.raises(DataError, match="out-of-range"):
            Dataset(small_schema, np.array([[0, 9]]))

    def test_rows_read_only(self, small_schema):
        dataset = Dataset.from_samples(small_schema, [("x", "u")])
        with pytest.raises(ValueError):
            dataset.rows[0, 0] = 1


class TestSampling:
    def test_from_joint_distribution(self, small_schema, rng):
        joint = np.array([[0.5, 0.0, 0.0], [0.0, 0.0, 0.5]])
        dataset = Dataset.from_joint(small_schema, joint, 500, rng)
        table = dataset.to_contingency()
        assert table.total == 500
        # Only the two cells with mass are populated.
        assert table.count({"A": "x", "B": "u"}) + table.count(
            {"A": "y", "B": "w"}
        ) == 500

    def test_from_joint_frequency_match(self, small_schema, rng):
        joint = np.array([[0.7, 0.1, 0.0], [0.05, 0.05, 0.1]])
        dataset = Dataset.from_joint(small_schema, joint, 20000, rng)
        observed = dataset.to_contingency().probabilities()
        assert np.abs(observed - joint).max() < 0.02

    def test_from_joint_validates_shape(self, small_schema, rng):
        with pytest.raises(DataError, match="shape"):
            Dataset.from_joint(small_schema, np.ones((2, 2)) / 4, 10, rng)

    def test_from_joint_rejects_negative(self, small_schema, rng):
        joint = np.full(small_schema.shape, 0.3)
        joint[0, 0] = -0.1
        with pytest.raises(DataError, match="non-negative"):
            Dataset.from_joint(small_schema, joint, 10, rng)

    def test_from_joint_rejects_zero_mass(self, small_schema, rng):
        with pytest.raises(DataError, match="zero"):
            Dataset.from_joint(
                small_schema, np.zeros(small_schema.shape), 10, rng
            )


class TestViews:
    def test_records_iteration(self, small_schema):
        dataset = Dataset.from_samples(
            small_schema, [("x", "v"), ("y", "u")]
        )
        records = list(dataset.records())
        assert records == [{"A": "x", "B": "v"}, {"A": "y", "B": "u"}]

    def test_to_contingency_counts(self, small_schema):
        dataset = Dataset.from_samples(
            small_schema, [("x", "u")] * 3 + [("y", "v")] * 2
        )
        table = dataset.to_contingency()
        assert table.count({"A": "x", "B": "u"}) == 3
        assert table.count({"A": "y", "B": "v"}) == 2

    def test_split(self, small_schema, rng):
        dataset = Dataset.from_samples(small_schema, [("x", "u")] * 100)
        left, right = dataset.split(0.3, rng)
        assert len(left) == 30
        assert len(right) == 70

    def test_split_validates_fraction(self, small_schema, rng):
        dataset = Dataset.from_samples(small_schema, [("x", "u")] * 10)
        with pytest.raises(DataError):
            dataset.split(1.5, rng)

    def test_iteration(self, small_schema):
        dataset = Dataset.from_samples(small_schema, [("x", "w")])
        assert list(dataset) == [(0, 2)]
