"""Tests for EM completion of missing data."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.missing import (
    MISSING,
    EMResult,
    IncompleteDataset,
    complete_table,
    em_joint,
    round_preserving_total,
)
from repro.exceptions import DataError


@pytest.fixture
def complete_rows(schema, table, rng):
    dataset = Dataset.from_joint(schema, table.probabilities(), 4000, rng)
    return dataset.rows.copy()


def knock_out(rows, fraction, rng):
    """Make fields missing completely at random."""
    rows = rows.copy()
    mask = rng.random(rows.shape) < fraction
    rows[mask] = MISSING
    return rows


class TestIncompleteDataset:
    def test_from_samples_tokens(self, schema):
        data = IncompleteDataset.from_samples(
            schema,
            [
                ("smoker", None, "yes"),
                ("?", "no", ""),
                ("non-smoker", "yes", "no"),
            ],
        )
        assert len(data) == 3
        assert data.rows[0, 1] == MISSING
        assert data.rows[1, 0] == MISSING
        assert data.rows[1, 2] == MISSING
        assert data.missing_fraction == pytest.approx(3 / 9)

    def test_out_of_range_rejected(self, schema):
        with pytest.raises(DataError, match="out-of-range"):
            IncompleteDataset(schema, np.array([[0, 9, 0]]))

    def test_complete_rows_subset(self, schema):
        data = IncompleteDataset(
            schema, np.array([[0, 0, 0], [MISSING, 0, 1]])
        )
        assert data.complete_rows().shape == (1, 3)

    def test_patterns_grouping(self, schema):
        data = IncompleteDataset(
            schema,
            np.array([[0, 0, 0], [0, 0, 0], [MISSING, 1, 0]]),
        )
        patterns = data.patterns()
        assert patterns[(0, 0, 0)] == 2
        assert patterns[(MISSING, 1, 0)] == 1


class TestEM:
    def test_no_missing_recovers_frequencies(self, schema, complete_rows):
        data = IncompleteDataset(schema, complete_rows)
        result = em_joint(data)
        empirical = (
            Dataset(schema, complete_rows).to_contingency().probabilities()
        )
        assert np.allclose(result.joint, empirical, atol=1e-9)
        assert result.iterations <= 3

    def test_mcar_recovers_joint(self, schema, complete_rows, rng):
        truth = Dataset(schema, complete_rows).to_contingency().probabilities()
        rows = knock_out(complete_rows, 0.25, rng)
        data = IncompleteDataset(schema, rows)
        result = em_joint(data)
        assert np.abs(result.joint - truth).max() < 0.03

    def test_log_likelihood_non_decreasing(self, schema, complete_rows, rng):
        rows = knock_out(complete_rows, 0.3, rng)
        result = em_joint(IncompleteDataset(schema, rows))
        history = np.array(result.log_likelihood)
        assert (np.diff(history) >= -1e-9).all()

    def test_all_missing_row_is_harmless(self, schema):
        """A fully blank record adds no information but must not break EM."""
        rows = np.array(
            [[0, 0, 0]] * 5 + [[MISSING, MISSING, MISSING]], dtype=np.int64
        )
        result = em_joint(IncompleteDataset(schema, rows), tol=1e-10)
        assert result.joint.sum() == pytest.approx(1.0)
        assert result.joint[0, 0, 0] == pytest.approx(1.0, abs=1e-6)

    def test_empty_dataset_rejected(self, schema):
        with pytest.raises(DataError, match="empty"):
            em_joint(IncompleteDataset(schema, np.empty((0, 3), dtype=np.int64)))

    def test_initial_shape_validated(self, schema, complete_rows):
        data = IncompleteDataset(schema, complete_rows)
        with pytest.raises(DataError, match="shape"):
            em_joint(data, initial=np.ones((2, 2)))

    def test_result_types(self, schema, complete_rows):
        result = em_joint(IncompleteDataset(schema, complete_rows))
        assert isinstance(result, EMResult)
        assert result.expected_counts.sum() == pytest.approx(
            len(complete_rows)
        )


class TestRounding:
    def test_preserves_total(self, rng):
        counts = rng.random((4, 5)) * 10
        rounded = round_preserving_total(counts)
        assert rounded.sum() == round(counts.sum())
        assert (rounded >= 0).all()

    def test_integers_unchanged(self):
        counts = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.array_equal(
            round_preserving_total(counts), counts.astype(np.int64)
        )

    def test_largest_remainder_priority(self):
        counts = np.array([0.9, 0.6, 0.5])  # total 2.0
        rounded = round_preserving_total(counts)
        assert rounded.tolist() == [1, 1, 0]

    def test_negative_rejected(self):
        with pytest.raises(DataError):
            round_preserving_total(np.array([-1.0, 2.0]))


class TestEndToEnd:
    def test_complete_table_feeds_discovery(self, schema, complete_rows, rng):
        """The headline workflow: incomplete survey → EM → discovery."""
        from repro.discovery.config import DiscoveryConfig
        from repro.discovery.engine import discover

        rows = knock_out(complete_rows, 0.2, rng)
        completed, result = complete_table(IncompleteDataset(schema, rows))
        assert completed.total == len(rows)
        assert result.converged
        discovery = discover(completed, DiscoveryConfig(max_order=2))
        # The dominant smoker-cancer association survives 20% missingness.
        assert ("SMOKING", "CANCER") in {
            c.attributes for c in discovery.found
        }
