"""Tests for incremental table accumulation."""

import pytest

from repro.data.dataset import Dataset
from repro.data.streaming import TableBuilder
from repro.exceptions import DataError


class TestTableBuilder:
    def test_add_sample(self, schema):
        builder = TableBuilder(schema)
        builder.add_sample(("smoker", "yes", "no"))
        builder.add_sample((0, 0, 1))
        table = builder.snapshot()
        assert table.total == 2
        assert table.count(
            {"SMOKING": "smoker", "CANCER": "yes", "FAMILY_HISTORY": "no"}
        ) == 2

    def test_add_record(self, schema):
        builder = TableBuilder(schema)
        builder.add_record(
            {"SMOKING": "smoker", "CANCER": "no", "FAMILY_HISTORY": "yes"}
        )
        assert builder.total == 1

    def test_add_samples_batch(self, schema):
        builder = TableBuilder(schema)
        builder.add_samples(
            [("smoker", "yes", "no"), ("non-smoker", "no", "no")]
        )
        assert builder.total == 2
        assert builder.batches == 1

    def test_add_dataset_and_table(self, schema, table, rng):
        dataset = Dataset.from_joint(schema, table.probabilities(), 100, rng)
        builder = TableBuilder(schema)
        builder.add_dataset(dataset)
        builder.add_table(table)
        assert builder.total == 100 + table.total

    def test_wrong_schema_rejected(self, schema, rng):
        from repro.data.contingency import ContingencyTable
        from repro.data.schema import Attribute, Schema

        other = Schema([Attribute("X", ("a", "b"))])
        builder = TableBuilder(other)
        with pytest.raises(DataError, match="schema"):
            builder.add_table(ContingencyTable.zeros(schema))

    def test_wrong_sample_width(self, schema):
        builder = TableBuilder(schema)
        with pytest.raises(DataError, match="fields"):
            builder.add_sample(("smoker", "yes"))

    def test_snapshot_is_independent(self, schema):
        builder = TableBuilder(schema)
        builder.add_sample((0, 0, 0))
        snapshot = builder.snapshot()
        builder.add_sample((0, 0, 0))
        assert snapshot.total == 1
        assert builder.total == 2

    def test_reset(self, schema):
        builder = TableBuilder(schema)
        builder.add_sample((0, 0, 0))
        builder.reset()
        assert builder.total == 0
        assert builder.batches == 0

    def test_streaming_matches_batch(self, schema, table, rng):
        """Accumulating in chunks equals tallying all at once."""
        dataset = Dataset.from_joint(schema, table.probabilities(), 300, rng)
        builder = TableBuilder(schema)
        rows = list(dataset)
        for start in range(0, 300, 50):
            builder.add_samples(rows[start : start + 50])
        assert builder.snapshot() == dataset.to_contingency()

    def test_interim_discovery(self, schema, table, rng):
        """Snapshots feed discovery mid-stream without disturbing the
        builder."""
        from repro.discovery.config import DiscoveryConfig
        from repro.discovery.engine import discover

        dataset = Dataset.from_joint(schema, table.probabilities(), 5000, rng)
        builder = TableBuilder(schema)
        builder.add_dataset(dataset)
        result = discover(builder.snapshot(), DiscoveryConfig(max_order=2))
        assert result.table.total == 5000
        builder.add_sample((0, 0, 0))
        assert builder.total == 5001


class TestSchemaValidation:
    """Every schema-bearing add path reports exactly what differs."""

    def _other_category_schema(self, schema):
        from repro.data.schema import Attribute, Schema

        attributes = []
        for attribute in schema:
            if attribute.name == "CANCER":
                attributes.append(Attribute("CANCER", ("yes", "maybe")))
            else:
                attributes.append(attribute)
        return Schema(attributes)

    def test_missing_and_unexpected_attributes_named(self, schema):
        from repro.data.contingency import ContingencyTable
        from repro.data.schema import Attribute, Schema

        other = Schema(
            [
                Attribute("SMOKING", ("smoker", "ex-smoker", "non-smoker")),
                Attribute("WEATHER", ("dry", "wet")),
            ]
        )
        builder = TableBuilder(schema)
        with pytest.raises(DataError) as excinfo:
            builder.add_table(ContingencyTable.zeros(other))
        message = str(excinfo.value)
        assert "missing attributes" in message
        assert "CANCER" in message and "FAMILY_HISTORY" in message
        assert "unexpected attributes" in message and "WEATHER" in message

    def test_category_mismatch_named(self, schema):
        from repro.data.contingency import ContingencyTable

        other = self._other_category_schema(schema)
        builder = TableBuilder(schema)
        with pytest.raises(DataError) as excinfo:
            builder.add_table(ContingencyTable.zeros(other))
        message = str(excinfo.value)
        assert "'CANCER' categories differ" in message
        assert "maybe" in message and "no" in message

    def test_dataset_schema_mismatch(self, schema):
        other = self._other_category_schema(schema)
        builder = TableBuilder(schema)
        with pytest.raises(DataError, match="categories differ"):
            builder.add_dataset(Dataset.from_samples(other, []))

    def test_record_missing_attribute(self, schema):
        builder = TableBuilder(schema)
        with pytest.raises(DataError, match="missing attributes"):
            builder.add_record({"SMOKING": "smoker", "CANCER": "yes"})

    def test_record_metadata_keys_ignored(self, schema):
        """Extra keys (timestamps, frame ids) ride along harmlessly."""
        builder = TableBuilder(schema)
        builder.add_record(
            {
                "SMOKING": "smoker",
                "CANCER": "yes",
                "FAMILY_HISTORY": "no",
                "timestamp": 1234567890,
            }
        )
        assert builder.total == 1


class TestMerge:
    def test_merge_combines_shards(self, schema):
        left = TableBuilder(schema)
        right = TableBuilder(schema)
        left.add_sample(("smoker", "yes", "no"))
        right.add_sample(("non-smoker", "no", "yes"))
        right.add_sample(("smoker", "yes", "no"))
        left.merge(right)
        assert left.total == 3
        assert left.batches == 3
        assert left.snapshot().count(
            {"SMOKING": "smoker", "CANCER": "yes", "FAMILY_HISTORY": "no"}
        ) == 2
        # The merged-from shard is untouched.
        assert right.total == 2

    def test_merge_schema_mismatch(self, schema):
        from repro.data.schema import Attribute, Schema

        other = Schema([Attribute("X", ("a", "b"))])
        builder = TableBuilder(schema)
        with pytest.raises(DataError, match="merged builder schema"):
            builder.merge(TableBuilder(other))

    def test_merge_non_builder(self, schema, table):
        builder = TableBuilder(schema)
        with pytest.raises(DataError, match="expects a TableBuilder"):
            builder.merge(table)
