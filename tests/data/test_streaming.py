"""Tests for incremental table accumulation."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.streaming import TableBuilder
from repro.exceptions import DataError


class TestTableBuilder:
    def test_add_sample(self, schema):
        builder = TableBuilder(schema)
        builder.add_sample(("smoker", "yes", "no"))
        builder.add_sample((0, 0, 1))
        table = builder.snapshot()
        assert table.total == 2
        assert table.count(
            {"SMOKING": "smoker", "CANCER": "yes", "FAMILY_HISTORY": "no"}
        ) == 2

    def test_add_record(self, schema):
        builder = TableBuilder(schema)
        builder.add_record(
            {"SMOKING": "smoker", "CANCER": "no", "FAMILY_HISTORY": "yes"}
        )
        assert builder.total == 1

    def test_add_samples_batch(self, schema):
        builder = TableBuilder(schema)
        builder.add_samples(
            [("smoker", "yes", "no"), ("non-smoker", "no", "no")]
        )
        assert builder.total == 2
        assert builder.batches == 1

    def test_add_dataset_and_table(self, schema, table, rng):
        dataset = Dataset.from_joint(schema, table.probabilities(), 100, rng)
        builder = TableBuilder(schema)
        builder.add_dataset(dataset)
        builder.add_table(table)
        assert builder.total == 100 + table.total

    def test_wrong_schema_rejected(self, schema, rng):
        from repro.data.schema import Attribute, Schema

        other = Schema([Attribute("X", ("a", "b"))])
        builder = TableBuilder(other)
        with pytest.raises(DataError, match="schema"):
            builder.add_table(
                __import__("repro.data.contingency", fromlist=["ContingencyTable"])
                .ContingencyTable.zeros(schema)
            )

    def test_wrong_sample_width(self, schema):
        builder = TableBuilder(schema)
        with pytest.raises(DataError, match="fields"):
            builder.add_sample(("smoker", "yes"))

    def test_snapshot_is_independent(self, schema):
        builder = TableBuilder(schema)
        builder.add_sample((0, 0, 0))
        snapshot = builder.snapshot()
        builder.add_sample((0, 0, 0))
        assert snapshot.total == 1
        assert builder.total == 2

    def test_reset(self, schema):
        builder = TableBuilder(schema)
        builder.add_sample((0, 0, 0))
        builder.reset()
        assert builder.total == 0
        assert builder.batches == 0

    def test_streaming_matches_batch(self, schema, table, rng):
        """Accumulating in chunks equals tallying all at once."""
        dataset = Dataset.from_joint(schema, table.probabilities(), 300, rng)
        builder = TableBuilder(schema)
        rows = list(dataset)
        for start in range(0, 300, 50):
            builder.add_samples(rows[start : start + 50])
        assert builder.snapshot() == dataset.to_contingency()

    def test_interim_discovery(self, schema, table, rng):
        """Snapshots feed discovery mid-stream without disturbing the
        builder."""
        from repro.discovery.config import DiscoveryConfig
        from repro.discovery.engine import discover

        dataset = Dataset.from_joint(schema, table.probabilities(), 5000, rng)
        builder = TableBuilder(schema)
        builder.add_dataset(dataset)
        result = discover(builder.snapshot(), DiscoveryConfig(max_order=2))
        assert result.table.total == 5000
        builder.add_sample((0, 0, 0))
        assert builder.total == 5001
