"""Tests for attribute schemas."""

import pytest

from repro.data.schema import OTHER_LABEL, Attribute, Schema
from repro.exceptions import SchemaError


class TestAttribute:
    def test_basic_properties(self):
        attribute = Attribute("CANCER", ("yes", "no"))
        assert attribute.cardinality == 2
        assert attribute.values == ("yes", "no")

    def test_accepts_list_values(self):
        attribute = Attribute("X", ["a", "b", "c"])
        assert attribute.values == ("a", "b", "c")

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("", ("a", "b"))

    def test_rejects_single_value(self):
        with pytest.raises(SchemaError):
            Attribute("X", ("only",))

    def test_rejects_duplicate_values(self):
        with pytest.raises(SchemaError):
            Attribute("X", ("a", "a"))

    def test_index_of_label(self):
        attribute = Attribute("X", ("a", "b", "c"))
        assert attribute.index_of("b") == 1

    def test_index_of_integer_passthrough(self):
        attribute = Attribute("X", ("a", "b", "c"))
        assert attribute.index_of(2) == 2

    def test_index_of_unknown_label(self):
        attribute = Attribute("X", ("a", "b"))
        with pytest.raises(SchemaError, match="unknown value"):
            attribute.index_of("z")

    def test_index_of_out_of_range(self):
        attribute = Attribute("X", ("a", "b"))
        with pytest.raises(SchemaError, match="out of range"):
            attribute.index_of(5)

    def test_index_of_rejects_bool(self):
        attribute = Attribute("X", ("a", "b"))
        with pytest.raises(SchemaError):
            attribute.index_of(True)

    def test_value_at(self):
        attribute = Attribute("X", ("a", "b"))
        assert attribute.value_at(0) == "a"
        with pytest.raises(SchemaError):
            attribute.value_at(2)

    def test_completed_adds_other(self):
        attribute = Attribute("X", ("a", "b"))
        completed = attribute.completed()
        assert completed.values == ("a", "b", OTHER_LABEL)

    def test_completed_idempotent(self):
        attribute = Attribute("X", ("a", OTHER_LABEL))
        assert attribute.completed() is attribute


class TestSchema:
    def test_shape_follows_order(self, schema):
        assert schema.shape == (3, 2, 2)
        assert schema.num_cells == 12

    def test_names(self, schema):
        assert schema.names == ("SMOKING", "CANCER", "FAMILY_HISTORY")

    def test_axis_lookup(self, schema):
        assert schema.axis("CANCER") == 1
        assert schema.axes(["FAMILY_HISTORY", "SMOKING"]) == (2, 0)

    def test_unknown_attribute(self, schema):
        with pytest.raises(SchemaError, match="no attribute"):
            schema.axis("WEIGHT")
        with pytest.raises(SchemaError):
            schema.attribute("WEIGHT")

    def test_rejects_duplicate_names(self):
        attribute = Attribute("X", ("a", "b"))
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([attribute, attribute])

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_canonical_subset_sorts_by_axis(self, schema):
        assert schema.canonical_subset(["FAMILY_HISTORY", "SMOKING"]) == (
            "SMOKING",
            "FAMILY_HISTORY",
        )

    def test_canonical_subset_rejects_duplicates(self, schema):
        with pytest.raises(SchemaError, match="duplicate"):
            schema.canonical_subset(["SMOKING", "SMOKING"])

    def test_indices_round_trip(self, schema):
        labels = {"SMOKING": "smoker", "CANCER": "no"}
        indices = schema.indices_of(labels)
        assert indices == {"SMOKING": 0, "CANCER": 1}
        assert schema.labels_of(indices) == labels

    def test_subschema(self, schema):
        sub = schema.subschema(["FAMILY_HISTORY", "SMOKING"])
        assert sub.names == ("SMOKING", "FAMILY_HISTORY")
        assert sub.shape == (3, 2)

    def test_equality_and_hash(self, schema):
        other = Schema(list(schema.attributes))
        assert schema == other
        assert hash(schema) == hash(other)

    def test_completed(self):
        schema = Schema([Attribute("X", ("a", "b"))])
        assert schema.completed().attribute("X").cardinality == 3

    def test_iteration(self, schema):
        assert [a.name for a in schema] == list(schema.names)
        assert len(schema) == 3
