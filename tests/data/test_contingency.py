"""Tests for contingency tables: paper's Figures 1/2 are the ground truth."""

import numpy as np
import pytest

from repro.data.contingency import ContingencyTable
from repro.data.schema import Attribute, Schema
from repro.eval.paper import FIGURE2_MARGINALS
from repro.exceptions import DataError


class TestConstruction:
    def test_total_matches_paper(self, table):
        assert table.total == 3428

    def test_shape_validation(self, schema):
        with pytest.raises(DataError, match="shape"):
            ContingencyTable(schema, np.zeros((2, 2, 2)))

    def test_rejects_negative_counts(self, schema):
        counts = np.zeros(schema.shape)
        counts[0, 0, 0] = -1
        with pytest.raises(DataError, match="non-negative"):
            ContingencyTable(schema, counts)

    def test_rejects_fractional_counts(self, schema):
        counts = np.zeros(schema.shape)
        counts[0, 0, 0] = 1.5
        with pytest.raises(DataError, match="integers"):
            ContingencyTable(schema, counts)

    def test_accepts_whole_floats(self, schema):
        counts = np.full(schema.shape, 2.0)
        table = ContingencyTable(schema, counts)
        assert table.counts.dtype == np.int64

    def test_counts_read_only(self, table):
        with pytest.raises(ValueError):
            table.counts[0, 0, 0] = 99

    def test_from_samples(self):
        schema = Schema(
            [Attribute("A", ("x", "y")), Attribute("B", ("u", "v"))]
        )
        table = ContingencyTable.from_samples(
            schema, [("x", "u"), ("x", "u"), ("y", "v")]
        )
        assert table.count({"A": "x", "B": "u"}) == 2
        assert table.count({"A": "y", "B": "v"}) == 1
        assert table.total == 3

    def test_from_samples_wrong_width(self, schema):
        with pytest.raises(DataError, match="fields"):
            ContingencyTable.from_samples(schema, [("smoker", "yes")])

    def test_from_records(self):
        schema = Schema(
            [Attribute("A", ("x", "y")), Attribute("B", ("u", "v"))]
        )
        table = ContingencyTable.from_records(
            schema, [{"A": "x", "B": "v"}, {"A": "y", "B": "v"}]
        )
        assert table.marginal(["B"]).tolist() == [0, 2]

    def test_addition(self, table):
        doubled = table + table
        assert doubled.total == 2 * table.total

    def test_addition_schema_mismatch(self, table):
        other_schema = Schema([Attribute("Z", ("a", "b"))])
        other = ContingencyTable.zeros(other_schema)
        with pytest.raises(DataError):
            table + other


class TestMarginals:
    """Eqs 1-6: every marginal of Figure 2 must come out exactly."""

    @pytest.mark.parametrize("subset,expected", list(FIGURE2_MARGINALS.items()))
    def test_figure2_marginal(self, table, subset, expected):
        assert table.marginal(list(subset)).tolist() == expected

    def test_marginal_order_insensitive(self, table):
        forward = table.marginal(["SMOKING", "CANCER"])
        backward = table.marginal(["CANCER", "SMOKING"])
        assert np.array_equal(forward, backward)

    def test_marginal_full_set_is_counts(self, table):
        assert np.array_equal(
            table.marginal(list(table.schema.names)), table.counts
        )

    def test_marginal_table_collapses_schema(self, table):
        collapsed = table.marginal_table(["SMOKING", "CANCER"])
        assert collapsed.schema.names == ("SMOKING", "CANCER")
        assert collapsed.total == table.total
        assert collapsed.count({"SMOKING": "smoker", "CANCER": "yes"}) == 240

    def test_count_full_assignment(self, table):
        # Paper: "the number of smokers who do not have cancer despite a
        # family history of cancer is given as 410".
        assert (
            table.count(
                {"SMOKING": "smoker", "CANCER": "no", "FAMILY_HISTORY": "yes"}
            )
            == 410
        )

    def test_count_partial_assignment(self, table):
        assert table.count({"CANCER": "yes"}) == 433

    def test_count_accepts_indices(self, table):
        assert table.count({"SMOKING": 0, "CANCER": 0}) == 240

    def test_marginal_sums_equal_total(self, table):
        for name in table.schema.names:
            assert table.marginal([name]).sum() == table.total


class TestProbabilities:
    def test_first_order_probabilities(self, table):
        p = table.first_order_probabilities("CANCER")
        assert p == pytest.approx([433 / 3428, 2995 / 3428])

    def test_probabilities_sum_to_one(self, table):
        assert table.probabilities().sum() == pytest.approx(1.0)

    def test_probability_partial(self, table):
        assert table.probability({"SMOKING": "smoker"}) == pytest.approx(
            1290 / 3428
        )

    def test_empty_table_probabilities(self, schema):
        with pytest.raises(DataError, match="empty"):
            ContingencyTable.zeros(schema).probabilities()


class TestCellIteration:
    def test_second_order_cell_count_matches_paper(self, table):
        # Paper: "there are 16 second order cells".
        assert table.num_cells_of_order(2) == 16
        assert len(list(table.cells_of_order(2))) == 16

    def test_first_order_cells(self, table):
        cells = list(table.cells_of_order(1))
        assert len(cells) == 7  # 3 + 2 + 2
        total_per_attribute = {}
        for subset, _values, count in cells:
            total_per_attribute.setdefault(subset, 0)
            total_per_attribute[subset] += count
        assert all(v == 3428 for v in total_per_attribute.values())

    def test_third_order_cells(self, table):
        cells = list(table.cells_of_order(3))
        assert len(cells) == 12
        assert sum(count for *_rest, count in cells) == 3428

    def test_subsets_of_order(self, table):
        assert table.subsets_of_order(2) == [
            ("SMOKING", "CANCER"),
            ("SMOKING", "FAMILY_HISTORY"),
            ("CANCER", "FAMILY_HISTORY"),
        ]

    def test_order_out_of_range(self, table):
        with pytest.raises(DataError):
            table.subsets_of_order(0)
        with pytest.raises(DataError):
            table.subsets_of_order(4)


class TestRendering:
    def test_render_contains_paper_cells(self, table):
        text = table.render("SMOKING", "CANCER")
        assert "130" in text
        assert "385" in text
        assert "FAMILY_HISTORY = yes" in text

    def test_render_marginals(self, table):
        text = table.render("SMOKING", "CANCER", show_marginals=True)
        assert "1780" in text  # family history = yes slice total

    def test_render_2d(self, table):
        collapsed = table.marginal_table(["SMOKING", "CANCER"])
        text = collapsed.render(show_marginals=True)
        assert "3428" in text

    def test_render_needs_two_attributes(self):
        single = ContingencyTable.zeros(Schema([Attribute("A", ("x", "y"))]))
        with pytest.raises(DataError):
            single.render()


class TestMarginalCountsCache:
    def test_same_frozen_array_returned(self, table):
        first = table.marginal_counts(["SMOKING", "CANCER"])
        second = table.marginal_counts(["CANCER", "SMOKING"])
        assert second is first  # canonical key, computed once
        assert not first.flags.writeable

    def test_matches_uncached_marginal(self, table):
        np.testing.assert_array_equal(
            table.marginal_counts(["SMOKING", "FAMILY_HISTORY"]),
            table.marginal(["SMOKING", "FAMILY_HISTORY"]),
        )

    def test_marginal_still_returns_mutable_copy(self, table):
        marginal = table.marginal(["SMOKING"])
        marginal[0] = 0  # must not raise, must not corrupt the cache
        assert int(table.marginal_counts(["SMOKING"])[0]) == 1290

    def test_full_subset_is_the_count_tensor(self, table):
        assert table.marginal_counts(table.schema.names) is table.counts

    def test_count_uses_cache(self, table):
        assert table.count({"SMOKING": 0, "CANCER": 0}) == 240
        assert table.count({"CANCER": 0, "SMOKING": 0}) == 240

    def test_total_cached(self, table):
        assert table.total == 3428
        assert table._total == 3428
        assert table.total == 3428

    def test_sum_of_tables_has_fresh_cache(self, table):
        doubled = table + table
        assert doubled.marginal_counts(["SMOKING"]).tolist() == (
            (2 * table.marginal_counts(["SMOKING"])).tolist()
        )
