"""Tests for Appendix A conversions (Figures 5 and 6)."""

import numpy as np
import pytest

from repro.data.conversion import (
    dataset_to_indicator_matrix,
    dataset_to_tuple_matrix,
    indicator_matrix_to_dataset,
    tuple_column_labels,
    tuple_matrix_to_contingency,
    tuple_matrix_to_dataset,
)
from repro.data.dataset import Dataset
from repro.exceptions import DataError


@pytest.fixture
def paper_samples(schema, table, rng):
    """A dataset drawn from the paper's empirical distribution."""
    return Dataset.from_joint(schema, table.probabilities(), 400, rng)


class TestIndicatorForm:
    """Figure 5: one-hot blocks per attribute."""

    def test_shape(self, paper_samples):
        matrix = dataset_to_indicator_matrix(paper_samples)
        assert matrix.shape == (400, 3 + 2 + 2)

    def test_one_mark_per_attribute(self, paper_samples):
        matrix = dataset_to_indicator_matrix(paper_samples)
        assert (matrix[:, 0:3].sum(axis=1) == 1).all()
        assert (matrix[:, 3:5].sum(axis=1) == 1).all()
        assert (matrix[:, 5:7].sum(axis=1) == 1).all()

    def test_round_trip(self, schema, paper_samples):
        matrix = dataset_to_indicator_matrix(paper_samples)
        recovered = indicator_matrix_to_dataset(schema, matrix)
        assert np.array_equal(recovered.rows, paper_samples.rows)

    def test_rejects_multiple_marks(self, schema):
        matrix = np.zeros((1, 7), dtype=np.int64)
        matrix[0, 0] = 1
        matrix[0, 1] = 1  # two SMOKING values marked
        matrix[0, 3] = 1
        matrix[0, 5] = 1
        with pytest.raises(DataError, match="exactly one"):
            indicator_matrix_to_dataset(schema, matrix)

    def test_rejects_wrong_width(self, schema):
        with pytest.raises(DataError, match="columns"):
            indicator_matrix_to_dataset(schema, np.zeros((1, 5)))


class TestTupleForm:
    """Figure 6: one column per joint cell; sums are the contingency cells."""

    def test_shape(self, paper_samples):
        matrix = dataset_to_tuple_matrix(paper_samples)
        assert matrix.shape == (400, 12)

    def test_one_mark_per_sample(self, paper_samples):
        matrix = dataset_to_tuple_matrix(paper_samples)
        assert (matrix.sum(axis=1) == 1).all()

    def test_column_sums_are_contingency_cells(self, schema, paper_samples):
        # The paper: "the summations of the triples are the values of the
        # cells in Figure 1".
        matrix = dataset_to_tuple_matrix(paper_samples)
        table = tuple_matrix_to_contingency(schema, matrix)
        assert table == paper_samples.to_contingency()

    def test_round_trip(self, schema, paper_samples):
        matrix = dataset_to_tuple_matrix(paper_samples)
        recovered = tuple_matrix_to_dataset(schema, matrix)
        assert np.array_equal(recovered.rows, paper_samples.rows)

    def test_rejects_zero_marks(self, schema):
        with pytest.raises(DataError, match="exactly one"):
            tuple_matrix_to_dataset(schema, np.zeros((1, 12), dtype=np.int64))

    def test_rejects_wrong_width(self, schema):
        with pytest.raises(DataError, match="columns"):
            tuple_matrix_to_contingency(schema, np.zeros((1, 10)))

    def test_column_labels_match_paper_notation(self, schema):
        labels = tuple_column_labels(schema)
        assert len(labels) == 12
        assert labels[0] == "SCF=111"
        # Row-major: last index (FAMILY_HISTORY) varies fastest.
        assert labels[1] == "SCF=112"
        assert labels[-1] == "SCF=322"
