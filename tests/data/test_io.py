"""Tests for CSV and JSON serialization."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.io import (
    read_dataset_csv,
    read_table_json,
    schema_from_dict,
    schema_to_dict,
    table_from_dict,
    table_to_dict,
    write_dataset_csv,
    write_table_json,
)
from repro.exceptions import DataError


class TestCSV:
    def test_round_trip_with_schema(self, schema, table, rng, tmp_path):
        dataset = Dataset.from_joint(schema, table.probabilities(), 200, rng)
        path = tmp_path / "survey.csv"
        write_dataset_csv(dataset, path)
        recovered = read_dataset_csv(path, schema)
        assert np.array_equal(recovered.rows, dataset.rows)

    def test_round_trip_inferred_schema(self, schema, table, rng, tmp_path):
        dataset = Dataset.from_joint(schema, table.probabilities(), 500, rng)
        path = tmp_path / "survey.csv"
        write_dataset_csv(dataset, path)
        recovered = read_dataset_csv(path)
        # Inferred schema sorts values, so compare contingency content by
        # labelled counts instead of raw indices.
        original = dataset.to_contingency()
        inferred = recovered.to_contingency()
        assignment = {
            "SMOKING": "smoker",
            "CANCER": "yes",
            "FAMILY_HISTORY": "no",
        }
        assert inferred.count(assignment) == original.count(assignment)

    def test_header_mismatch(self, schema, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("X,Y,Z\n1,2,3\n")
        with pytest.raises(DataError, match="header"):
            read_dataset_csv(path, schema)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("A,B\nx,u\nx\n")
        with pytest.raises(DataError, match="fields"):
            read_dataset_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError, match="empty"):
            read_dataset_csv(path)

    def test_constant_column_cannot_infer(self, tmp_path):
        path = tmp_path / "constant.csv"
        path.write_text("A,B\nx,u\nx,v\n")
        with pytest.raises(DataError, match="distinct"):
            read_dataset_csv(path)


class TestJSON:
    def test_schema_round_trip(self, schema):
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_schema_malformed(self):
        with pytest.raises(DataError, match="malformed"):
            schema_from_dict({"nope": []})

    def test_table_round_trip(self, table):
        assert table_from_dict(table_to_dict(table)) == table

    def test_table_file_round_trip(self, table, tmp_path):
        path = tmp_path / "table.json"
        write_table_json(table, path)
        assert read_table_json(path) == table

    def test_table_malformed(self):
        with pytest.raises(DataError, match="malformed"):
            table_from_dict({"schema": {"attributes": []}})
