"""Tests for the one-shot report generator."""

from repro.cli import main
from repro.eval.report import generate_report, write_report


class TestGenerate:
    def test_contains_every_section(self):
        report = generate_report(recovery_trials=1, recovery_n=4000)
        for needle in [
            "E1 — Figure 1",
            "E2 — Figure 2",
            "E3 — Table 1",
            "E4 — Table 2",
            "E5 — Figure 3",
            "E6 — Figure 4",
            "E8 — Appendix B",
            "A1 — selector recovery",
        ]:
            assert needle in report

    def test_embeds_paper_numbers(self):
        report = generate_report(recovery_trials=1, recovery_n=4000)
        assert "3428" in report
        assert "-11.57" in report  # Table 1's most significant delta

    def test_write_report(self, tmp_path):
        path = write_report(
            tmp_path / "report.md", recovery_trials=1, recovery_n=4000
        )
        assert path.exists()
        assert path.read_text().startswith("# Reproduction report")


class TestCLI:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        assert "Reproduction report" in capsys.readouterr().out

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "out.md"
        assert main(["report", "--output", str(target)]) == 0
        assert target.exists()
