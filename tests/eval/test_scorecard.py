"""Tests for the cross-run scenario scorecard aggregator and renderer."""

import json

from repro.eval.scorecard import (
    build_scorecard,
    render_scorecard_markdown,
    scenario_entries_from_registry,
    scenario_entries_from_trajectory,
)
from repro.store import RunRegistry


def outcome(
    scenario="single-pairwise",
    tier="smoke",
    passed=True,
    precision=1.0,
    recall=1.0,
    kl=0.01,
    seconds=0.1,
    query_p99=0.4,
    gate_failures=(),
    slo_failures=(),
):
    return {
        "scenario": scenario,
        "tier": tier,
        "smoke": True,
        "passed": passed,
        "precision": precision,
        "recall": recall,
        "kl_empirical_fitted": kl,
        "seconds": seconds,
        "query_replay": {"p99_ms": query_p99},
        "gate_failures": list(gate_failures),
        "slo_failures": list(slo_failures),
    }


def record_outcome(registry, metrics, created_at, sha="abc1234"):
    registry.record(
        kind="scenario",
        metrics=metrics,
        smoke=True,
        cpus=1,
        config_hash="deadbeef",
        git_sha=sha,
        created_at=created_at,
    )


class TestRegistryEntries:
    def test_empty_registry_yields_no_entries(self):
        with RunRegistry(":memory:") as registry:
            assert scenario_entries_from_registry(registry) == []

    def test_scenario_and_benchmark_records_both_counted(self):
        with RunRegistry(":memory:") as registry:
            record_outcome(
                registry, outcome("alpha"), "2026-01-01T00:00:00Z"
            )
            registry.record(
                kind="benchmark",
                metrics={
                    "scenarios": [outcome("alpha"), outcome("beta")],
                },
                smoke=True,
                cpus=1,
                config_hash="cafecafe",
                git_sha="def5678",
                created_at="2026-01-02T00:00:00Z",
            )
            entries = scenario_entries_from_registry(registry)
        assert [e["scenario"] for e in entries] == [
            "alpha",
            "alpha",
            "beta",
        ]
        # Oldest first, so trend comparisons read history forward.
        assert entries[0]["created_at"] < entries[1]["created_at"]

    def test_smoke_filter_passes_through(self):
        with RunRegistry(":memory:") as registry:
            record_outcome(registry, outcome(), "2026-01-01T00:00:00Z")
            assert scenario_entries_from_registry(registry, smoke=False) == []
            assert len(scenario_entries_from_registry(registry, smoke=True)) == 1


class TestTrajectoryEntries:
    def test_reads_run_all_records(self):
        records = [
            {
                "timestamp": "2026-01-01T00:00:00Z",
                "scenarios": [outcome("alpha", passed=True)],
            },
            {
                "timestamp": "2026-01-02T00:00:00Z",
                "scenarios": [outcome("alpha", passed=False)],
            },
        ]
        entries = scenario_entries_from_trajectory(records)
        assert [e["passed"] for e in entries] == [True, False]

    def test_record_without_scenarios_is_skipped(self):
        assert scenario_entries_from_trajectory([{"timestamp": "x"}]) == []


class TestBuildScorecard:
    def test_empty_entries(self):
        card = build_scorecard([])
        assert card["scenarios"] == []
        assert card["total_scenarios"] == 0
        assert card["total_outcomes"] == 0
        assert card["failing"] == []
        assert card["regressed"] == []

    def test_single_run_is_new(self):
        card = build_scorecard(
            [
                {
                    **scenario_entries_from_trajectory(
                        [
                            {
                                "timestamp": "2026-01-01T00:00:00Z",
                                "scenarios": [outcome()],
                            }
                        ]
                    )[0]
                }
            ]
        )
        [row] = card["scenarios"]
        assert row["runs"] == 1
        assert row["trend"] == "new"
        assert row["passed"] is True
        assert card["failing"] == []

    def _card(self, first_passed, then_passed):
        records = [
            {
                "timestamp": f"2026-01-0{day}T00:00:00Z",
                "scenarios": [outcome(passed=passed)],
            }
            for day, passed in ((1, first_passed), (2, then_passed))
        ]
        return build_scorecard(scenario_entries_from_trajectory(records))

    def test_trend_regressed(self):
        card = self._card(True, False)
        assert card["scenarios"][0]["trend"] == "regressed"
        assert card["regressed"] == ["single-pairwise"]
        assert card["failing"] == ["single-pairwise"]

    def test_trend_improved(self):
        card = self._card(False, True)
        assert card["scenarios"][0]["trend"] == "improved"
        assert card["regressed"] == []
        assert card["failing"] == []

    def test_trend_steady(self):
        card = self._card(True, True)
        assert card["scenarios"][0]["trend"] == "steady"
        assert card["scenarios"][0]["runs"] == 2

    def test_latest_metrics_win(self):
        records = [
            {
                "timestamp": "2026-01-01T00:00:00Z",
                "scenarios": [outcome(precision=0.5)],
            },
            {
                "timestamp": "2026-01-02T00:00:00Z",
                "scenarios": [outcome(precision=0.9)],
            },
        ]
        card = build_scorecard(scenario_entries_from_trajectory(records))
        assert card["scenarios"][0]["precision"] == 0.9

    def test_json_round_trip(self):
        card = self._card(True, False)
        assert json.loads(json.dumps(card)) == card


class TestRenderMarkdown:
    def test_empty_scorecard_renders_placeholder(self):
        text = render_scorecard_markdown(build_scorecard([]))
        assert "# Scenario scorecard" in text
        assert "No scenario outcomes recorded." in text

    def test_golden_markdown(self):
        """The exact rendering contract, pinned byte-for-byte."""
        entries = scenario_entries_from_trajectory(
            [
                {
                    "timestamp": "2026-01-01T00:00:00Z",
                    "git_sha": "abc1234",
                    "scenarios": [
                        outcome("alpha", precision=0.75, recall=0.5),
                        outcome(
                            "zulu",
                            tier="stress",
                            passed=False,
                            precision=0.2,
                            gate_failures=["precision 0.200 < 0.900"],
                            slo_failures=["query p99 9.0ms > 2.0ms"],
                        ),
                    ],
                }
            ]
        )
        text = render_scorecard_markdown(build_scorecard(entries))
        assert text == (
            "# Scenario scorecard\n"
            "\n"
            "2 scenarios, 2 recorded outcomes; 1 failing, 0 regressed.\n"
            "\n"
            "| scenario | tier | runs | status | trend | precision | "
            "recall | KL | q p99 ms | last run |\n"
            "| --- | --- | --- | --- | --- | --- | --- | --- | --- "
            "| --- |\n"
            "| alpha | smoke | 1 | pass | new | 0.75 | 0.50 | 0.0100 "
            "| 0.4 | 2026-01-01T00:00:00Z |\n"
            "| zulu | stress | 1 | FAIL | new | 0.20 | 1.00 | 0.0100 "
            "| 0.4 | 2026-01-01T00:00:00Z |\n"
            "\n"
            "## Failures\n"
            "\n"
            "- **zulu**: precision 0.200 < 0.900; "
            "query p99 9.0ms > 2.0ms\n"
        )

    def test_failure_section_lists_misses(self):
        entries = scenario_entries_from_trajectory(
            [
                {
                    "timestamp": "2026-01-01T00:00:00Z",
                    "scenarios": [
                        outcome(
                            passed=False,
                            slo_failures=["scan p99 99ms > 10ms"],
                        )
                    ],
                }
            ]
        )
        text = render_scorecard_markdown(build_scorecard(entries))
        assert "## Failures" in text
        assert "scan p99 99ms > 10ms" in text
