"""Tests for conformance-matrix rendering and the table helpers."""

from repro.eval.tables import format_table, markdown_table
from repro.scenarios import run_matrix, run_scenario
from repro.eval.conformance import (
    conformance_report,
    render_baseline_comparison,
    render_conformance_matrix,
)


class TestMarkdownTable:
    def test_pipe_layout(self):
        text = markdown_table(["a", "b"], [[1, 2.5], ["x", 0.125]])
        assert text.splitlines() == [
            "| a | b |",
            "| --- | --- |",
            "| 1 | 2.500 |",
            "| x | 0.125 |",
        ]

    def test_float_format_override(self):
        text = markdown_table(["v"], [[0.12345]], floatfmt=".1f")
        assert "| 0.1 |" in text

    def test_monospace_table_still_pads(self):
        text = format_table(["name", "value"], [["a", 1]])
        assert "name" in text and "value" in text


class TestConformanceMatrix:
    def test_matrix_includes_tier_and_query_latency(self):
        outcome = run_scenario(
            "single-pairwise", smoke=True, include_baselines=False
        )
        text = render_conformance_matrix([outcome])
        header = text.splitlines()[0]
        assert "tier" in header
        assert "q p99 ms" in header
        assert "smoke" in text

    def test_matrix_without_replay_prints_zero_latency(self):
        outcome = run_scenario(
            "independence",
            smoke=True,
            include_baselines=False,
            include_replay=False,
        )
        assert outcome.query_replay == {}
        text = render_conformance_matrix([outcome])
        assert "0.0" in text


class TestConformanceReport:
    def test_success_line_covers_gates_and_slos(self):
        outcomes = run_matrix(
            names=["independence"], smoke=True, include_baselines=False
        )
        text = conformance_report(outcomes)
        assert "all conformance gates and latency SLOs passed" in text

    def test_slo_failures_are_labelled(self):
        outcome = run_scenario(
            "independence", smoke=True, include_baselines=False
        )
        outcome.slo_failures = ["query p99 9.0ms > 2.0ms"]
        text = conformance_report([outcome])
        assert "gate failures:" in text
        assert "independence: SLO query p99 9.0ms > 2.0ms" in text

    def test_baseline_comparison_empty(self):
        assert render_baseline_comparison([]) == "(no outcomes)"
