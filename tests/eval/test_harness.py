"""Tests for the experiment harness (shape criteria for E1-E8, A1)."""

import pytest

from repro.eval import harness
from repro.eval.tables import format_table


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "x"], [["a", 1.5], ["bb", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_table_none_blank(self):
        text = format_table(["x"], [[None]])
        assert text.splitlines()[2].strip() == ""

    def test_format_table_row_width_check(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])


class TestFigures:
    def test_figure1_text(self):
        text = harness.reproduce_figure1()
        assert "130" in text and "410" in text and "3428" in text

    def test_figure2_text(self):
        text = harness.reproduce_figure2()
        assert "1290" in text  # smoker row total
        assert "RELATION OF SMOKING TO CANCER" in text


class TestTable1:
    def test_every_sign_matches_paper(self):
        comparisons, _text = harness.reproduce_table1()
        assert len(comparisons) == 16
        assert all(c.sign_match for c in comparisons)

    def test_most_significant_ranking(self):
        """The paper's top-3: AB11, AC11, AC12 — ours must rank the same
        cells as the three most negative."""
        comparisons, _text = harness.reproduce_table1()
        ours_top = sorted(comparisons, key=lambda c: c.ours_delta)[:3]
        ours_keys = {(c.subset, c.values) for c in ours_top}
        assert ours_keys == {
            (("SMOKING", "CANCER"), (0, 0)),
            (("SMOKING", "FAMILY_HISTORY"), (0, 0)),
            (("SMOKING", "FAMILY_HISTORY"), (0, 1)),
        }

    def test_deltas_close_to_paper(self):
        comparisons, _text = harness.reproduce_table1()
        for c in comparisons:
            assert c.ours_delta == pytest.approx(c.paper_delta, abs=0.08)


class TestTable2:
    def test_converges(self):
        fit, text = harness.reproduce_table2()
        assert fit.converged
        assert "TABLE 2" in text

    def test_trace_hits_constraint(self):
        fit, _text = harness.reproduce_table2()
        pair = fit.model.marginal(["SMOKING", "FAMILY_HISTORY"])
        assert pair[0, 1] == pytest.approx(750 / 3428, abs=1e-8)

    def test_cell_factor_ends_above_one(self):
        fit, _text = harness.reproduce_table2()
        final = fit.trace[-1]["a^SMOKING,FAMILY_HISTORY_1,2"]
        assert final > 1.0


class TestDiscoveryAndSolvers:
    def test_discovery_shape(self):
        result, text = harness.reproduce_discovery()
        # Shape criteria: smoking-cancer association found first; the
        # conditional ordering the paper motivates holds.
        assert result.found[0].attributes == ("SMOKING", "CANCER")
        smoker = result.model.conditional(
            {"CANCER": "yes"}, {"SMOKING": "smoker"}
        )
        non_smoker = result.model.conditional(
            {"CANCER": "yes"}, {"SMOKING": "non-smoker"}
        )
        assert smoker > non_smoker
        assert "Sample queries" in text

    def test_solver_comparison_agreement(self):
        (ipf, gevarter), text = harness.reproduce_solver_comparison()
        assert ipf.converged and gevarter.converged
        assert "ipf" in text and "gevarter" in text

    def test_appendix_b_rows_agree(self):
        rows, _text = harness.reproduce_appendix_b()
        for row in rows:
            assert row[3] < 1e-8  # |dense - factored|


class TestRecoveryExperiment:
    def test_small_run_shapes(self):
        rows, text = harness.selector_recovery_experiment(
            seed=1, trials=2, n=8000
        )
        selectors = {r.selector for r in rows}
        assert selectors == {"mml", "chi2", "bic"}
        assert len(rows) == 6
        assert "A1" in text

    def test_mml_recall_reasonable(self):
        """With strong signals and plenty of data, MML recall > 0.5."""
        import numpy as np

        rows, _text = harness.selector_recovery_experiment(
            seed=0, trials=3, n=20000, strength=4.0
        )
        mml_recall = np.mean(
            [r.recall for r in rows if r.selector == "mml"]
        )
        assert mml_recall >= 0.5
