"""Tests pinning the transcribed paper fixtures to internal consistency."""

import numpy as np
import pytest

from repro.eval.paper import (
    FIGURE2_MARGINALS,
    PAPER_N,
    PAPER_SECOND_ORDER_CELLS,
    PAPER_TABLE1,
    TABLE2_CELL,
    TABLE2_TARGET,
    paper_table,
)


class TestFigure1:
    def test_total(self, table):
        assert table.total == PAPER_N

    def test_slice_sums(self, table):
        # Figure 2: family history yes slice N=1780, no slice N=1648.
        assert table.counts[:, :, 0].sum() == 1780
        assert table.counts[:, :, 1].sum() == 1648

    def test_paper_table_fresh_instances(self):
        assert paper_table() == paper_table()
        assert paper_table() is not paper_table()


class TestTable1Fixture:
    def test_sixteen_rows(self):
        assert len(PAPER_TABLE1) == PAPER_SECOND_ORDER_CELLS

    def test_observed_counts_match_figure2(self, table):
        for row in PAPER_TABLE1:
            assert (
                table.marginal(list(row.subset))[row.values] == row.observed
            ), row

    def test_probability_consistent_with_rounded_margins(self, table):
        """Each printed p is the product of 2-digit-rounded margins
        (tolerance reflects the rounding)."""
        for row in PAPER_TABLE1:
            exact = np.prod(
                [
                    table.first_order_probabilities(name)[value]
                    for name, value in zip(row.subset, row.values)
                ]
            )
            assert row.probability == pytest.approx(exact, abs=0.01), row

    def test_mean_is_n_times_p(self):
        """Each printed mean tracks N * p (paper slack from rounding)."""
        for row in PAPER_TABLE1:
            assert row.mean == pytest.approx(
                PAPER_N * row.probability, rel=0.03
            ), row

    def test_marginals_fixture_consistent(self, table):
        for subset, expected in FIGURE2_MARGINALS.items():
            assert table.marginal(list(subset)).tolist() == expected


class TestTable2Fixture:
    def test_target_is_cell_share(self, table):
        subset, values = TABLE2_CELL
        observed = table.marginal(list(subset))[values]
        assert TABLE2_TARGET == pytest.approx(observed / PAPER_N)
        assert observed == 750

    def test_target_matches_paper_b(self):
        """The paper's Eq 72: b = .219."""
        assert TABLE2_TARGET == pytest.approx(0.219, abs=5e-4)
