"""Tests for holdout scoring, calibration and cross-validation."""

import numpy as np
import pytest

from repro.baselines.empirical import empirical_model
from repro.baselines.independence import independence_model
from repro.core.validation import (
    calibration_table,
    conditional_brier_score,
    cross_validate,
    holdout_log_loss,
    perplexity,
)
from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.exceptions import DataError


@pytest.fixture
def split(schema, table, rng):
    dataset = Dataset.from_joint(schema, table.probabilities(), 20000, rng)
    train, holdout = dataset.split(0.5, rng)
    return train.to_contingency(), holdout.to_contingency()


class TestLogLoss:
    def test_discovered_beats_independence(self, split):
        train, holdout = split
        discovered = discover(train).model
        independent = independence_model(train)
        assert holdout_log_loss(discovered, holdout) < holdout_log_loss(
            independent, holdout
        )

    def test_perplexity_definition(self, split):
        train, holdout = split
        model = independence_model(train)
        loss = holdout_log_loss(model, holdout)
        assert perplexity(model, holdout) == pytest.approx(np.exp(loss))

    def test_zero_probability_is_infinite(self, schema, table):
        margins = {
            "SMOKING": np.array([1.0, 0.0, 0.0]),
            "CANCER": np.array([0.5, 0.5]),
            "FAMILY_HISTORY": np.array([0.5, 0.5]),
        }
        from repro.maxent.model import MaxEntModel

        model = MaxEntModel.independent(schema, margins)
        assert holdout_log_loss(model, table) == float("inf")
        assert perplexity(model, table) == float("inf")

    def test_empty_holdout_rejected(self, schema, table):
        model = independence_model(table)
        with pytest.raises(DataError, match="empty"):
            holdout_log_loss(model, ContingencyTable.zeros(schema))

    def test_training_empirical_is_lower_bound(self, table):
        """On the training data itself, nothing beats the saturated model."""
        saturated = empirical_model(table)
        discovered = discover(table).model
        assert holdout_log_loss(saturated, table) <= holdout_log_loss(
            discovered, table
        ) + 1e-9


class TestBrier:
    def test_oracle_bounds(self, split):
        train, holdout = split
        model = discover(train).model
        score = conditional_brier_score(model, holdout, "CANCER")
        # Between perfect (0) and worse-than-uniform for a binary target.
        assert 0.0 <= score <= 0.6

    def test_discovered_not_worse_than_independence(self, split):
        train, holdout = split
        discovered = conditional_brier_score(
            discover(train).model, holdout, "CANCER"
        )
        independent = conditional_brier_score(
            independence_model(train), holdout, "CANCER"
        )
        assert discovered <= independent + 1e-6

    def test_empty_holdout_rejected(self, schema, table):
        model = independence_model(table)
        with pytest.raises(DataError, match="empty"):
            conditional_brier_score(
                model, ContingencyTable.zeros(schema), "CANCER"
            )


class TestCalibration:
    def test_bins_cover_all_weight(self, split):
        train, holdout = split
        model = discover(train).model
        bins = calibration_table(model, holdout, "CANCER", "yes", bins=5)
        assert bins
        assert sum(b.weight for b in bins) == pytest.approx(1.0)

    def test_well_specified_model_is_calibrated(self, split):
        """A model fitted on half the data predicts rates on the other half
        within a few points."""
        train, holdout = split
        model = discover(train).model
        bins = calibration_table(model, holdout, "CANCER", "yes", bins=4)
        for b in bins:
            assert abs(b.predicted_mean - b.observed_rate) < 0.06

    def test_bin_count_validated(self, split):
        train, holdout = split
        model = discover(train).model
        with pytest.raises(DataError, match="bins"):
            calibration_table(model, holdout, "CANCER", "yes", bins=1)


class TestCrossValidation:
    def test_folds_and_stability(self, schema, table, rng):
        dataset = Dataset.from_joint(schema, table.probabilities(), 15000, rng)
        result = cross_validate(
            dataset, k=3, config=DiscoveryConfig(max_order=2), rng=rng
        )
        assert len(result.folds) == 3
        assert result.mean_log_loss > 0
        assert result.mean_constraints > 0
        # Folds of the same population find mostly the same constraints.
        assert result.constraint_stability() > 0.5

    def test_k_validated(self, schema, table, rng):
        dataset = Dataset.from_joint(schema, table.probabilities(), 100, rng)
        with pytest.raises(DataError, match="folds"):
            cross_validate(dataset, k=1)

    def test_small_dataset_rejected(self, schema, table, rng):
        dataset = Dataset.from_joint(schema, table.probabilities(), 3, rng)
        with pytest.raises(DataError, match="folds"):
            cross_validate(dataset, k=5)
