"""Tests for most-probable-explanation (MPE) queries."""

import numpy as np
import pytest

from repro.core.query import QueryEngine
from repro.discovery.engine import discover
from repro.exceptions import QueryError


@pytest.fixture
def engine(table):
    return QueryEngine(discover(table).model)


class TestMostProbable:
    def test_unconditional_matches_argmax(self, engine):
        labels, probability = engine.most_probable()
        joint = engine.model.joint()
        best = np.unravel_index(np.argmax(joint), joint.shape)
        schema = engine.model.schema
        expected = {
            attribute.name: attribute.value_at(int(i))
            for attribute, i in zip(schema, best)
        }
        assert labels == expected
        assert probability == pytest.approx(float(joint[best]))

    def test_with_evidence(self, engine):
        labels, probability = engine.most_probable({"SMOKING": "smoker"})
        assert labels["SMOKING"] == "smoker"
        # Most smokers have no cancer.
        assert labels["CANCER"] == "no"
        assert 0.0 < probability <= 1.0

    def test_probability_is_conditional(self, engine):
        labels, probability = engine.most_probable({"SMOKING": "smoker"})
        exact = engine.model.conditional(
            {k: v for k, v in labels.items() if k != "SMOKING"},
            {"SMOKING": "smoker"},
        )
        assert probability == pytest.approx(exact, rel=1e-9)

    def test_full_evidence_returns_it(self, engine):
        evidence = {
            "SMOKING": "smoker",
            "CANCER": "yes",
            "FAMILY_HISTORY": "no",
        }
        labels, probability = engine.most_probable(evidence)
        assert labels == evidence
        assert probability == pytest.approx(1.0)

    def test_zero_evidence_rejected(self, table):
        from repro.maxent.model import MaxEntModel

        margins = {
            "SMOKING": np.array([1.0, 0.0, 0.0]),
            "CANCER": np.array([0.5, 0.5]),
            "FAMILY_HISTORY": np.array([0.5, 0.5]),
        }
        model = MaxEntModel.independent(table.schema, margins)
        engine = QueryEngine(model)
        with pytest.raises(QueryError, match="zero"):
            engine.most_probable({"SMOKING": "non-smoker"})

    def test_mpe_probability_bounds_each_marginal(self, engine):
        """The MPE's conditional probability can't exceed any single
        attribute's conditional share."""
        labels, probability = engine.most_probable({"SMOKING": "smoker"})
        for name, value in labels.items():
            if name == "SMOKING":
                continue
            single = engine.probability({name: value}, {"SMOKING": "smoker"})
            assert probability <= single + 1e-12
