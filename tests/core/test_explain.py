"""Tests for knock-out query explanations."""

import pytest

from repro.core.explain import explain
from repro.discovery.engine import discover
from repro.exceptions import QueryError


@pytest.fixture
def model(table):
    return discover(table).model


class TestExplain:
    def test_answer_matches_model(self, model):
        explanation = explain(
            model, {"CANCER": "yes"}, {"SMOKING": "smoker"}
        )
        assert explanation.answer == pytest.approx(
            model.conditional({"CANCER": "yes"}, {"SMOKING": "smoker"})
        )

    def test_independence_baseline(self, model, table):
        explanation = explain(
            model, {"CANCER": "yes"}, {"SMOKING": "smoker"}
        )
        prior = table.count({"CANCER": "yes"}) / table.total
        assert explanation.independence_answer == pytest.approx(
            prior, abs=1e-6
        )
        # The acquired knowledge raised the smoker's risk above the prior.
        assert explanation.total_shift > 0.04

    def test_smoker_cancer_constraint_dominates(self, model, table):
        """Knocking out the smoker∧cancer cell must swing this query more
        than any other constraint."""
        explanation = explain(
            model, {"CANCER": "yes"}, {"SMOKING": "smoker"}
        )
        top = explanation.ranked()[0]
        assert set(top.key[0]) == {"SMOKING", "CANCER"}
        assert top.swing > 0

    def test_one_influence_per_constraint(self, model):
        explanation = explain(
            model, {"CANCER": "yes"}, {"SMOKING": "smoker"}
        )
        assert len(explanation.influences) == len(model.cell_factors)

    def test_unconditional_rejected(self, model):
        with pytest.raises(QueryError, match="evidence"):
            explain(model, {"CANCER": "yes"}, {})

    def test_describe_output(self, model, table):
        explanation = explain(
            model, {"CANCER": "yes"}, {"SMOKING": "smoker"}
        )
        text = explanation.describe(table.schema)
        assert "P(CANCER=yes | SMOKING=smoker)" in text
        assert "independence" in text
        assert "swing" in text

    def test_irrelevant_constraint_small_swing(self, model):
        """Constraints not touching the queried attributes barely move a
        query about the others."""
        explanation = explain(
            model, {"FAMILY_HISTORY": "yes"}, {"SMOKING": "non-smoker"}
        )
        for influence in explanation.influences:
            names = set(influence.key[0])
            if names == {"CANCER", "FAMILY_HISTORY"}:
                # CANCER is marginalized out; residual coupling is tiny.
                assert abs(influence.swing) < 0.02
