"""Tests for query parsing and the query engine."""

import pytest

from repro.baselines.independence import independence_model
from repro.core.query import Query, QueryEngine, parse_assignment
from repro.discovery.engine import discover
from repro.exceptions import QueryError


@pytest.fixture
def model(table):
    return discover(table).model


class TestParsing:
    def test_single_term(self, schema):
        assert parse_assignment(schema, "CANCER=yes") == {"CANCER": "yes"}

    def test_multiple_terms(self, schema):
        parsed = parse_assignment(schema, "CANCER=no, SMOKING=smoker")
        assert parsed == {"CANCER": "no", "SMOKING": "smoker"}

    def test_whitespace_tolerant(self, schema):
        assert parse_assignment(schema, "  CANCER = yes ") == {
            "CANCER": "yes"
        }

    def test_unknown_attribute(self, schema):
        with pytest.raises(QueryError, match="no attribute"):
            parse_assignment(schema, "WEIGHT=high")

    def test_unknown_value(self, schema):
        with pytest.raises(QueryError, match="unknown value"):
            parse_assignment(schema, "CANCER=maybe")

    def test_malformed(self, schema):
        with pytest.raises(QueryError, match="malformed"):
            parse_assignment(schema, "CANCER")

    def test_duplicate_attribute(self, schema):
        with pytest.raises(QueryError, match="twice"):
            parse_assignment(schema, "CANCER=yes, CANCER=no")

    def test_empty(self, schema):
        with pytest.raises(QueryError, match="no assignments"):
            parse_assignment(schema, "  ,  ")

    def test_query_with_evidence(self, schema):
        query = Query.parse(schema, "CANCER=yes | SMOKING=smoker")
        assert query.target == {"CANCER": "yes"}
        assert query.given == {"SMOKING": "smoker"}

    def test_query_without_evidence(self, schema):
        query = Query.parse(schema, "CANCER=yes")
        assert query.given == {}

    def test_conflicting_overlap_rejected(self, schema):
        with pytest.raises(QueryError, match="both target and evidence"):
            Query.parse(schema, "CANCER=yes | CANCER=no")

    def test_consistent_overlap_rejected(self, schema):
        """Even P(A=x | A=x) is refused: it is trivially 1 and almost
        certainly a mistake."""
        with pytest.raises(QueryError, match="both target and evidence"):
            Query.parse(schema, "CANCER=yes | CANCER=yes")

    def test_overlap_among_many_terms_rejected(self, schema):
        with pytest.raises(QueryError, match="SMOKING"):
            Query.parse(
                schema, "SMOKING=smoker | FAMILY_HISTORY=yes, SMOKING=non-smoker"
            )

    def test_describe(self, schema):
        query = Query.parse(schema, "CANCER=yes | SMOKING=smoker")
        assert query.describe() == "P(CANCER=yes | SMOKING=smoker)"


class TestEngine:
    def test_marginal_query(self, model):
        engine = QueryEngine(model)
        assert engine.ask("CANCER=yes") == pytest.approx(433 / 3428, abs=1e-6)

    def test_conditional_query(self, model):
        engine = QueryEngine(model)
        probability = engine.ask("CANCER=yes | SMOKING=smoker")
        assert probability == pytest.approx(240 / 1290, abs=0.01)

    def test_elimination_path_agrees(self, model):
        dense = QueryEngine(model, method="dense")
        factored = QueryEngine(model, method="elimination")
        for text in [
            "CANCER=yes",
            "CANCER=yes | SMOKING=smoker",
            "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes",
        ]:
            assert factored.ask(text) == pytest.approx(
                dense.ask(text), rel=1e-9
            )

    def test_unknown_method(self, model):
        with pytest.raises(QueryError, match="unknown query method"):
            QueryEngine(model, method="guess")

    def test_distribution_sums_to_one(self, model):
        engine = QueryEngine(model)
        distribution = engine.distribution(
            "CANCER", {"SMOKING": "smoker"}
        )
        assert set(distribution) == {"yes", "no"}
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_distribution_of_fixed_attribute(self, model):
        engine = QueryEngine(model)
        with pytest.raises(QueryError, match="fixed"):
            engine.distribution("CANCER", {"CANCER": "yes"})

    def test_bayes_consistency(self, model):
        """P(A|B) P(B) == P(B|A) P(A) across the engine."""
        engine = QueryEngine(model)
        p_a_given_b = engine.probability(
            {"CANCER": "yes"}, {"SMOKING": "smoker"}
        )
        p_b_given_a = engine.probability(
            {"SMOKING": "smoker"}, {"CANCER": "yes"}
        )
        p_a = engine.probability({"CANCER": "yes"})
        p_b = engine.probability({"SMOKING": "smoker"})
        assert p_a_given_b * p_b == pytest.approx(p_b_given_a * p_a)

    def test_independence_model_queries(self, table):
        engine = QueryEngine(independence_model(table))
        # Under independence, conditioning changes nothing.
        assert engine.ask("CANCER=yes | SMOKING=smoker") == pytest.approx(
            engine.ask("CANCER=yes")
        )
