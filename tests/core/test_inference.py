"""Tests for the rule-based expert-system shell."""

import pytest

from repro.core.inference import RuleEngine
from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.core.rules import Rule, RuleSet
from repro.exceptions import QueryError


@pytest.fixture
def rules():
    return RuleSet(
        [
            Rule((("SMOKING", "smoker"),), ("CANCER", "yes"), 0.19, 0.38, 1.5),
            Rule((("SMOKING", "smoker"),), ("CANCER", "no"), 0.81, 0.38, 0.93),
            Rule(
                (("FAMILY_HISTORY", "yes"), ("SMOKING", "smoker")),
                ("CANCER", "yes"),
                0.24,
                0.16,
                1.9,
            ),
            Rule((("CANCER", "yes"),), ("RISK", "high"), 0.9, 0.13, 3.0),
        ]
    )


class TestConclude:
    def test_basic_conclusion(self, rules):
        engine = RuleEngine(rules)
        conclusion = engine.conclude({"SMOKING": "smoker"}, "CANCER")
        assert conclusion.value == "no"  # .81 beats .19
        assert conclusion.probability == pytest.approx(0.81)

    def test_specificity_preference(self, rules):
        """With family history known, the two-condition rule is used for
        the 'yes' value (its p rises from .19 to .24)."""
        engine = RuleEngine(rules)
        conclusion = engine.conclude(
            {"SMOKING": "smoker", "FAMILY_HISTORY": "yes"}, "CANCER"
        )
        yes_rule = [
            r
            for r in engine.applicable(
                {"SMOKING": "smoker", "FAMILY_HISTORY": "yes"}
            ).about("CANCER")
            if r.conclusion[1] == "yes"
        ]
        assert any(len(r.conditions) == 2 for r in yes_rule)
        assert conclusion.value == "no"  # .81 still wins overall

    def test_known_attribute_rejected(self, rules):
        engine = RuleEngine(rules)
        with pytest.raises(QueryError, match="already known"):
            engine.conclude({"CANCER": "yes"}, "CANCER")

    def test_no_applicable_rule(self, rules):
        engine = RuleEngine(rules)
        with pytest.raises(QueryError, match="no applicable rule"):
            engine.conclude({"FAMILY_HISTORY": "no"}, "RISK")

    def test_conclusion_describe(self, rules):
        engine = RuleEngine(rules)
        conclusion = engine.conclude({"SMOKING": "smoker"}, "CANCER")
        assert "CANCER=no" in conclusion.describe()


class TestForwardChain:
    def test_chains_through_intermediate(self, rules):
        """smoker -> cancer=no stops the chain; but a direct cancer=yes
        fact chains to risk=high."""
        engine = RuleEngine(rules)
        conclusions = engine.forward_chain({"CANCER": "yes"}, threshold=0.5)
        assert any(
            c.attribute == "RISK" and c.value == "high" for c in conclusions
        )

    def test_threshold_blocks_weak_conclusions(self, rules):
        engine = RuleEngine(rules)
        conclusions = engine.forward_chain(
            {"SMOKING": "smoker"}, threshold=0.95
        )
        assert conclusions == []

    def test_derivation_order(self, rules):
        engine = RuleEngine(rules)
        conclusions = engine.forward_chain({"SMOKING": "smoker"}, threshold=0.5)
        # cancer=no derived first; risk has no rule for cancer=no.
        assert [c.attribute for c in conclusions] == ["CANCER"]

    def test_fixed_point_terminates(self, rules):
        engine = RuleEngine(rules)
        # Must terminate even when nothing can fire.
        assert engine.forward_chain({}, threshold=0.5) == []


class TestAgainstModel:
    def test_rule_engine_tracks_model_posteriors(self, table):
        """Rules generated from the fitted model give the same posterior
        the model itself reports, for matching evidence."""
        kb = ProbabilisticKnowledgeBase.from_data(table)
        rules = kb.rules(max_conditions=2)
        engine = RuleEngine(rules)
        facts = {"SMOKING": "smoker", "FAMILY_HISTORY": "yes"}
        conclusion = engine.conclude(facts, "CANCER")
        exact = kb.probability({"CANCER": conclusion.value}, facts)
        assert conclusion.probability == pytest.approx(exact, abs=1e-9)
