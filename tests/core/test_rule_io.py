"""Tests for rule export / import."""

import json

import pytest

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.core.rules import (
    Rule,
    RuleSet,
    rules_from_json,
    rules_to_json,
    write_rules_csv,
)
from repro.exceptions import DataError


@pytest.fixture
def rules(table):
    kb = ProbabilisticKnowledgeBase.from_data(table)
    return kb.rules(max_conditions=1, min_support=0.05)


class TestJSON:
    def test_round_trip(self, rules):
        data = rules_to_json(rules)
        recovered = rules_from_json(data)
        assert len(recovered) == len(rules)
        original = {(r.conditions, r.conclusion): r for r in rules}
        for rule in recovered:
            reference = original[(rule.conditions, rule.conclusion)]
            assert rule.probability == pytest.approx(reference.probability)
            assert rule.support == pytest.approx(reference.support)
            assert rule.lift == pytest.approx(reference.lift)

    def test_json_serializable(self, rules):
        text = json.dumps(rules_to_json(rules))
        assert "probability" in text

    def test_malformed_rejected(self):
        with pytest.raises(DataError, match="malformed"):
            rules_from_json([{"if": {}}])

    def test_multi_conclusion_rejected(self):
        with pytest.raises(DataError, match="exactly one"):
            rules_from_json(
                [
                    {
                        "if": {"A": "x"},
                        "then": {"B": "y", "C": "z"},
                        "probability": 0.5,
                        "support": 0.5,
                        "lift": 1.0,
                    }
                ]
            )


class TestCSV:
    def test_write_and_shape(self, rules, tmp_path):
        path = tmp_path / "rules.csv"
        write_rules_csv(rules, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("conditions,")
        assert len(lines) == len(rules) + 1

    def test_content(self, tmp_path):
        rules = RuleSet(
            [Rule((("A", "x"), ("B", "y")), ("C", "z"), 0.75, 0.2, 2.0)]
        )
        path = tmp_path / "rules.csv"
        write_rules_csv(rules, path)
        body = path.read_text()
        assert "A=x AND B=y" in body
        assert "C=z" in body
        assert "0.750000" in body
