"""Tests for the public knowledge-base facade."""

import pytest

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.data.dataset import Dataset
from repro.discovery.config import DiscoveryConfig
from repro.exceptions import DataError


@pytest.fixture
def kb(table):
    return ProbabilisticKnowledgeBase.from_data(table)


class TestConstruction:
    def test_from_table(self, kb, table):
        assert kb.sample_size == table.total
        assert kb.discovery is not None
        assert len(kb.constraints) > 0

    def test_from_dataset(self, schema, table, rng):
        dataset = Dataset.from_joint(schema, table.probabilities(), 2000, rng)
        kb = ProbabilisticKnowledgeBase.from_data(dataset)
        assert kb.sample_size == 2000

    def test_from_bad_type(self):
        with pytest.raises(DataError, match="expects"):
            ProbabilisticKnowledgeBase.from_data([1, 2, 3])

    def test_config_forwarded(self, table):
        kb = ProbabilisticKnowledgeBase.from_data(
            table, DiscoveryConfig(max_constraints=1)
        )
        assert len(kb.constraints) == 1


class TestQueries:
    def test_string_query(self, kb):
        assert kb.query("CANCER=yes | SMOKING=smoker") == pytest.approx(
            240 / 1290, abs=0.01
        )

    def test_dict_query(self, kb):
        assert kb.probability(
            {"CANCER": "yes"}, {"SMOKING": "smoker"}
        ) == pytest.approx(240 / 1290, abs=0.01)

    def test_distribution(self, kb):
        distribution = kb.distribution("SMOKING")
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert distribution["smoker"] == pytest.approx(1290 / 3428, abs=1e-6)


class TestKnowledge:
    def test_rules_threshold(self, kb):
        rules = kb.rules(min_probability=0.7, max_conditions=1)
        assert all(r.probability >= 0.7 for r in rules)
        assert len(rules) > 0

    def test_constrained_only_rules(self, kb):
        rules = kb.rules(constrained_only=True)
        assert len(rules) > 0

    def test_summary(self, kb):
        text = kb.summary()
        assert "N=3428" in text
        assert "significant joint probabilities" in text


class TestSerialization:
    def test_dict_round_trip(self, kb):
        clone = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
        assert clone.sample_size == kb.sample_size
        for text in [
            "CANCER=yes",
            "CANCER=yes | SMOKING=smoker",
            "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes",
        ]:
            assert clone.query(text) == pytest.approx(kb.query(text), rel=1e-9)

    def test_file_round_trip(self, kb, tmp_path):
        path = tmp_path / "kb.json"
        kb.save(path)
        loaded = ProbabilisticKnowledgeBase.load(path)
        assert loaded.query("CANCER=yes | SMOKING=smoker") == pytest.approx(
            kb.query("CANCER=yes | SMOKING=smoker"), rel=1e-9
        )

    def test_loaded_kb_reports_constraints(self, kb, tmp_path):
        """A KB loaded without its discovery trace still lists its
        significant joint probabilities (recomputed from factors)."""
        path = tmp_path / "kb.json"
        kb.save(path)
        loaded = ProbabilisticKnowledgeBase.load(path)
        assert loaded.discovery is None
        original = {
            (c.attributes, c.values): c.probability for c in kb.constraints
        }
        recovered = {
            (c.attributes, c.values): c.probability
            for c in loaded.constraints
        }
        assert set(recovered) == set(original)
        for key, probability in original.items():
            assert recovered[key] == pytest.approx(probability, abs=1e-7)

    def test_malformed_dict(self):
        with pytest.raises(DataError, match="malformed"):
            ProbabilisticKnowledgeBase.from_dict({"schema": {}})
