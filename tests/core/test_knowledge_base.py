"""Tests for the public knowledge-base facade."""

import pytest

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.data.dataset import Dataset
from repro.discovery.config import DiscoveryConfig
from repro.exceptions import DataError


@pytest.fixture
def kb(table):
    return ProbabilisticKnowledgeBase.from_data(table)


class TestConstruction:
    def test_from_table(self, kb, table):
        assert kb.sample_size == table.total
        assert kb.discovery is not None
        assert len(kb.constraints) > 0

    def test_from_dataset(self, schema, table, rng):
        dataset = Dataset.from_joint(schema, table.probabilities(), 2000, rng)
        kb = ProbabilisticKnowledgeBase.from_data(dataset)
        assert kb.sample_size == 2000

    def test_from_bad_type(self):
        with pytest.raises(DataError, match="expects"):
            ProbabilisticKnowledgeBase.from_data([1, 2, 3])

    def test_config_forwarded(self, table):
        kb = ProbabilisticKnowledgeBase.from_data(
            table, DiscoveryConfig(max_constraints=1)
        )
        assert len(kb.constraints) == 1


class TestQueries:
    def test_string_query(self, kb):
        assert kb.query("CANCER=yes | SMOKING=smoker") == pytest.approx(
            240 / 1290, abs=0.01
        )

    def test_dict_query(self, kb):
        assert kb.probability(
            {"CANCER": "yes"}, {"SMOKING": "smoker"}
        ) == pytest.approx(240 / 1290, abs=0.01)

    def test_distribution(self, kb):
        distribution = kb.distribution("SMOKING")
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert distribution["smoker"] == pytest.approx(1290 / 3428, abs=1e-6)


class TestKnowledge:
    def test_rules_threshold(self, kb):
        rules = kb.rules(min_probability=0.7, max_conditions=1)
        assert all(r.probability >= 0.7 for r in rules)
        assert len(rules) > 0

    def test_constrained_only_rules(self, kb):
        rules = kb.rules(constrained_only=True)
        assert len(rules) > 0

    def test_summary(self, kb):
        text = kb.summary()
        assert "N=3428" in text
        assert "significant joint probabilities" in text


class TestSerialization:
    def test_dict_round_trip(self, kb):
        clone = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
        assert clone.sample_size == kb.sample_size
        for text in [
            "CANCER=yes",
            "CANCER=yes | SMOKING=smoker",
            "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes",
        ]:
            assert clone.query(text) == pytest.approx(kb.query(text), rel=1e-9)

    def test_file_round_trip(self, kb, tmp_path):
        path = tmp_path / "kb.json"
        kb.save(path)
        loaded = ProbabilisticKnowledgeBase.load(path)
        assert loaded.query("CANCER=yes | SMOKING=smoker") == pytest.approx(
            kb.query("CANCER=yes | SMOKING=smoker"), rel=1e-9
        )

    def test_loaded_kb_keeps_discovery_trace(self, kb, tmp_path):
        """Since format 3 the audit trail survives a save/load cycle."""
        path = tmp_path / "kb.json"
        kb.save(path)
        loaded = ProbabilisticKnowledgeBase.load(path)
        assert loaded.discovery is not None
        assert loaded.discovery.constraints.cell_keys() == (
            kb.discovery.constraints.cell_keys()
        )

    def test_loaded_kb_reports_constraints(self, kb):
        """A KB without its discovery trace (e.g. a pre-format-3 file)
        still lists its significant joint probabilities (recomputed from
        factors)."""
        data = kb.to_dict()
        data.pop("discovery")
        loaded = ProbabilisticKnowledgeBase.from_dict(data)
        assert loaded.discovery is None
        original = {
            (c.attributes, c.values): c.probability for c in kb.constraints
        }
        recovered = {
            (c.attributes, c.values): c.probability
            for c in loaded.constraints
        }
        assert set(recovered) == set(original)
        for key, probability in original.items():
            assert recovered[key] == pytest.approx(probability, abs=1e-7)

    def test_malformed_dict(self):
        with pytest.raises(DataError, match="malformed"):
            ProbabilisticKnowledgeBase.from_dict({"schema": {}})


class TestIncrementalUpdate:
    def test_update_records_revision(self, kb, schema, table, rng):
        delta = Dataset.from_joint(schema, table.probabilities(), 400, rng)
        revision = kb.update(delta)
        assert revision.number == 1
        assert revision.mode in ("warm", "cold")
        assert revision.added_samples == 400
        assert kb.sample_size == table.total + 400
        assert kb.revisions[-1] is revision

    def test_update_accepts_raw_samples(self, kb, table):
        revision = kb.update([("smoker", "yes", "no")] * 5)
        assert kb.sample_size == table.total + 5
        assert revision.added_samples == 5

    def test_empty_update_is_noop(self, kb, schema, table):
        from repro.data.contingency import ContingencyTable

        fingerprint = kb.model.fingerprint()
        revision = kb.update(ContingencyTable.zeros(schema))
        assert revision.mode == "noop"
        assert kb.model.fingerprint() == fingerprint
        assert kb.sample_size == table.total

    def test_update_mutates_model_in_place(self, kb, schema, table, rng):
        model = kb.model
        fingerprint = model.fingerprint()
        delta = Dataset.from_joint(schema, table.probabilities(), 400, rng)
        kb.update(delta)
        assert kb.model is model
        assert model.fingerprint() != fingerprint
        assert kb.discovery.model is model

    def test_open_sessions_self_invalidate(self, kb):
        """An open session serves the refreshed model without a rebuild."""
        session = kb.session()
        before = session.ask("CANCER=yes | SMOKING=smoker")
        kb.update([("smoker", "yes", "no")] * 500)
        after = session.ask("CANCER=yes | SMOKING=smoker")
        assert after > before
        # And the facade's own default session too.
        assert kb.query("CANCER=yes | SMOKING=smoker") == pytest.approx(
            after
        )

    def test_ingest_resets_builder(self, kb, schema, table):
        from repro.data.streaming import TableBuilder

        builder = TableBuilder(schema)
        for _ in range(10):
            builder.add_sample(("smoker", "yes", "no"))
        revision = kb.ingest(builder)
        assert revision.added_samples == 10
        assert builder.total == 0
        assert kb.sample_size == table.total + 10

    def test_ingest_wrong_type(self, kb, table):
        with pytest.raises(DataError, match="expects a TableBuilder"):
            kb.ingest(table)

    def test_update_rejects_builder(self, kb, schema):
        """update() would re-absorb a builder in full on every call;
        ingest() is the consuming form."""
        from repro.data.streaming import TableBuilder

        builder = TableBuilder(schema)
        builder.add_sample(("smoker", "yes", "no"))
        with pytest.raises(DataError, match="ingest"):
            kb.update(builder)
        # The suggested alternatives both work.
        kb.update(builder.snapshot())
        kb.ingest(builder)

    def test_from_model_cannot_update(self, kb):
        bare = ProbabilisticKnowledgeBase.from_model(kb.model.copy(), 100)
        assert not bare.can_update
        with pytest.raises(DataError, match="cannot be updated"):
            bare.update([("smoker", "yes", "no")])
