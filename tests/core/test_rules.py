"""Tests for IF-THEN rule generation."""

import pytest

from repro.core.rules import Rule, RuleGenerator, RuleSet
from repro.discovery.engine import discover


@pytest.fixture
def model(table):
    return discover(table).model


@pytest.fixture
def generator(model):
    return RuleGenerator(model)


class TestRule:
    def test_applies_to(self):
        rule = Rule(
            conditions=(("SMOKING", "smoker"),),
            conclusion=("CANCER", "yes"),
            probability=0.19,
            support=0.38,
            lift=1.5,
        )
        assert rule.applies_to({"SMOKING": "smoker", "FAMILY_HISTORY": "no"})
        assert not rule.applies_to({"SMOKING": "non-smoker"})
        assert not rule.applies_to({})

    def test_describe_format(self):
        rule = Rule(
            conditions=(("A", "x"), ("B", "y")),
            conclusion=("C", "z"),
            probability=0.75,
            support=0.2,
            lift=2.0,
        )
        text = rule.describe()
        assert text.startswith("IF A=x AND B=y THEN C=z")
        assert "p=0.750" in text


class TestRuleSet:
    def _rules(self):
        return RuleSet(
            [
                Rule((("A", "x"),), ("C", "z"), 0.9, 0.5, 2.0),
                Rule((("B", "y"),), ("C", "z"), 0.4, 0.1, 0.8),
                Rule((("A", "x"),), ("D", "w"), 0.7, 0.5, 1.2),
            ]
        )

    def test_filter(self):
        rules = self._rules()
        assert len(rules.filter(min_probability=0.6)) == 2
        assert len(rules.filter(min_support=0.3)) == 2
        assert len(rules.filter(min_lift=1.5)) == 1

    def test_about(self):
        assert len(self._rules().about("C")) == 2

    def test_sorted_by_lift(self):
        rules = self._rules().sorted_by_lift()
        assert rules[0].lift == 2.0
        assert rules[2].lift == 0.8

    def test_matching(self):
        rules = self._rules().matching({"A": "x"})
        assert len(rules) == 2

    def test_describe_empty(self):
        assert RuleSet().describe() == "(empty rule set)"


class TestExhaustiveGeneration:
    def test_rule_probability_matches_query(self, model, generator):
        rules = generator.exhaustive(max_conditions=1)
        rule = next(
            r
            for r in rules
            if r.conditions == (("SMOKING", "smoker"),)
            and r.conclusion == ("CANCER", "yes")
        )
        expected = model.conditional(
            {"CANCER": "yes"}, {"SMOKING": "smoker"}
        )
        assert rule.probability == pytest.approx(expected)
        assert rule.support == pytest.approx(
            model.probability({"SMOKING": "smoker"})
        )

    def test_lift_definition(self, model, generator):
        rules = generator.exhaustive(max_conditions=1)
        rule = next(
            r
            for r in rules
            if r.conditions == (("FAMILY_HISTORY", "yes"),)
            and r.conclusion == ("CANCER", "yes")
        )
        prior = model.probability({"CANCER": "yes"})
        assert rule.lift == pytest.approx(rule.probability / prior)

    def test_smoking_rule_has_positive_lift(self, generator):
        """The paper's motivating association becomes a lifted rule."""
        rules = generator.exhaustive(max_conditions=1)
        rule = next(
            r
            for r in rules
            if r.conditions == (("SMOKING", "smoker"),)
            and r.conclusion == ("CANCER", "yes")
        )
        assert rule.lift > 1.3

    def test_condition_count_bound(self, generator):
        rules = generator.exhaustive(max_conditions=2)
        assert max(len(r.conditions) for r in rules) == 2
        rules = generator.exhaustive(max_conditions=1)
        assert max(len(r.conditions) for r in rules) == 1

    def test_thresholds_applied(self, generator):
        rules = generator.exhaustive(max_conditions=1, min_probability=0.8)
        assert all(r.probability >= 0.8 for r in rules)

    def test_value_distribution_complete(self, generator):
        """For each condition, rules for all conclusion values exist and
        their probabilities sum to 1."""
        rules = generator.exhaustive(max_conditions=1)
        cancer_given_smoker = [
            r
            for r in rules
            if r.conditions == (("SMOKING", "smoker"),)
            and r.conclusion[0] == "CANCER"
        ]
        assert len(cancer_given_smoker) == 2
        assert sum(r.probability for r in cancer_given_smoker) == pytest.approx(
            1.0
        )


class TestConstraintGeneration:
    def test_rules_come_from_adopted_cells(self, model, generator):
        rules = generator.from_constraints()
        assert len(rules) > 0
        # Every rule's attributes appear together in some adopted cell.
        cell_subsets = [set(names) for names, _values in model.cell_factors]
        for rule in rules:
            involved = {name for name, _ in rule.conditions} | {
                rule.conclusion[0]
            }
            assert any(involved == subset for subset in cell_subsets)

    def test_probabilities_match_queries(self, model, generator):
        for rule in generator.from_constraints():
            expected = model.conditional(
                dict([rule.conclusion]), rule.condition_dict()
            )
            assert rule.probability == pytest.approx(expected)

    def test_no_duplicates(self, generator):
        rules = generator.from_constraints()
        keys = [(r.conditions, r.conclusion[0]) for r in rules]
        assert len(keys) == len(set(keys))
