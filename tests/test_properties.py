"""Property-based tests (hypothesis) on the core invariants.

These exercise the pipeline on arbitrary generated schemas, tables and
constraint sets, checking the paper's structural guarantees:

- marginals are consistent under summation (Eqs 1-6);
- IPF fits satisfy every constraint and stay normalized;
- the maxent fit's entropy dominates the empirical distribution's;
- conditionals are ratios of joints (the paper's central identity);
- dense and factored (Appendix-B) evaluation agree;
- Appendix-A conversions round-trip.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.contingency import ContingencyTable
from repro.data.conversion import (
    dataset_to_indicator_matrix,
    dataset_to_tuple_matrix,
    indicator_matrix_to_dataset,
    tuple_matrix_to_contingency,
    tuple_matrix_to_dataset,
)
from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema
from repro.maxent import elimination
from repro.maxent.constraints import ConstraintSet
from repro.maxent.entropy import entropy
from repro.maxent.ipf import fit_ipf

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def schemas(draw, max_attributes=3, max_values=3):
    """Random small schemas."""
    count = draw(st.integers(2, max_attributes))
    attributes = []
    for index in range(count):
        cardinality = draw(st.integers(2, max_values))
        name = f"ATTR{index}"
        attributes.append(
            Attribute(name, tuple(f"v{v}" for v in range(cardinality)))
        )
    return Schema(attributes)


@st.composite
def tables(draw, min_total=30):
    """Random contingency tables with every cell occupied at least once
    (so all first-order margins are positive)."""
    schema = draw(schemas())
    cells = schema.num_cells
    counts = draw(
        st.lists(st.integers(1, 60), min_size=cells, max_size=cells)
    )
    array = np.array(counts, dtype=np.int64).reshape(schema.shape)
    return ContingencyTable(schema, array)


@st.composite
def tables_with_cell(draw):
    """A table plus one random order-2 cell to constrain."""
    table = draw(tables())
    names = table.schema.names
    i, j = draw(
        st.tuples(
            st.integers(0, len(names) - 1), st.integers(0, len(names) - 1)
        ).filter(lambda t: t[0] < t[1])
    )
    subset = (names[i], names[j])
    values = tuple(
        draw(st.integers(0, table.schema.attribute(n).cardinality - 1))
        for n in subset
    )
    return table, subset, values


class TestMarginalConsistency:
    @SETTINGS
    @given(tables())
    def test_marginals_sum_to_total(self, table):
        for name in table.schema.names:
            assert table.marginal([name]).sum() == table.total

    @SETTINGS
    @given(tables())
    def test_pair_marginal_collapses_to_singles(self, table):
        names = table.schema.names
        pair = table.marginal([names[0], names[1]])
        assert np.array_equal(pair.sum(axis=1), table.marginal([names[0]]))
        assert np.array_equal(pair.sum(axis=0), table.marginal([names[1]]))

    @SETTINGS
    @given(tables())
    def test_cells_of_order_cover_marginals(self, table):
        for subset, values, count in table.cells_of_order(2):
            assert count == table.marginal(subset)[values]


class TestFitInvariants:
    @SETTINGS
    @given(tables_with_cell())
    def test_ipf_satisfies_constraints(self, case):
        table, subset, values = case
        constraints = ConstraintSet.first_order(table)
        constraints.add_cell(
            constraints.cell_from_table(table, list(subset), list(values))
        )
        fit = fit_ipf(constraints, max_sweeps=3000, tol=1e-9)
        model = fit.model
        joint = model.joint()
        assert joint.sum() == pytest.approx(1.0)
        assert (joint >= -1e-12).all()
        for name in table.schema.names:
            assert np.allclose(
                model.marginal([name]),
                constraints.margin(name),
                atol=1e-7,
            )
        marginal = model.marginal(list(subset))
        assert marginal[values] == pytest.approx(
            table.marginal(subset)[values] / table.total, abs=1e-7
        )

    @SETTINGS
    @given(tables_with_cell())
    def test_maxent_entropy_dominates_empirical(self, case):
        table, subset, values = case
        constraints = ConstraintSet.first_order(table)
        constraints.add_cell(
            constraints.cell_from_table(table, list(subset), list(values))
        )
        fit = fit_ipf(constraints, max_sweeps=3000, tol=1e-9)
        assert entropy(fit.model.joint()) >= entropy(
            table.probabilities()
        ) - 1e-6

    @SETTINGS
    @given(tables_with_cell())
    def test_conditional_is_ratio_of_joints(self, case):
        table, subset, values = case
        constraints = ConstraintSet.first_order(table)
        constraints.add_cell(
            constraints.cell_from_table(table, list(subset), list(values))
        )
        model = fit_ipf(constraints, max_sweeps=3000, tol=1e-9).model
        first, second = subset
        target = {first: values[0]}
        given = {second: values[1]}
        if model.probability(given) <= 0:
            return
        assert model.conditional(target, given) * model.probability(
            given
        ) == pytest.approx(model.probability({**target, **given}), abs=1e-9)

    @SETTINGS
    @given(tables_with_cell())
    def test_elimination_agrees_with_dense(self, case):
        table, subset, values = case
        constraints = ConstraintSet.first_order(table)
        constraints.add_cell(
            constraints.cell_from_table(table, list(subset), list(values))
        )
        model = fit_ipf(constraints, max_sweeps=3000, tol=1e-9).model
        dense = float(model.unnormalized().sum())
        factored = elimination.partition_sum(model)
        assert factored == pytest.approx(dense, rel=1e-9)
        first, second = subset
        target = {first: values[0]}
        given = {second: values[1]}
        if model.probability(given) > 0:
            assert elimination.query(model, target, given) == pytest.approx(
                model.conditional(target, given), rel=1e-8
            )


class TestConversionRoundTrips:
    @SETTINGS
    @given(tables(), st.integers(1, 50), st.integers(0, 2**31 - 1))
    def test_appendix_a_round_trips(self, table, n, seed):
        rng = np.random.default_rng(seed)
        dataset = Dataset.from_joint(
            table.schema, table.probabilities(), n, rng
        )
        indicator = dataset_to_indicator_matrix(dataset)
        recovered = indicator_matrix_to_dataset(table.schema, indicator)
        assert np.array_equal(recovered.rows, dataset.rows)

        tuples = dataset_to_tuple_matrix(dataset)
        recovered = tuple_matrix_to_dataset(table.schema, tuples)
        assert np.array_equal(recovered.rows, dataset.rows)
        assert tuple_matrix_to_contingency(
            table.schema, tuples
        ) == dataset.to_contingency()

    @SETTINGS
    @given(tables())
    def test_table_json_round_trip(self, table):
        from repro.data.io import table_from_dict, table_to_dict

        assert table_from_dict(table_to_dict(table)) == table


class TestDiscoveryInvariants:
    @SETTINGS
    @given(tables())
    def test_discovery_terminates_and_model_valid(self, table):
        """Discovery on arbitrary tables terminates with a valid model
        satisfying all adopted constraints."""
        from repro.discovery.config import DiscoveryConfig
        from repro.discovery.engine import discover

        result = discover(
            table, DiscoveryConfig(max_order=2, tol=1e-8, max_sweeps=3000)
        )
        joint = result.model.joint()
        assert joint.sum() == pytest.approx(1.0)
        assert (joint >= -1e-12).all()
        for cell in result.found:
            marginal = result.model.marginal(list(cell.attributes))
            assert marginal[cell.values] == pytest.approx(
                cell.probability, abs=1e-6
            )


@st.composite
def streaming_cases(draw):
    """A planted population plus a base window and a delta batch.

    This is the regime the incremental lifecycle targets: batches drawn
    from one population with identifiable structure.  (On arbitrary
    tables whose cells sit exactly at the significance threshold, the
    greedy argmax can flip between equally defensible constraint sets —
    inherent to the paper's procedure, warm or cold.)
    """
    from repro.synth.generators import PlantedCell, build_planted_population

    num_attributes = draw(st.integers(3, 4))
    cardinalities = [
        draw(st.integers(2, 3)) for _ in range(num_attributes)
    ]
    attributes = [
        Attribute(f"A{i}", tuple(f"v{v}" for v in range(c)))
        for i, c in enumerate(cardinalities)
    ]
    schema = Schema(attributes)
    margins = {}
    for attribute in attributes:
        weights = np.array(
            [
                draw(st.floats(0.5, 1.5, allow_nan=False))
                for _ in range(attribute.cardinality)
            ]
        )
        margins[attribute.name] = weights / weights.sum()
    first, second = sorted(
        draw(
            st.tuples(
                st.integers(0, num_attributes - 1),
                st.integers(0, num_attributes - 1),
            ).filter(lambda pair: pair[0] != pair[1])
        )
    )
    planted = PlantedCell(
        (attributes[first].name, attributes[second].name),
        (
            draw(st.integers(0, cardinalities[first] - 1)),
            draw(st.integers(0, cardinalities[second] - 1)),
        ),
        draw(st.floats(2.0, 3.0, allow_nan=False)),
    )
    population = build_planted_population(schema, margins, [planted])
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    base_n = draw(st.integers(3000, 6000))
    delta_n = base_n // draw(st.integers(5, 15))
    base = population.sample_table(base_n, rng)
    delta = population.sample_table(delta_n, rng)
    return base, delta


class TestIncrementalEquivalence:
    """fit(A); update(B) must equal fit(A+B) — the tentpole's contract."""

    # Derandomized: warm-vs-cold equality is exact for these streaming
    # cases, but near-threshold greedy ties are data-dependent, so the
    # example set is pinned for reproducibility.
    @settings(
        max_examples=15,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(streaming_cases())
    def test_update_equals_cold_refit(self, case):
        from repro.discovery.config import DiscoveryConfig
        from repro.discovery.engine import discover
        from repro.estimators import DiscoveryEstimator

        base, delta = case
        config = DiscoveryConfig(max_order=2, tol=1e-9, max_sweeps=3000)
        estimator = DiscoveryEstimator(config).fit(base)
        estimator.update(delta)
        cold = discover(base + delta, config)
        # Identical adopted constraints...
        assert estimator.result.constraints.cell_keys() == (
            cold.constraints.cell_keys()
        )
        # ...identical constraint targets (both read off the merged table)...
        warm_cells = {c.key: c.probability for c in estimator.result.found}
        cold_cells = {c.key: c.probability for c in cold.found}
        for key, probability in cold_cells.items():
            assert warm_cells[key] == pytest.approx(probability, abs=1e-12)
        # ...and marginals within solver tolerance.
        np.testing.assert_allclose(
            estimator.model.joint(), cold.model.joint(), atol=1e-6
        )
        for name in base.schema.names:
            np.testing.assert_allclose(
                estimator.model.marginal([name]),
                cold.model.marginal([name]),
                atol=1e-7,
            )

    @settings(
        max_examples=10,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(streaming_cases())
    def test_split_stream_equals_single_batch(self, case):
        """Absorbing the delta in two windows also matches one cold fit."""
        from repro.discovery.config import DiscoveryConfig
        from repro.discovery.engine import discover
        from repro.estimators import DiscoveryEstimator

        base, delta = case
        half = delta.counts // 2
        first = ContingencyTable(delta.schema, half)
        second = ContingencyTable(delta.schema, delta.counts - half)
        config = DiscoveryConfig(max_order=2, tol=1e-9, max_sweeps=3000)
        estimator = DiscoveryEstimator(config).fit(base)
        if first.total:
            estimator.update(first)
        if second.total:
            estimator.update(second)
        cold = discover(base + delta, config)
        assert estimator.result.constraints.cell_keys() == (
            cold.constraints.cell_keys()
        )
        np.testing.assert_allclose(
            estimator.model.joint(), cold.model.joint(), atol=1e-6
        )
