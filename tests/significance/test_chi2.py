"""Tests for the classical chi-square / z-test baselines."""

import pytest

from repro.baselines.empirical import empirical_model
from repro.baselines.independence import independence_model
from repro.significance.chi2 import (
    cell_z_test,
    marginal_chi2,
    marginal_g2,
)


class TestCellZTest:
    def test_paper_cell_is_extreme(self, table):
        model = independence_model(table)
        p = model.probability({"SMOKING": "smoker", "CANCER": "yes"})
        z, p_value = cell_z_test(240, table.total, p)
        assert z > 5.0
        assert p_value < 1e-8

    def test_expected_cell_not_significant(self, table):
        model = independence_model(table)
        p = model.probability({"SMOKING": "non-smoker", "CANCER": "no"})
        _z, p_value = cell_z_test(
            table.count({"SMOKING": "non-smoker", "CANCER": "no"}),
            table.total,
            p,
        )
        assert p_value > 0.01

    def test_two_sided(self, table):
        z_low, p_low = cell_z_test(100, 1000, 0.2)
        z_high, p_high = cell_z_test(300, 1000, 0.2)
        assert z_low < 0 < z_high
        assert p_low < 0.05 and p_high < 0.05

    def test_degenerate_sd(self):
        z, p_value = cell_z_test(5, 100, 0.0)
        assert z == float("inf")
        assert p_value == 0.0


class TestMarginalTests:
    def test_independence_rejected_on_paper_data(self, table):
        model = independence_model(table)
        stat, dof, p_value = marginal_chi2(
            table, model, ("SMOKING", "CANCER")
        )
        assert dof == 5
        assert stat > 30
        assert p_value < 1e-4

    def test_saturated_model_fits_perfectly(self, table):
        model = empirical_model(table)
        stat, _dof, p_value = marginal_chi2(
            table, model, ("SMOKING", "CANCER")
        )
        assert stat == pytest.approx(0.0, abs=1e-6)
        assert p_value == pytest.approx(1.0)

    def test_g2_close_to_chi2(self, table):
        """For these sample sizes the two statistics agree to ~10%."""
        model = independence_model(table)
        chi2_stat, _dof, _p = marginal_chi2(table, model, ("SMOKING", "CANCER"))
        g2_stat, _dof, _p = marginal_g2(table, model, ("SMOKING", "CANCER"))
        assert g2_stat == pytest.approx(chi2_stat, rel=0.15)

    def test_infinite_when_model_excludes_observation(self, table):
        import numpy as np

        from repro.maxent.model import MaxEntModel

        margins = {
            "SMOKING": np.array([1.0, 0.0, 0.0]),
            "CANCER": np.array([0.5, 0.5]),
            "FAMILY_HISTORY": np.array([0.5, 0.5]),
        }
        model = MaxEntModel.independent(table.schema, margins)
        stat, _dof, p_value = marginal_chi2(table, model, ("SMOKING",))
        assert stat == float("inf")
        assert p_value == 0.0
