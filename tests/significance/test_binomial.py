"""Tests for the binomial statistics (Eqs 32-34)."""

import math

import pytest
from scipy import stats

from repro.exceptions import DataError
from repro.significance.binomial import (
    binomial_mean,
    binomial_sd,
    log_binomial_coefficient,
    log_binomial_pmf,
    standard_score,
)


class TestCoefficient:
    def test_small_values_exact(self):
        assert log_binomial_coefficient(5, 2) == pytest.approx(math.log(10))
        assert log_binomial_coefficient(10, 0) == pytest.approx(0.0)
        assert log_binomial_coefficient(10, 10) == pytest.approx(0.0)

    def test_symmetry(self):
        assert log_binomial_coefficient(100, 30) == pytest.approx(
            log_binomial_coefficient(100, 70)
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(DataError):
            log_binomial_coefficient(5, 6)
        with pytest.raises(DataError):
            log_binomial_coefficient(5, -1)


class TestLogPMF:
    @pytest.mark.parametrize(
        "k,n,p",
        [(0, 10, 0.3), (3, 10, 0.3), (10, 10, 0.3), (240, 3428, 0.0475)],
    )
    def test_matches_scipy(self, k, n, p):
        assert log_binomial_pmf(k, n, p) == pytest.approx(
            float(stats.binom.logpmf(k, n, p)), rel=1e-10
        )

    def test_sums_to_one(self):
        n, p = 20, 0.37
        total = sum(math.exp(log_binomial_pmf(k, n, p)) for k in range(n + 1))
        assert total == pytest.approx(1.0)

    def test_degenerate_p_zero(self):
        assert log_binomial_pmf(0, 10, 0.0) == 0.0
        assert log_binomial_pmf(1, 10, 0.0) == float("-inf")

    def test_degenerate_p_one(self):
        assert log_binomial_pmf(10, 10, 1.0) == 0.0
        assert log_binomial_pmf(9, 10, 1.0) == float("-inf")

    def test_rejects_bad_inputs(self):
        with pytest.raises(DataError):
            log_binomial_pmf(5, 3, 0.5)
        with pytest.raises(DataError):
            log_binomial_pmf(1, 3, 1.5)
        with pytest.raises(DataError):
            log_binomial_pmf(1, -1, 0.5)

    def test_deep_tail_stability(self):
        """The MML test evaluates 6-sigma tails; lgamma keeps them finite."""
        value = log_binomial_pmf(240, 3428, 0.0475)
        assert math.isfinite(value)
        assert value < -20  # deep in the tail


class TestMoments:
    def test_mean(self):
        assert binomial_mean(3428, 0.0475) == pytest.approx(162.8, abs=0.1)

    def test_sd(self):
        assert binomial_sd(3428, 0.0475) == pytest.approx(12.45, abs=0.02)

    def test_sd_degenerate(self):
        assert binomial_sd(100, 0.0) == 0.0
        assert binomial_sd(100, 1.0) == 0.0

    def test_standard_score_paper_value(self):
        """Table 1 row AB11: ~6 sd above the mean."""
        z = standard_score(240, 3428, 0.0475)
        assert z == pytest.approx(6.2, abs=0.2)

    def test_standard_score_zero_sd(self):
        assert standard_score(0, 100, 0.0) == 0.0
        assert standard_score(5, 100, 0.0) == float("inf")
