"""Tests for the binomial statistics (Eqs 32-34)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.exceptions import DataError
from repro.significance.binomial import (
    binomial_mean,
    binomial_sd,
    log_binomial_coefficient,
    log_binomial_coefficients,
    log_binomial_pmf,
    log_binomial_pmf_array,
    standard_score,
)


class TestCoefficient:
    def test_small_values_exact(self):
        assert log_binomial_coefficient(5, 2) == pytest.approx(math.log(10))
        assert log_binomial_coefficient(10, 0) == pytest.approx(0.0)
        assert log_binomial_coefficient(10, 10) == pytest.approx(0.0)

    def test_symmetry(self):
        assert log_binomial_coefficient(100, 30) == pytest.approx(
            log_binomial_coefficient(100, 70)
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(DataError):
            log_binomial_coefficient(5, 6)
        with pytest.raises(DataError):
            log_binomial_coefficient(5, -1)


class TestLogPMF:
    @pytest.mark.parametrize(
        "k,n,p",
        [(0, 10, 0.3), (3, 10, 0.3), (10, 10, 0.3), (240, 3428, 0.0475)],
    )
    def test_matches_scipy(self, k, n, p):
        assert log_binomial_pmf(k, n, p) == pytest.approx(
            float(stats.binom.logpmf(k, n, p)), rel=1e-10
        )

    def test_sums_to_one(self):
        n, p = 20, 0.37
        total = sum(math.exp(log_binomial_pmf(k, n, p)) for k in range(n + 1))
        assert total == pytest.approx(1.0)

    def test_degenerate_p_zero(self):
        assert log_binomial_pmf(0, 10, 0.0) == 0.0
        assert log_binomial_pmf(1, 10, 0.0) == float("-inf")

    def test_degenerate_p_one(self):
        assert log_binomial_pmf(10, 10, 1.0) == 0.0
        assert log_binomial_pmf(9, 10, 1.0) == float("-inf")

    def test_rejects_bad_inputs(self):
        with pytest.raises(DataError):
            log_binomial_pmf(5, 3, 0.5)
        with pytest.raises(DataError):
            log_binomial_pmf(1, 3, 1.5)
        with pytest.raises(DataError):
            log_binomial_pmf(1, -1, 0.5)

    def test_deep_tail_stability(self):
        """The MML test evaluates 6-sigma tails; lgamma keeps them finite."""
        value = log_binomial_pmf(240, 3428, 0.0475)
        assert math.isfinite(value)
        assert value < -20  # deep in the tail


class TestCoefficientArray:
    def test_bit_identical_to_scalar(self):
        n = 3428
        k = np.array([0, 1, 240, 1000, 3428])
        expected = [log_binomial_coefficient(n, v) for v in k.tolist()]
        assert log_binomial_coefficients(n, k).tolist() == expected

    def test_preserves_shape(self):
        result = log_binomial_coefficients(10, np.arange(6).reshape(2, 3))
        assert result.shape == (2, 3)

    def test_empty(self):
        assert log_binomial_coefficients(10, np.array([], dtype=int)).size == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(DataError):
            log_binomial_coefficients(5, np.array([2, 6]))
        with pytest.raises(DataError):
            log_binomial_coefficients(5, np.array([-1, 2]))


class TestLogPMFArray:
    def test_bit_identical_to_scalar(self):
        n = 3428
        k = np.array([0, 240, 1000, 3428])
        p = np.array([0.0475, 0.0475, 0.29, 0.999])
        expected = [
            log_binomial_pmf(int(ki), n, float(pi)) for ki, pi in zip(k, p)
        ]
        assert log_binomial_pmf_array(k, n, p).tolist() == expected

    def test_p_zero_edge_regression(self):
        """p = 0 entries take the exact degenerate limit.  An unguarded
        vectorization computes ``0 * log(0) = nan`` at k = 0 (and an
        unguarded scalar raises a math-domain error); both forms must
        instead return the exact 0-probability limits."""
        k = np.array([0, 3])
        p = np.array([0.0, 0.0])
        result = log_binomial_pmf_array(k, 10, p)
        assert result[0] == 0.0
        assert result[1] == float("-inf")
        assert not np.isnan(result).any()
        # Scalar agreement, element by element.
        assert log_binomial_pmf(0, 10, 0.0) == result[0]
        assert log_binomial_pmf(3, 10, 0.0) == result[1]

    def test_p_one_edge_regression(self):
        k = np.array([10, 9])
        p = np.array([1.0, 1.0])
        result = log_binomial_pmf_array(k, 10, p)
        assert result[0] == 0.0
        assert result[1] == float("-inf")
        assert log_binomial_pmf(10, 10, 1.0) == result[0]
        assert log_binomial_pmf(9, 10, 1.0) == result[1]

    def test_mixed_edges_and_interior(self):
        k = np.array([0, 5, 10, 0])
        p = np.array([0.0, 0.4, 1.0, 0.4])
        result = log_binomial_pmf_array(k, 10, p)
        expected = [
            log_binomial_pmf(int(ki), 10, float(pi)) for ki, pi in zip(k, p)
        ]
        assert result.tolist() == expected

    def test_p_near_edges_stays_finite(self):
        """Probabilities one ulp from the edges stay in the interior
        branch and must not domain-error."""
        tiny = float(np.nextafter(0.0, 1.0))
        almost_one = float(np.nextafter(1.0, 0.0))
        k = np.array([1, 9])
        p = np.array([tiny, almost_one])
        result = log_binomial_pmf_array(k, 10, p)
        assert np.isfinite(result).all()
        expected = [
            log_binomial_pmf(int(ki), 10, float(pi)) for ki, pi in zip(k, p)
        ]
        assert result.tolist() == expected

    def test_precomputed_coefficients_used(self):
        k = np.array([2, 7])
        p = np.array([0.3, 0.6])
        coeff = log_binomial_coefficients(12, k)
        assert log_binomial_pmf_array(
            k, 12, p, log_coefficients=coeff
        ).tolist() == log_binomial_pmf_array(k, 12, p).tolist()

    def test_rejects_bad_inputs(self):
        with pytest.raises(DataError):
            log_binomial_pmf_array(np.array([1]), -1, np.array([0.5]))
        with pytest.raises(DataError):
            log_binomial_pmf_array(np.array([1]), 3, np.array([1.5]))
        with pytest.raises(DataError):
            log_binomial_pmf_array(np.array([1, 2]), 3, np.array([0.5]))

    def test_rejects_out_of_range_k_with_precomputed_coefficients(self):
        """The k-range check must not be bypassed when the coefficient
        array is supplied (the scalar form always raises)."""
        with pytest.raises(DataError):
            log_binomial_pmf_array(
                np.array([5]), 3, np.array([0.5]),
                log_coefficients=np.zeros(1),
            )


class TestMoments:
    def test_mean(self):
        assert binomial_mean(3428, 0.0475) == pytest.approx(162.8, abs=0.1)

    def test_sd(self):
        assert binomial_sd(3428, 0.0475) == pytest.approx(12.45, abs=0.02)

    def test_sd_degenerate(self):
        assert binomial_sd(100, 0.0) == 0.0
        assert binomial_sd(100, 1.0) == 0.0

    def test_standard_score_paper_value(self):
        """Table 1 row AB11: ~6 sd above the mean."""
        z = standard_score(240, 3428, 0.0475)
        assert z == pytest.approx(6.2, abs=0.2)

    def test_standard_score_zero_sd(self):
        assert standard_score(0, 100, 0.0) == 0.0
        assert standard_score(5, 100, 0.0) == float("inf")
