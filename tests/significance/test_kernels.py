"""The vectorized scan kernels against the scalar reference oracle.

The contract under test is *bit-identity*: on any table, constraint set
and model, :class:`~repro.significance.kernels.OrderScanKernel` must
reproduce :func:`~repro.significance.mml.reference_scan_order` exactly —
every float of every :class:`~repro.significance.result.CellTest` (m1,
m2, mean, sd, num_sd, predicted), the integer ranges, the determined
flags, the cell order, and therefore the greedy argmax — across
adoptions with selective cache invalidation, and end to end through the
discovery engine.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.contingency import ContingencyTable
from repro.data.schema import Attribute, Schema
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.exceptions import ConstraintError, DataError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.ipf import fit_ipf
from repro.maxent.model import MaxEntModel
from repro.significance.kernels import DiscoveryProfile, OrderScanKernel
from repro.significance.mml import (
    most_significant,
    reference_scan_order,
    scan_order,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def scan_worlds(draw, max_attributes=4, max_values=3):
    """A random (table, constraints, model) triple ready to scan.

    Some adopted constraints and occasionally a fitted (rather than
    independence) model, so feasible ranges, determined flags and cell
    factors all get exercised.
    """
    count = draw(st.integers(2, max_attributes))
    attributes = []
    for index in range(count):
        cardinality = draw(st.integers(2, max_values))
        attributes.append(
            Attribute(f"ATTR{index}", tuple(f"v{v}" for v in range(cardinality)))
        )
    schema = Schema(attributes)
    cells = schema.num_cells
    counts = draw(
        st.lists(st.integers(1, 12), min_size=cells, max_size=cells)
    )
    table = ContingencyTable(
        schema, np.array(counts, dtype=np.int64).reshape(schema.shape)
    )
    constraints = ConstraintSet.first_order(table)

    # Adopt a few random cells (skipping inconsistent ones) the way the
    # greedy loop would have.
    num_adopted = draw(st.integers(0, 4))
    for _ in range(num_adopted):
        order = draw(st.integers(2, count))
        subsets = table.subsets_of_order(order)
        subset = subsets[draw(st.integers(0, len(subsets) - 1))]
        values = tuple(
            draw(st.integers(0, schema.attribute(name).cardinality - 1))
            for name in subset
        )
        candidate = constraints.cell_from_table(table, subset, values)
        if candidate.probability >= 0.99:
            continue
        try:
            constraints.add_cell(candidate)
        except ConstraintError:
            continue

    model = MaxEntModel.independent(
        schema,
        {name: table.first_order_probabilities(name) for name in schema.names},
    )
    if draw(st.booleans()):
        try:
            model = fit_ipf(
                constraints,
                initial=model,
                max_sweeps=40,
                require_convergence=False,
            ).model
        except ConstraintError:
            pass
    return table, constraints, model


class TestKernelMatchesReference:
    @SETTINGS
    @given(world=scan_worlds())
    def test_whole_order_scan_is_bit_identical(self, world):
        table, constraints, model = world
        for order in range(2, len(table.schema) + 1):
            reference = reference_scan_order(table, model, order, constraints)
            vectorized = OrderScanKernel(table, order, constraints).scan(model)
            assert vectorized == reference
            best_ref = most_significant(reference)
            best_vec = most_significant(vectorized)
            if best_ref is None:
                assert best_vec is None
            else:
                # Same argmax cell, not merely an equal-delta tie-mate.
                assert best_vec is vectorized[reference.index(best_ref)]

    @SETTINGS
    @given(world=scan_worlds(max_attributes=3))
    def test_greedy_adoption_loop_with_selective_invalidation(self, world):
        """Scan-adopt-rescan on one kernel matches a fresh reference scan
        every round — the data-side caches invalidate correctly."""
        table, constraints, model = world
        order = 2
        kernel = OrderScanKernel(table, order, constraints)
        for _round in range(4):
            reference = reference_scan_order(table, model, order, constraints)
            vectorized = kernel.scan(model)
            assert vectorized == reference
            best = most_significant(vectorized)
            if best is None:
                break
            constraint = constraints.cell_from_table(
                table, best.attributes, best.values
            )
            try:
                constraints.add_cell(constraint)
            except ConstraintError:
                break
            kernel.notify_adopted(constraint.key)

    def test_scan_order_facade_is_kernel_backed(self, table):
        from repro.baselines.independence import independence_model

        model = independence_model(table)
        constraints = ConstraintSet.first_order(table)
        assert scan_order(table, model, 2, constraints) == (
            reference_scan_order(table, model, 2, constraints)
        )

    def test_zero_mass_model_cell_exact_limits(self, table, schema):
        """A model assigning a candidate cell zero probability produces
        the exact degenerate limits (m1 = +inf, delta = -inf), not a
        math-domain error — in both scan paths, identically."""
        margins = {
            name: table.first_order_probabilities(name)
            for name in schema.names
        }
        margins["CANCER"] = np.array([0.0, 1.0])
        model = MaxEntModel.independent(schema, margins)
        constraints = ConstraintSet.first_order(table)
        reference = reference_scan_order(table, model, 2, constraints)
        vectorized = scan_order(table, model, 2, constraints)
        assert vectorized == reference
        zero_mass = [
            t for t in vectorized
            if "CANCER" in t.attributes
            and t.predicted_probability == 0.0
            and t.observed > 0
        ]
        assert zero_mass
        for test in zero_mass:
            assert test.m1 == float("inf")
            assert test.delta == float("-inf")
            assert test.significant


class TestKernelCaching:
    def test_notify_adopted_drops_only_sharing_subsets(self, table):
        constraints = ConstraintSet.first_order(table)
        kernel = OrderScanKernel(table, 2, constraints)
        from repro.baselines.independence import independence_model

        kernel.scan(independence_model(table))
        assert set(kernel._stats) == set(table.subsets_of_order(2))
        constraint = constraints.cell_from_table(
            table, ["SMOKING", "CANCER"], [0, 0]
        )
        constraints.add_cell(constraint)
        kernel.notify_adopted(constraint.key)
        assert ("SMOKING", "CANCER") not in kernel._stats
        assert ("SMOKING", "FAMILY_HISTORY") in kernel._stats
        assert ("CANCER", "FAMILY_HISTORY") in kernel._stats

    def test_lower_order_adoption_drops_containing_subsets(self, table):
        constraints = ConstraintSet.first_order(table)
        kernel = OrderScanKernel(table, 3, constraints)
        from repro.baselines.independence import independence_model

        kernel.scan(independence_model(table))
        assert set(kernel._stats) == {
            ("SMOKING", "CANCER", "FAMILY_HISTORY")
        }
        constraint = constraints.cell_from_table(
            table, ["SMOKING", "CANCER"], [0, 0]
        )
        constraints.add_cell(constraint)
        kernel.notify_adopted(constraint.key)
        assert not kernel._stats

    def test_higher_order_adoption_is_ignored(self, table):
        constraints = ConstraintSet.first_order(table)
        kernel = OrderScanKernel(table, 2, constraints)
        from repro.baselines.independence import independence_model

        kernel.scan(independence_model(table))
        before = dict(kernel._stats)
        kernel.notify_adopted(
            (("SMOKING", "CANCER", "FAMILY_HISTORY"), (0, 0, 0))
        )
        assert kernel._stats == before

    def test_instrumentation_counters(self, table):
        from repro.baselines.independence import independence_model

        constraints = ConstraintSet.first_order(table)
        kernel = OrderScanKernel(table, 2, constraints)
        model = independence_model(table)
        kernel.scan(model)
        kernel.scan(model)
        assert kernel.scan_calls == 2
        assert kernel.cells_evaluated == 32
        assert kernel.total_scan_seconds >= kernel.last_scan_seconds >= 0.0


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_kernel_and_reference_engines_agree_exactly(self, seed):
        from repro.synth.surveys import medical_survey_population

        rng = np.random.default_rng(seed)
        table = medical_survey_population().sample_table(1500, rng)
        config = DiscoveryConfig(max_order=3)
        kernel_run = DiscoveryEngine(config).run(table)
        reference_run = DiscoveryEngine(
            config, scan_backend="reference"
        ).run(table)

        assert [c.key for c in kernel_run.found] == [
            c.key for c in reference_run.found
        ]
        assert [c.probability for c in kernel_run.found] == [
            c.probability for c in reference_run.found
        ]
        assert len(kernel_run.scans) == len(reference_run.scans)
        for ours, theirs in zip(kernel_run.scans, reference_run.scans):
            assert ours.order == theirs.order
            assert ours.tests == theirs.tests
            assert ours.chosen == theirs.chosen
        assert np.array_equal(
            kernel_run.model.joint(), reference_run.model.joint()
        )

    def test_unknown_scan_backend_rejected(self):
        with pytest.raises(DataError, match="scan backend"):
            DiscoveryEngine(scan_backend="simd")

    def test_engine_records_profile(self, table):
        result = DiscoveryEngine(DiscoveryConfig(max_order=2)).run(table)
        profile = result.profile
        assert isinstance(profile, DiscoveryProfile)
        assert profile.scan_calls > 0
        assert profile.fit_calls > 0
        assert profile.verify_calls > 0  # each order ends with one
        assert profile.total_seconds > 0.0
        assert len(profile.rows()) == 3


class TestScanOrderErrors:
    def test_invalid_order_raises(self, table):
        from repro.baselines.independence import independence_model

        constraints = ConstraintSet.first_order(table)
        with pytest.raises(DataError):
            scan_order(
                table, independence_model(table), 9, constraints
            )
