"""Tests for the MML significance test (Eqs 35-47) against Table 1."""

import math

import pytest

from repro.baselines.independence import independence_model
from repro.eval.paper import PAPER_TABLE1
from repro.exceptions import DataError
from repro.maxent.constraints import ConstraintSet
from repro.significance.mml import (
    MMLPriors,
    evaluate_cell,
    feasible_range,
    most_significant,
    scan_order,
)


@pytest.fixture
def constraints(table):
    return ConstraintSet.first_order(table)


@pytest.fixture
def model(table):
    return independence_model(table)


@pytest.fixture
def scan(table, model, constraints):
    return scan_order(table, model, 2, constraints)


class TestPriors:
    def test_default_cancels(self):
        assert MMLPriors.equal().prior_shift == pytest.approx(0.0)

    def test_paper_prior_shifts(self):
        """Paper: p(H2')=.6 shifts (m2-m1) by -.40; .8 shifts by -1.39."""
        shift_06 = MMLPriors(p_h1=0.4, p_h2_prime=0.6).prior_shift
        assert shift_06 == pytest.approx(-0.405, abs=0.01)
        shift_08 = MMLPriors(p_h1=0.2, p_h2_prime=0.8).prior_shift
        assert shift_08 == pytest.approx(-1.386, abs=0.01)

    def test_rejects_degenerate(self):
        with pytest.raises(DataError):
            MMLPriors(p_h1=0.0)
        with pytest.raises(DataError):
            MMLPriors(p_h2_prime=1.0)


class TestFeasibleRange:
    def test_second_order_min_of_margins(self, table, constraints):
        """Cell (SMOKING=1, CANCER=1): range = min(N^A_1, N^B_1) = 433."""
        cell_range, determined = feasible_range(
            table, ("SMOKING", "CANCER"), (0, 0), constraints
        )
        assert cell_range == 433
        assert not determined

    def test_second_order_other_margin_binding(self, table, constraints):
        """Cell (SMOKING=1, FH=2): min(1290, 1648) = 1290."""
        cell_range, _determined = feasible_range(
            table, ("SMOKING", "FAMILY_HISTORY"), (0, 1), constraints
        )
        assert cell_range == 1290

    def test_significant_siblings_reduce_range(self, table, constraints):
        """Adopting (SMOKING=1, CANCER=1) removes its 240 counts from the
        slack available to (SMOKING=1, CANCER=2)."""
        constraints.add_cell(
            constraints.cell_from_table(table, ["SMOKING", "CANCER"], [0, 0])
        )
        cell_range, determined = feasible_range(
            table, ("SMOKING", "CANCER"), (0, 1), constraints
        )
        # N^A_1 = 1290 minus sibling 240 = 1050; N^B_2 = 2995 untouched.
        assert cell_range == 1050
        # CANCER has 2 values: the sibling along SMOKING=1 covers all
        # other cells of that row, so the value is determined.
        assert determined

    def test_determined_via_full_row(self, table, constraints):
        """With both other SMOKING rows of CANCER=yes significant, the
        remaining (SMOKING=3, CANCER=yes) cell is determined."""
        for i in (0, 1):
            constraints.add_cell(
                constraints.cell_from_table(table, ["SMOKING", "CANCER"], [i, 0])
            )
        _range, determined = feasible_range(
            table, ("SMOKING", "CANCER"), (2, 0), constraints
        )
        assert determined

    def test_third_order_uses_significant_pair(self, table, constraints):
        """A significant AB pair bounds its ABC refinements."""
        constraints.add_cell(
            constraints.cell_from_table(table, ["SMOKING", "CANCER"], [0, 0])
        )
        cell_range, _determined = feasible_range(
            table,
            ("SMOKING", "CANCER", "FAMILY_HISTORY"),
            (0, 0, 0),
            constraints,
        )
        # Bounded by the AB cell's own count 240, tighter than any margin.
        assert cell_range <= 240


class TestEvaluateCell:
    def test_paper_table1_deltas(self, table, model, constraints):
        """Every Table-1 m2-m1 reproduces to within 0.05 and every
        likelihood ratio to within 10%."""
        for reference in PAPER_TABLE1:
            test = evaluate_cell(
                table,
                model,
                reference.subset,
                reference.values,
                constraints,
                candidate_pool=16,
            )
            assert test.delta == pytest.approx(reference.delta, abs=0.08), (
                reference
            )
            if reference.ratio is not None:
                # The paper prints ratios with 2-3 significant digits; small
                # ratios get an absolute band, large ones a relative band.
                if reference.ratio < 1.0:
                    assert test.likelihood_ratio == pytest.approx(
                        reference.ratio, abs=0.06
                    ), reference
                else:
                    assert test.likelihood_ratio == pytest.approx(
                        reference.ratio, rel=0.12
                    ), reference

    def test_significance_sign_rule(self, table, model, constraints):
        """Eq 47: significant iff m2 - m1 < 0."""
        test = evaluate_cell(
            table, model, ("SMOKING", "CANCER"), (0, 0), constraints
        )
        assert test.significant
        assert test.delta < 0
        test = evaluate_cell(
            table, model, ("SMOKING", "CANCER"), (1, 1), constraints
        )
        assert not test.significant

    def test_likelihood_ratio_is_exp_delta(self, table, model, constraints):
        test = evaluate_cell(
            table, model, ("CANCER", "FAMILY_HISTORY"), (0, 0), constraints
        )
        assert test.likelihood_ratio == pytest.approx(math.exp(test.delta))

    def test_pool_defaults_to_cells_minus_found(
        self, table, model, constraints
    ):
        explicit = evaluate_cell(
            table, model, ("SMOKING", "CANCER"), (0, 0), constraints,
            candidate_pool=16,
        )
        defaulted = evaluate_cell(
            table, model, ("SMOKING", "CANCER"), (0, 0), constraints
        )
        assert defaulted.m2 == pytest.approx(explicit.m2)

    def test_prior_shift_moves_delta(self, table, model, constraints):
        base = evaluate_cell(
            table, model, ("CANCER", "FAMILY_HISTORY"), (0, 0), constraints
        )
        shifted = evaluate_cell(
            table,
            model,
            ("CANCER", "FAMILY_HISTORY"),
            (0, 0),
            constraints,
            priors=MMLPriors(p_h1=0.2, p_h2_prime=0.8),
        )
        assert shifted.delta == pytest.approx(base.delta - 1.386, abs=0.01)

    def test_empty_pool_rejected(self, table, model, constraints):
        with pytest.raises(DataError, match="pool"):
            evaluate_cell(
                table, model, ("SMOKING", "CANCER"), (0, 0), constraints,
                candidate_pool=0,
            )

    def test_describe(self, table, model, constraints, schema):
        test = evaluate_cell(
            table, model, ("SMOKING", "CANCER"), (0, 0), constraints
        )
        text = test.describe(schema)
        assert "smoker" in text
        assert "significant" in text


class TestScanOrder:
    def test_scans_all_sixteen_cells(self, scan):
        assert len(scan) == 16

    def test_excludes_adopted_cells(self, table, model, constraints):
        constraints.add_cell(
            constraints.cell_from_table(table, ["SMOKING", "CANCER"], [0, 0])
        )
        tests = scan_order(table, model, 2, constraints)
        assert len(tests) == 15
        assert all(
            (t.attributes, t.values) != (("SMOKING", "CANCER"), (0, 0))
            for t in tests
        )

    def test_most_significant_is_smoker_cancer(self, scan):
        """Table 1: AB11 has the most negative m2-m1 (-11.57)."""
        best = most_significant(scan)
        assert best is not None
        assert best.attributes == ("SMOKING", "CANCER")
        assert best.values == (0, 0)

    def test_significant_set_matches_paper(self, scan):
        """The cells with negative delta in Table 1."""
        significant = {
            (t.attributes, t.values) for t in scan if t.significant
        }
        expected = {
            (("SMOKING", "CANCER"), (0, 0)),
            (("SMOKING", "CANCER"), (1, 0)),
            (("CANCER", "FAMILY_HISTORY"), (0, 1)),
            (("SMOKING", "FAMILY_HISTORY"), (0, 0)),
            (("SMOKING", "FAMILY_HISTORY"), (0, 1)),
            (("SMOKING", "FAMILY_HISTORY"), (2, 0)),
            (("SMOKING", "FAMILY_HISTORY"), (2, 1)),
        }
        assert significant == expected

    def test_most_significant_none_when_clean(self, table, constraints):
        """Scanning the empirical distribution itself finds nothing: the
        model already predicts every cell."""
        from repro.baselines.empirical import empirical_model

        model = empirical_model(table)
        tests = scan_order(table, model, 2, constraints)
        assert most_significant(tests) is None

    def test_third_order_scan(self, table, model, constraints):
        tests = scan_order(table, model, 3, constraints)
        assert len(tests) == 12
