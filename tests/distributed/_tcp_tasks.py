"""Worker tasks for the distributed tests (module-level so workers can
resolve them by dotted name; see ``repro.parallel.pool.resolve_task``).

Named ``_tcp_tasks`` — not ``_tasks`` — so the module never shadows (or
is shadowed by) ``tests/parallel/_tasks`` when both test directories end
up on ``sys.path`` in the same pytest run.
"""

import time

from repro.exceptions import DataError, StaleWorkerStateError


def echo(state, value):
    return value


def put(state, key, value):
    state[key] = value


def get(state, key):
    return state.get(key)


def raise_data_error(state, message):
    raise DataError(message)


def raise_stale(state):
    raise StaleWorkerStateError("pinned state is gone")


def sleep_for(state, seconds):
    time.sleep(seconds)
    return seconds


def flaky(state, succeed_on):
    """Raises a transient OSError until attempt ``succeed_on``; the
    attempt count lives in worker state, so a retrying caller sees the
    later attempts succeed."""
    attempts = state.get("attempts", 0) + 1
    state["attempts"] = attempts
    if attempts < succeed_on:
        raise OSError("transient glitch")
    return attempts
