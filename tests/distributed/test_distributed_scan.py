"""Distributed scans and batch queries == their serial counterparts,
bit for bit, across every transport.

The contract: routing shards to ``repro worker`` daemons over TCP
changes *where* the kernels run, never *what* they compute — every
CellTest float, the greedy argmax, every batch-query probability, and
every discovery decision is identical to the serial path, including
after worker restarts (the stale-state recovery re-ships full payloads
rather than trusting a reconnected worker's cache).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.session import QuerySession
from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.data.contingency import ContingencyTable
from repro.data.schema import Attribute, Schema
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.distributed import WorkerServer
from repro.eval.paper import paper_table
from repro.exceptions import ConstraintError, ParallelError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.ipf import fit_ipf
from repro.maxent.model import MaxEntModel
from repro.parallel.query import ParallelQueryEvaluator
from repro.parallel.scan import ShardedScanExecutor
from repro.parallel.shm import shm_available
from repro.significance.kernels import OrderScanKernel
from repro.significance.mml import most_significant

ORDER = 2

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_world(seed: int = 7, fitted: bool = False):
    """A compact 4-attribute world whose order-2 pool scans fast."""
    rng = np.random.default_rng(seed)
    attributes = [
        Attribute(f"A{index}", ("x", "y", "z")[: 2 + index % 2])
        for index in range(4)
    ]
    schema = Schema(attributes)
    table = ContingencyTable(
        schema, rng.integers(1, 30, size=schema.shape).astype(np.int64)
    )
    constraints = ConstraintSet.first_order(table)
    model = MaxEntModel.independent(
        schema,
        {name: table.first_order_probabilities(name) for name in schema.names},
    )
    if fitted:
        model = fit_ipf(
            constraints,
            initial=model,
            max_sweeps=40,
            require_convergence=False,
        ).model
    return table, constraints, model


@st.composite
def scan_worlds(draw, max_attributes=4, max_values=3):
    """A random (table, constraints, model) triple ready to scan."""
    count = draw(st.integers(2, max_attributes))
    attributes = []
    for index in range(count):
        cardinality = draw(st.integers(2, max_values))
        attributes.append(
            Attribute(
                f"ATTR{index}", tuple(f"v{v}" for v in range(cardinality))
            )
        )
    schema = Schema(attributes)
    cells = schema.num_cells
    counts = draw(
        st.lists(st.integers(1, 12), min_size=cells, max_size=cells)
    )
    table = ContingencyTable(
        schema, np.array(counts, dtype=np.int64).reshape(schema.shape)
    )
    constraints = ConstraintSet.first_order(table)
    for _ in range(draw(st.integers(0, 2))):
        subsets = table.subsets_of_order(2)
        subset = subsets[draw(st.integers(0, len(subsets) - 1))]
        values = tuple(
            draw(st.integers(0, schema.attribute(name).cardinality - 1))
            for name in subset
        )
        candidate = constraints.cell_from_table(table, subset, values)
        if candidate.probability >= 0.99:
            continue
        try:
            constraints.add_cell(candidate)
        except ConstraintError:
            continue
    model = MaxEntModel.independent(
        schema,
        {name: table.first_order_probabilities(name) for name in schema.names},
    )
    return table, constraints, model


@pytest.fixture(scope="module")
def tcp_server():
    with WorkerServer() as server:
        yield server


@pytest.fixture(scope="module")
def executors(tcp_server):
    """One long-lived executor per transport, reused across examples —
    exactly how the discovery engine reuses one executor across orders
    and tables."""
    pools = {
        "pipe": ShardedScanExecutor(max_workers=2, transport="pipe"),
        "tcp": ShardedScanExecutor(
            worker_addresses=[tcp_server.address_text] * 2
        ),
    }
    if shm_available():
        pools["shm"] = ShardedScanExecutor(max_workers=2, transport="shm")
    yield pools
    for executor in pools.values():
        executor.close()


class TestScanBitIdentity:
    def test_tcp_scan_equals_serial(self, tcp_server):
        table, constraints, model = build_world()
        serial = OrderScanKernel(table, ORDER, constraints).scan(model)
        with ShardedScanExecutor(
            worker_addresses=[tcp_server.address_text] * 3
        ) as executor:
            assert executor.transport == "tcp"
            executor.begin_order(table, ORDER, constraints, None)
            tests, best = executor.scan(model)
            assert tests == serial
            assert best == most_significant(serial)

    @SETTINGS
    @given(world=scan_worlds())
    def test_every_transport_matches_serial(self, executors, world):
        table, constraints, model = world
        serial = OrderScanKernel(table, ORDER, constraints).scan(model)
        best = most_significant(serial)
        for name, executor in executors.items():
            executor.begin_order(table, ORDER, constraints, None)
            try:
                tests, merged_best = executor.scan(model)
                assert tests == serial, f"{name} diverged"
                assert merged_best == best, f"{name} argmax diverged"
            finally:
                executor.end_order()

    def test_discovery_run_with_remote_workers_equals_serial(
        self, tcp_server
    ):
        table = paper_table()
        serial = DiscoveryEngine(DiscoveryConfig(max_order=3)).run(table)
        config = DiscoveryConfig(
            max_order=3,
            worker_addresses=(tcp_server.address_text,) * 2,
        )
        with DiscoveryEngine(config) as engine:
            remote = engine.run(table)
        assert [c.key for c in remote.found] == [c.key for c in serial.found]
        assert [c.probability for c in remote.found] == [
            c.probability for c in serial.found
        ]
        assert np.array_equal(remote.model.joint(), serial.model.joint())


class TestBroadcastAmortization:
    def test_warm_scans_skip_the_joint_broadcast(self, tcp_server):
        table, constraints, model = build_world()
        with ShardedScanExecutor(
            worker_addresses=[tcp_server.address_text] * 2
        ) as executor:
            executor.begin_order(table, ORDER, constraints, None)
            start = executor.counters.to_dict()
            executor.scan(model)
            first = executor.counters.to_dict()
            executor.scan(model)
            second = executor.counters.to_dict()
            executor.scan(model)
            third = executor.counters.to_dict()
            # Same fingerprint: cache tokens instead of the joint array.
            assert second["broadcasts_skipped"] > first["broadcasts_skipped"]
            cold = first["bytes_pickled"] - start["bytes_pickled"]
            warm = second["bytes_pickled"] - first["bytes_pickled"]
            steady = third["bytes_pickled"] - second["bytes_pickled"]
            # Warm scans pay for shard results only; the first scan also
            # shipped the joint to every worker.
            assert warm < cold, "a warm scan re-shipped the joint"
            assert steady == warm, "warm wire cost is not steady-state"

    def test_model_change_reships_and_stays_identical(self, tcp_server):
        table, constraints, _model = build_world()
        initial = build_world()[2]
        fitted = build_world(fitted=True)[2]
        assert initial.fingerprint() != fitted.fingerprint()
        with ShardedScanExecutor(
            worker_addresses=[tcp_server.address_text] * 2
        ) as executor:
            executor.begin_order(table, ORDER, constraints, None)
            executor.scan(initial)
            skipped = executor.counters.to_dict()["broadcasts_skipped"]
            tests, best = executor.scan(fitted)
            # New fingerprint: a real broadcast, not a cache token.
            assert (
                executor.counters.to_dict()["broadcasts_skipped"] == skipped
            )
            serial = OrderScanKernel(table, ORDER, constraints).scan(fitted)
            assert tests == serial
            assert best == most_significant(serial)


class TestRecovery:
    def test_scan_recovers_after_worker_restart(self, tcp_server):
        """A reconnected worker lost kernels and joint; the executor
        replays the order and re-ships the joint — bit-identically."""
        table, constraints, model = build_world()
        serial = OrderScanKernel(table, ORDER, constraints).scan(model)
        with ShardedScanExecutor(
            worker_addresses=[tcp_server.address_text] * 2
        ) as executor:
            executor.begin_order(table, ORDER, constraints, None)
            assert executor.scan(model)[0] == serial
            executor.pool.reconnect()  # worker restart: pinned state gone
            tests, best = executor.scan(model)
            assert tests == serial
            assert best == most_significant(serial)

    def test_scan_recovers_after_restart_and_fingerprint_change(
        self, tcp_server
    ):
        """The poisonous combination: the worker's cached joint died
        *and* the master moved to a new model.  The worker must request
        a fresh joint rather than serve any stale state."""
        table, constraints, initial = build_world()
        fitted = build_world(fitted=True)[2]
        with ShardedScanExecutor(
            worker_addresses=[tcp_server.address_text] * 2
        ) as executor:
            executor.begin_order(table, ORDER, constraints, None)
            executor.scan(initial)
            executor.pool.reconnect()
            tests, best = executor.scan(fitted)
            serial = OrderScanKernel(table, ORDER, constraints).scan(fitted)
            assert tests == serial
            assert best == most_significant(serial)

    def test_dead_daemon_mid_run_raises_parallel_error(self):
        table, constraints, model = build_world()
        server = WorkerServer().start()
        executor = ShardedScanExecutor(
            worker_addresses=[server.address_text] * 2
        )
        try:
            executor.begin_order(table, ORDER, constraints, None)
            executor.scan(model)
            server.close()
            with pytest.raises(ParallelError):
                executor.scan(model)
            assert executor.pool.closed
        finally:
            executor.close()
            server.close()


class TestResolution:
    def test_empty_worker_set_degrades_to_local(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_TRANSPORT", "tcp")
        monkeypatch.delenv("REPRO_WORKER_ADDRESSES", raising=False)
        table, constraints, model = build_world()
        serial = OrderScanKernel(table, ORDER, constraints).scan(model)
        with ShardedScanExecutor(max_workers=2) as executor:
            assert executor.transport in ("pipe", "shm")
            executor.begin_order(table, ORDER, constraints, None)
            assert executor.scan(model)[0] == serial

    def test_env_addresses_engage_tcp(self, monkeypatch, tcp_server):
        monkeypatch.setenv("REPRO_PARALLEL_TRANSPORT", "tcp")
        monkeypatch.setenv(
            "REPRO_WORKER_ADDRESSES",
            f"{tcp_server.address_text},{tcp_server.address_text}",
        )
        table, constraints, model = build_world()
        serial = OrderScanKernel(table, ORDER, constraints).scan(model)
        with ShardedScanExecutor() as executor:
            assert executor.transport == "tcp"
            assert executor.max_workers == 2
            executor.begin_order(table, ORDER, constraints, None)
            assert executor.scan(model)[0] == serial

    def test_explicit_local_transport_with_addresses_is_loud(self):
        with pytest.raises(ParallelError, match="local"):
            ShardedScanExecutor(
                transport="pipe", worker_addresses=["127.0.0.1:9999"]
            )


def query_strings(schema: Schema) -> list[str]:
    names = schema.names
    queries = []
    for index, name in enumerate(names):
        attribute = schema.attribute(name)
        given_name = names[(index + 1) % len(names)]
        given_attr = schema.attribute(given_name)
        queries.append(f"{name}={attribute.values[0]}")
        queries.append(
            f"{name}={attribute.values[-1]} | "
            f"{given_name}={given_attr.values[0]}"
        )
    return queries * 3  # repeated traffic exercises the plan caches


class TestDistributedQueries:
    def test_batch_equals_serial_session(self, tcp_server):
        _table, _constraints, model = build_world(fitted=True)
        queries = query_strings(model.schema)
        serial = QuerySession(model).batch(queries)
        with ParallelQueryEvaluator(
            model, worker_addresses=[tcp_server.address_text] * 2
        ) as evaluator:
            assert evaluator.transport == "tcp"
            assert evaluator.batch(queries) == serial

    def test_set_model_tracks_the_new_fingerprint(self, tcp_server):
        _table, _constraints, initial = build_world()
        fitted = build_world(fitted=True)[2]
        queries = query_strings(initial.schema)
        with ParallelQueryEvaluator(
            initial, worker_addresses=[tcp_server.address_text] * 2
        ) as evaluator:
            assert evaluator.batch(queries) == (
                QuerySession(initial).batch(queries)
            )
            evaluator.set_model(fitted)
            assert evaluator.batch(queries) == (
                QuerySession(fitted).batch(queries)
            )

    def test_batch_recovers_after_worker_restart(self, tcp_server):
        _table, _constraints, model = build_world(fitted=True)
        queries = query_strings(model.schema)
        serial = QuerySession(model).batch(queries)
        with ParallelQueryEvaluator(
            model, worker_addresses=[tcp_server.address_text] * 2
        ) as evaluator:
            assert evaluator.batch(queries) == serial
            evaluator.pool.reconnect()  # pinned remote sessions are gone
            assert evaluator.batch(queries) == serial

    def test_kb_query_many_remote_equals_local(self, tcp_server):
        kb = ProbabilisticKnowledgeBase.from_data(paper_table())
        queries = query_strings(kb.model.schema)[:8]
        local = kb.query_many(queries)
        remote = kb.query_many(
            queries,
            worker_addresses=[tcp_server.address_text] * 2,
        )
        assert remote == local

    def test_session_worker_addresses_engage_tcp(self, tcp_server):
        _table, _constraints, model = build_world(fitted=True)
        queries = query_strings(model.schema)
        serial = QuerySession(model).batch(queries)
        with QuerySession(
            model, worker_addresses=[tcp_server.address_text] * 2
        ) as session:
            assert session.batch(queries) == serial
            assert session._parallel.transport == "tcp"
