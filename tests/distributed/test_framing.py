"""The TCP frame layer: exact reads, loud failures on malformed input.

The contract under test: ``recv_frame`` either returns a complete
payload, returns ``None`` on a clean EOF at a frame boundary, or raises
:class:`ParallelError` — never a partial payload, never a hang on a
garbage header, never an attempt to buffer an absurd length.
"""

import pickle
import socket
import struct
import threading
import time

import pytest

from repro.distributed.protocol import (
    HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    format_address,
    parse_address,
    recv_exact,
    recv_frame,
    recv_message,
    send_frame,
    send_message,
)
from repro.exceptions import ParallelError


def frame_bytes(payload: bytes) -> bytes:
    return MAGIC + struct.pack(">Q", len(payload)) + payload


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.2:8950") == ("10.0.0.2", 8950)

    def test_strips_whitespace(self):
        assert parse_address("  localhost:9000 ") == ("localhost", 9000)

    def test_splits_on_last_colon_for_ipv6(self):
        assert parse_address("::1:9000") == ("::1", 9000)

    def test_format_round_trips(self):
        assert format_address(parse_address("host:81")) == "host:81"

    @pytest.mark.parametrize(
        "text", ["nocolon", ":9000", "host:", "host:ninety", "host:-1",
                 "host:65536", "host:0"],
    )
    def test_rejects_malformed_connect_addresses(self, text):
        with pytest.raises(ParallelError):
            parse_address(text)

    def test_listen_addresses_allow_ephemeral_port_zero(self):
        assert parse_address("127.0.0.1:0", listen=True) == ("127.0.0.1", 0)
        with pytest.raises(ParallelError):
            parse_address("127.0.0.1:-1", listen=True)


class TestFraming:
    def test_message_round_trip(self, pair):
        left, right = pair
        message = ("call", "mod:task", [(1, "two"), {"three": 3.0}])
        send_message(left, message)
        assert recv_message(right) == message

    def test_send_frame_returns_bytes_on_wire(self, pair):
        left, right = pair
        sent = send_frame(left, b"xyzzy")
        assert sent == HEADER_BYTES + 5
        assert recv_frame(right) == b"xyzzy"

    def test_partial_reads_reassemble(self, pair):
        """A frame dribbled in 1-byte writes still arrives whole:
        ``recv_exact`` loops until the count is satisfied."""
        left, right = pair
        payload = pickle.dumps(list(range(50)))
        raw = frame_bytes(payload)

        def dribble():
            for index in range(len(raw)):
                left.sendall(raw[index : index + 1])
                if index % 7 == 0:
                    time.sleep(0.001)

        writer = threading.Thread(target=dribble)
        writer.start()
        try:
            assert pickle.loads(recv_frame(right)) == list(range(50))
        finally:
            writer.join()

    def test_clean_eof_at_frame_boundary_is_none(self, pair):
        left, right = pair
        left.close()
        assert recv_frame(right) is None
        assert recv_message(right) is None

    def test_eof_mid_frame_raises(self, pair):
        left, right = pair
        raw = frame_bytes(b"x" * 100)
        left.sendall(raw[:HEADER_BYTES + 10])  # header + 10 of 100 bytes
        left.close()
        with pytest.raises(ParallelError, match="mid-frame"):
            recv_frame(right)

    def test_eof_mid_header_raises(self, pair):
        left, right = pair
        left.sendall(MAGIC[:2])
        left.close()
        with pytest.raises(ParallelError):
            recv_frame(right)

    def test_bad_magic_raises(self, pair):
        left, right = pair
        left.sendall(b"HTTP" + struct.pack(">Q", 4) + b"oops")
        with pytest.raises(ParallelError, match="magic"):
            recv_frame(right)

    def test_oversized_length_raises_before_buffering(self, pair):
        left, right = pair
        left.sendall(MAGIC + struct.pack(">Q", MAX_FRAME_BYTES + 1))
        with pytest.raises(ParallelError, match="frame"):
            recv_frame(right)

    def test_unpicklable_payload_raises_parallel_error(self, pair):
        left, right = pair
        send_frame(left, b"\x80\x04this is not a pickle")
        with pytest.raises(ParallelError):
            recv_message(right)

    def test_recv_exact_none_only_before_first_byte(self, pair):
        left, right = pair
        left.sendall(b"abc")
        assert recv_exact(right, 3) == b"abc"
        left.close()
        assert recv_exact(right, 3) is None
