"""TcpWorkerPool against an in-process WorkerServer: the WorkerPool
contract (pinned dispatch, state persistence, failure surfacing) over
real sockets, plus the retry/timeout surface shared with the inline
pool.
"""

import socket
import threading
import time

import pytest

from repro.distributed import (
    DEFAULT_RETRY,
    RetryPolicy,
    TcpWorkerPool,
    WorkerServer,
)
from repro.exceptions import (
    DataError,
    ParallelError,
    StaleWorkerStateError,
)
from repro.parallel.pool import WorkerPool

ECHO = "_tcp_tasks:echo"
PUT = "_tcp_tasks:put"
GET = "_tcp_tasks:get"
DATA_ERROR = "_tcp_tasks:raise_data_error"
STALE = "_tcp_tasks:raise_stale"
SLEEP = "_tcp_tasks:sleep_for"
FLAKY = "_tcp_tasks:flaky"

#: Fast-failing policy for the error-path tests.
QUICK = RetryPolicy(
    connect_timeout=0.25, read_timeout=5.0, attempts=2, backoff=0.01
)


@pytest.fixture
def server():
    with WorkerServer() as worker_server:
        yield worker_server


@pytest.fixture
def pool(server):
    with TcpWorkerPool([server.address_text] * 4, retry=QUICK) as tcp_pool:
        yield tcp_pool


def unused_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestDispatch:
    def test_echo_round_trip(self, pool):
        assert pool.run(ECHO, [(1,), (2,), (3,), (4,)]) == [1, 2, 3, 4]

    def test_broadcast_hits_every_worker(self, pool):
        assert pool.broadcast(ECHO, "hi") == ["hi"] * 4

    def test_pinned_state_is_per_slot_even_on_one_daemon(self, pool):
        """Four connections to one daemon are four independent pinned
        workers: slot-private state, exactly like four processes."""
        pool.run(PUT, [("k", index) for index in range(4)])
        assert pool.run(GET, [("k",)] * 4) == [0, 1, 2, 3]

    def test_state_persists_across_runs(self, pool):
        pool.run(PUT, [("key", "value")])
        assert pool.run(GET, [("key",)]) == ["value"]

    def test_fewer_shards_than_workers(self, pool):
        assert pool.run(ECHO, [(9,)]) == [9]

    def test_too_many_shards_raises(self, pool):
        with pytest.raises(ParallelError, match="shard count"):
            pool.run(ECHO, [(0,)] * 5)


class TestFailures:
    def test_library_errors_re_raise_as_themselves(self, pool):
        with pytest.raises(DataError, match="bad shard"):
            pool.run(DATA_ERROR, [("bad shard",)] * 4)
        # An error reply is not a transport failure: the pool survives.
        assert not pool.closed
        assert pool.run(ECHO, [(1,)]) == [1]

    def test_stale_state_error_crosses_the_wire_as_itself(self, pool):
        """StaleWorkerStateError is the recovery signal the executors
        catch — it must arrive as its own type, not ParallelError."""
        with pytest.raises(StaleWorkerStateError):
            pool.broadcast(STALE)
        assert not pool.closed

    def test_connect_failure_raises_after_bounded_attempts(self):
        address = f"127.0.0.1:{unused_port()}"
        pool = TcpWorkerPool([address], retry=QUICK)
        with pytest.raises(ParallelError, match="could not connect"):
            pool.run(ECHO, [(1,)])

    def test_read_timeout_surfaces_as_parallel_error(self, server):
        slow = RetryPolicy(
            connect_timeout=0.25, read_timeout=0.2, attempts=1
        )
        with TcpWorkerPool([server.address_text], retry=slow) as pool:
            with pytest.raises(ParallelError, match="died"):
                pool.run(SLEEP, [(1.0,)])
            assert pool.closed

    def test_server_death_mid_conversation_closes_the_pool(self, server):
        pool = TcpWorkerPool([server.address_text] * 2, retry=QUICK)
        assert pool.run(ECHO, [(1,), (2,)]) == [1, 2]
        server.close()
        with pytest.raises(ParallelError, match="died|dispatch"):
            pool.run(ECHO, [(1,), (2,)])
        assert pool.closed

    def test_run_after_close_raises(self, pool):
        pool.close()
        with pytest.raises(ParallelError, match="closed"):
            pool.run(ECHO, [(1,)])


class TestReconnect:
    def test_reconnect_drops_pinned_state(self, pool):
        pool.run(PUT, [("key", "value")] * 4)
        pool.reconnect()
        # Fresh connections get fresh private state dicts server-side.
        assert pool.run(GET, [("key",)] * 4) == [None] * 4

    def test_reconnect_on_closed_pool_raises(self, pool):
        pool.close()
        with pytest.raises(ParallelError, match="closed"):
            pool.reconnect()


class TestCounters:
    def test_wire_bytes_and_round_trips_are_counted(self, pool):
        before = pool.counters.to_dict()
        pool.run(ECHO, [("payload",)] * 4)
        pool.broadcast(ECHO, "again")
        after = pool.counters.to_dict()
        assert after["round_trips"] - before["round_trips"] == 2
        # Every run moves at least 8 frames (4 calls + 4 replies).
        assert after["bytes_wire"] - before["bytes_wire"] > 0


class TestLeaks:
    def test_close_leaves_no_server_threads_or_connections(self, server):
        pool = TcpWorkerPool([server.address_text] * 3)
        pool.run(ECHO, [(1,)] * 3)
        pool.close()
        server.close()
        lingering = [
            thread.name
            for thread in threading.enumerate()
            if thread.is_alive()
            and thread.name.startswith("repro-worker")
        ]
        assert lingering == []
        assert server._connections == []


class TestRetryPolicy:
    def test_transient_errors_are_retried(self):
        attempts = []

        def action():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("blip")
            return "done"

        policy = RetryPolicy(attempts=3, backoff=0.0)
        assert policy.call(action) == "done"
        assert len(attempts) == 3

    def test_attempts_exhausted_re_raises_the_last_error(self):
        policy = RetryPolicy(attempts=2, backoff=0.0)
        with pytest.raises(OSError, match="always"):
            policy.call(lambda: (_ for _ in ()).throw(OSError("always")))

    def test_library_errors_never_retry(self):
        attempts = []

        def action():
            attempts.append(1)
            raise DataError("not transient")

        policy = RetryPolicy(attempts=3, backoff=0.0)
        with pytest.raises(DataError):
            policy.call(action)
        assert len(attempts) == 1

    def test_validation(self):
        with pytest.raises(ParallelError):
            RetryPolicy(attempts=0)
        with pytest.raises(ParallelError):
            RetryPolicy(connect_timeout=0)
        with pytest.raises(ParallelError):
            RetryPolicy(backoff=-1)

    def test_backoff_doubles_between_attempts(self, monkeypatch):
        import repro.distributed.retry as retry_module

        sleeps = []
        monkeypatch.setattr(
            retry_module.time, "sleep", lambda s: sleeps.append(s)
        )
        policy = RetryPolicy(attempts=3, backoff=0.1)
        with pytest.raises(OSError):
            policy.call(lambda: (_ for _ in ()).throw(OSError("x")))
        assert sleeps == [0.1, 0.2]


class TestInlineParity:
    """Satellite fix: the inline WorkerPool fallback honors the same
    retry/timeout surface as the remote transports — one code path for
    the error-path tests."""

    def test_inline_pool_retries_transient_errors(self):
        pool = WorkerPool(
            max_workers=1, retry=RetryPolicy(attempts=3, backoff=0.0)
        )
        assert pool.run(FLAKY, [(3,)]) == [3]  # two OSErrors, then ok

    def test_inline_pool_exhausts_attempts_then_wraps(self):
        pool = WorkerPool(
            max_workers=1, retry=RetryPolicy(attempts=2, backoff=0.0)
        )
        with pytest.raises(ParallelError, match="OSError"):
            pool.run(FLAKY, [(5,)])  # needs 5 attempts, gets 2

    def test_inline_stale_state_error_matches_remote_behavior(
        self, server
    ):
        inline = WorkerPool(max_workers=1)
        with pytest.raises(StaleWorkerStateError):
            inline.run(STALE, [()])
        with TcpWorkerPool([server.address_text]) as remote:
            with pytest.raises(StaleWorkerStateError):
                remote.run(STALE, [()])

    def test_inline_pool_uses_the_shared_default_policy(self):
        assert WorkerPool(max_workers=1).retry is DEFAULT_RETRY

    def test_process_pool_read_timeout_raises(self):
        """The process transport honors read_timeout too: a hung worker
        raises instead of blocking the master forever."""
        import multiprocessing

        if not multiprocessing.get_all_start_methods():
            pytest.skip("no multiprocessing start method available")
        pool = WorkerPool(
            max_workers=1,
            inline=False,
            retry=RetryPolicy(attempts=1, read_timeout=0.2),
        )
        try:
            with pytest.raises(ParallelError, match="did not reply"):
                pool.run(SLEEP, [(2.0,)])
            assert pool.closed
        finally:
            pool.close()


class TestServerLifecycle:
    def test_close_is_idempotent(self, server):
        server.close()
        server.close()

    def test_address_requires_start(self):
        with pytest.raises(RuntimeError):
            WorkerServer().address  # noqa: B018 - the property raises

    def test_serve_forever_unblocks_on_close(self, server):
        waiter = threading.Thread(target=server.serve_forever)
        waiter.start()
        time.sleep(0.05)
        assert waiter.is_alive()
        server.close()
        waiter.join(timeout=2.0)
        assert not waiter.is_alive()
