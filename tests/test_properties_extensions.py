"""Property-based tests for the extension modules.

Covers the invariants of the additions beyond the paper's core: the dual
solver's agreement with IPF, subset-margin fits, EM's monotone likelihood
and mass conservation, and largest-remainder rounding.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.missing import (
    MISSING,
    IncompleteDataset,
    em_joint,
    round_preserving_total,
)
from repro.data.schema import Attribute, Schema
from repro.maxent.constraints import ConstraintSet
from repro.maxent.dual import fit_dual
from repro.maxent.ipf import fit_ipf

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def positive_tables(draw, max_attributes=3, max_values=3):
    """Tables with strictly positive cells (dual-solver friendly)."""
    count = draw(st.integers(2, max_attributes))
    attributes = [
        Attribute(
            f"ATTR{i}",
            tuple(f"v{v}" for v in range(draw(st.integers(2, max_values)))),
        )
        for i in range(count)
    ]
    schema = Schema(attributes)
    cells = schema.num_cells
    counts = draw(
        st.lists(st.integers(2, 50), min_size=cells, max_size=cells)
    )
    return ContingencyTable(
        schema, np.array(counts, dtype=np.int64).reshape(schema.shape)
    )


class TestDualSolverProperties:
    @SETTINGS
    @given(positive_tables())
    def test_dual_matches_ipf_on_margins(self, table):
        constraints = ConstraintSet.first_order(table)
        dual = fit_dual(constraints, tol=1e-7)
        ipf = fit_ipf(constraints)
        assert np.allclose(dual.model.joint(), ipf.model.joint(), atol=1e-5)

    @SETTINGS
    @given(positive_tables())
    def test_dual_matches_ipf_with_cell(self, table):
        names = table.schema.names
        constraints = ConstraintSet.first_order(table)
        constraints.add_cell(
            constraints.cell_from_table(table, [names[0], names[1]], [0, 0])
        )
        dual = fit_dual(constraints, tol=1e-7)
        ipf = fit_ipf(constraints, max_sweeps=3000)
        assert np.allclose(dual.model.joint(), ipf.model.joint(), atol=1e-5)


class TestSubsetMarginProperties:
    @SETTINGS
    @given(positive_tables())
    def test_subset_margin_fit_exact(self, table):
        names = table.schema.names
        constraints = ConstraintSet.first_order(table)
        target = constraints.subset_margin_from_table(
            table, [names[0], names[1]]
        )
        constraints.set_subset_margin([names[0], names[1]], target)
        fit = fit_ipf(constraints, max_sweeps=3000)
        fitted = fit.model.marginal([names[0], names[1]])
        assert np.allclose(fitted, target, atol=1e-7)

    @SETTINGS
    @given(positive_tables())
    def test_subset_margin_entropy_below_independence(self, table):
        """Adding constraints can only lower (or keep) the maxent entropy."""
        from repro.maxent.entropy import entropy

        names = table.schema.names
        first_order = ConstraintSet.first_order(table)
        independent = fit_ipf(first_order)
        constrained = first_order.copy()
        constrained.set_subset_margin(
            [names[0], names[1]],
            constrained.subset_margin_from_table(table, [names[0], names[1]]),
        )
        fitted = fit_ipf(constrained, max_sweeps=3000)
        assert entropy(fitted.model.joint()) <= entropy(
            independent.model.joint()
        ) + 1e-9


class TestEMProperties:
    @SETTINGS
    @given(
        positive_tables(),
        st.floats(0.0, 0.5),
        st.integers(0, 2**31 - 1),
    )
    def test_em_monotone_and_normalized(self, table, fraction, seed):
        rng = np.random.default_rng(seed)
        dataset = Dataset.from_joint(
            table.schema, table.probabilities(), 200, rng
        )
        rows = dataset.rows.copy()
        mask = rng.random(rows.shape) < fraction
        rows[mask] = MISSING
        result = em_joint(
            IncompleteDataset(table.schema, rows),
            max_iterations=500,
            require_convergence=False,
        )
        assert result.joint.sum() == pytest.approx(1.0)
        assert (result.joint >= -1e-12).all()
        history = np.array(result.log_likelihood)
        assert (np.diff(history) >= -1e-7).all()

    @SETTINGS
    @given(st.lists(st.floats(0.0, 20.0), min_size=1, max_size=40))
    def test_rounding_preserves_total(self, values):
        counts = np.array(values)
        rounded = round_preserving_total(counts)
        assert rounded.sum() == round(counts.sum())
        assert (rounded >= 0).all()
        # Never off by a full unit from the exact value.
        assert np.abs(rounded - counts).max() <= 1.0 + 1e-9
