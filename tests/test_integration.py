"""End-to-end integration tests across the full pipeline.

Each test walks the complete paper workflow: raw samples → contingency
table → discovery → knowledge base → queries / rules / inference — on the
paper's data and on the synthetic survey worlds.
"""

import numpy as np
import pytest

from repro.core.inference import RuleEngine
from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.core.query import QueryEngine
from repro.data.dataset import Dataset
from repro.discovery.config import DiscoveryConfig
from repro.synth.surveys import (
    medical_survey_population,
    smoking_cancer_population,
    telemetry_population,
)


class TestPaperWorkflow:
    def test_raw_samples_to_rules(self, schema, table, rng):
        """The full Appendix-A-to-expert-system path."""
        dataset = Dataset.from_joint(
            schema, table.probabilities(), 20000, rng
        )
        kb = ProbabilisticKnowledgeBase.from_data(dataset)
        # The dominant association must survive the sampling noise.
        smoker = kb.probability({"CANCER": "yes"}, {"SMOKING": "smoker"})
        non_smoker = kb.probability(
            {"CANCER": "yes"}, {"SMOKING": "non-smoker"}
        )
        assert smoker > non_smoker

        rules = kb.rules(max_conditions=2, min_support=0.005)
        engine = RuleEngine(rules)
        conclusion = engine.conclude({"SMOKING": "smoker"}, "CANCER")
        assert conclusion.value == "no"  # base rate dominates
        assert conclusion.probability == pytest.approx(
            1.0 - smoker, abs=1e-9
        )

    def test_save_load_query_consistency(self, table, tmp_path):
        kb = ProbabilisticKnowledgeBase.from_data(table)
        path = tmp_path / "kb.json"
        kb.save(path)
        loaded = ProbabilisticKnowledgeBase.load(path)
        dense = QueryEngine(loaded.model, method="dense")
        factored = QueryEngine(loaded.model, method="elimination")
        for text in [
            "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes",
            "SMOKING=smoker | CANCER=yes",
            "FAMILY_HISTORY=yes | CANCER=yes",
        ]:
            assert dense.ask(text) == pytest.approx(kb.query(text), rel=1e-9)
            assert factored.ask(text) == pytest.approx(
                kb.query(text), rel=1e-9
            )


class TestSurveyWorlds:
    def test_medical_survey_three_way_effect(self):
        """Order-3 discovery finds structure in the medical world: the
        sedentary∧poor-diet∧heart-disease excess shows up as elevated
        conditional risk."""
        population = medical_survey_population()
        rng = np.random.default_rng(11)
        table = population.sample_table(60000, rng)
        kb = ProbabilisticKnowledgeBase.from_data(table)
        risky = kb.probability(
            {"HEART_DISEASE": "yes"},
            {"EXERCISE": "sedentary", "DIET": "poor"},
        )
        safe = kb.probability(
            {"HEART_DISEASE": "yes"},
            {"EXERCISE": "active", "DIET": "balanced"},
        )
        assert risky > 1.5 * safe

    def test_telemetry_anomaly_rules(self):
        population = telemetry_population()
        rng = np.random.default_rng(13)
        table = population.sample_table(50000, rng)
        kb = ProbabilisticKnowledgeBase.from_data(table)
        # Vibration-anomaly association must be discovered.
        found_subsets = {c.attributes for c in kb.constraints}
        assert ("VIBRATION", "ANOMALY") in found_subsets
        # And expressed in conditional probabilities.
        high = kb.probability({"ANOMALY": "detected"}, {"VIBRATION": "high"})
        low = kb.probability({"ANOMALY": "detected"}, {"VIBRATION": "low"})
        assert high > 2 * low

    def test_smoking_world_round_trip(self):
        """Sampling the smoking world and rediscovering reproduces the
        planted associations' directions."""
        population = smoking_cancer_population()
        rng = np.random.default_rng(17)
        table = population.sample_table(40000, rng)
        kb = ProbabilisticKnowledgeBase.from_data(
            table, DiscoveryConfig(max_order=2)
        )
        smoker = kb.probability({"CANCER": "yes"}, {"SMOKING": "smoker"})
        base = kb.probability({"CANCER": "yes"})
        history = kb.probability(
            {"CANCER": "yes"}, {"FAMILY_HISTORY": "yes"}
        )
        assert smoker > base
        assert history > base


class TestHoldoutEvaluation:
    def test_discovered_model_beats_independence_on_holdout(self):
        """Log-likelihood on held-out data: the discovered model beats the
        independence baseline and does not collapse to the training
        frequencies' overfit."""
        from repro.baselines.bic_selector import log_likelihood
        from repro.baselines.independence import independence_model
        from repro.discovery.engine import discover

        population = medical_survey_population()
        rng = np.random.default_rng(23)
        train = population.sample(40000, rng).to_contingency()
        test = population.sample(40000, rng).to_contingency()

        discovered = discover(train, DiscoveryConfig(max_order=2)).model
        independent = independence_model(train)
        assert log_likelihood(test, discovered) > log_likelihood(
            test, independent
        )
