"""End-to-end serving tests: real sockets, every endpoint, hot-swap.

A live :func:`serve_in_thread` server hosts the paper's knowledge base;
a blocking :class:`ServeClient` (which does no numeric processing of its
own) drives it.  The conformance bar everywhere is *bit-identity*: a
served probability equals the in-process ``kb.query()`` float exactly,
including for requests in flight across a hot-swap.
"""

import http.client
import json
import threading
import time

import pytest

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.data.streaming import TableBuilder
from repro.eval.paper import paper_table
from repro.serve import ServeClient, ServeConfig, ServedError, serve_in_thread

QUERIES = [
    "CANCER=yes",
    "CANCER=yes | SMOKING=smoker",
    "CANCER=yes | SMOKING=non-smoker",
    "SMOKING=smoker | CANCER=yes",
    "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes",
]

NEW_ROWS = [
    {"SMOKING": "smoker", "CANCER": "yes", "FAMILY_HISTORY": "yes"}
] * 40 + [
    {"SMOKING": "non-smoker", "CANCER": "no", "FAMILY_HISTORY": "no"}
] * 60


def build_kb() -> ProbabilisticKnowledgeBase:
    return ProbabilisticKnowledgeBase.from_data(paper_table())


def updated_mirror(
    kb: ProbabilisticKnowledgeBase,
) -> ProbabilisticKnowledgeBase:
    mirror = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
    builder = TableBuilder(mirror.schema)
    for row in NEW_ROWS:
        builder.add_record(row)
    mirror.update(builder.snapshot())
    return mirror


@pytest.fixture(scope="module")
def server():
    """A read-only server: ``paper`` plus an un-updatable ``frozen`` KB."""
    kb = build_kb()
    frozen = ProbabilisticKnowledgeBase.from_model(
        kb.model, kb.sample_size
    )
    mirror = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
    with serve_in_thread(
        {"paper": kb, "frozen": frozen},
        config=ServeConfig(flush_interval=0.002, max_batch=32),
    ) as handle:
        with ServeClient(handle.host, handle.port) as client:
            yield handle, client, mirror


class TestEndpoints:
    def test_health_reports_hosted_kbs(self, server):
        _handle, client, _mirror = server
        document = client.health()
        assert document["status"] == "ok"
        assert sorted(document["kbs"]) == ["frozen", "paper"]
        assert document["uptime_s"] >= 0

    def test_describe_reports_schema_and_revision(self, server):
        _handle, client, mirror = server
        document = client.describe("paper")
        assert document["attributes"] == {
            name: list(mirror.schema.attribute(name).values)
            for name in mirror.schema.names
        }
        assert document["sample_size"] == mirror.sample_size
        assert document["revision"] == 0
        assert document["fingerprint"] == mirror.model.fingerprint()
        assert document["can_update"] is True

    def test_kbs_and_stats(self, server):
        _handle, client, _mirror = server
        assert sorted(client.kbs()) == ["frozen", "paper"]
        stats = client.stats()
        assert set(stats["kbs"]) == {"frozen", "paper"}
        assert "batcher" in stats["kbs"]["paper"]

    def test_served_queries_are_bit_identical(self, server):
        _handle, client, mirror = server
        for text in QUERIES:
            document = client.query("paper", text)
            assert document["answer"] == mirror.query(text)  # exact
            assert document["fingerprint"] == mirror.model.fingerprint()

    def test_batch_matches_in_process_batch(self, server):
        _handle, client, mirror = server
        document = client.batch("paper", QUERIES)
        assert document["answers"] == mirror.query_many(QUERIES)

    def test_mpe_matches_in_process(self, server):
        _handle, client, mirror = server
        with mirror.session() as session:
            labels, probability = session.most_probable(
                {"SMOKING": "smoker"}
            )
        document = client.mpe("paper", {"SMOKING": "smoker"})
        assert document["assignment"] == labels
        assert document["probability"] == probability

    def test_explain_ranks_influences(self, server):
        _handle, client, mirror = server
        document = client.explain(
            "paper", {"CANCER": "yes"}, {"SMOKING": "smoker"}
        )
        assert document["answer"] == mirror.query(
            "CANCER=yes | SMOKING=smoker"
        )
        swings = [
            abs(influence["swing"]) for influence in document["influences"]
        ]
        assert swings == sorted(swings, reverse=True)


class TestErrorEnvelopes:
    def test_unknown_kb_is_404(self, server):
        _handle, client, _mirror = server
        with pytest.raises(ServedError) as info:
            client.describe("nope")
        assert info.value.status == 404
        assert info.value.kind == "UnknownKnowledgeBase"

    def test_unknown_route_is_404(self, server):
        _handle, client, _mirror = server
        with pytest.raises(ServedError) as info:
            client.request("GET", "/no/such/route")
        assert info.value.status == 404

    def test_wrong_method_is_405(self, server):
        _handle, client, _mirror = server
        with pytest.raises(ServedError) as info:
            client.request("POST", "/health", {"x": 1})
        assert info.value.status == 405
        assert info.value.kind == "MethodNotAllowed"

    def test_bad_query_syntax_is_400(self, server):
        _handle, client, _mirror = server
        with pytest.raises(ServedError) as info:
            client.ask("paper", "P(CANCER=yes)")  # not the query grammar
        assert info.value.status == 400

    def test_missing_query_field_is_400(self, server):
        _handle, client, _mirror = server
        with pytest.raises(ServedError) as info:
            client.request("POST", "/kb/paper/query", {"q": "CANCER=yes"})
        assert info.value.status == 400

    def test_malformed_json_body_is_400(self, server):
        handle, _client, _mirror = server
        connection = http.client.HTTPConnection(handle.host, handle.port)
        connection.request(
            "POST",
            "/kb/paper/query",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        document = json.loads(response.read())
        connection.close()
        assert response.status == 400
        assert "error" in document

    def test_empty_update_is_400(self, server):
        _handle, client, _mirror = server
        with pytest.raises(ServedError) as info:
            client.request("POST", "/kb/paper/update", {})
        assert info.value.status == 400

    def test_update_without_audit_trail_is_422(self, server):
        _handle, client, _mirror = server
        with pytest.raises(ServedError) as info:
            client.update("frozen", rows=NEW_ROWS[:5])
        assert info.value.status == 422

    def test_subscribe_over_plain_http_is_400(self, server):
        _handle, client, _mirror = server
        with pytest.raises(ServedError) as info:
            client.request("GET", "/kb/paper/subscribe")
        assert info.value.status == 400
        assert "Upgrade" in str(info.value)

    def test_subscription_to_unknown_kb_refused_with_envelope(self, server):
        handle, _client, _mirror = server
        with pytest.raises(ServedError) as info:
            ServeClient(handle.host, handle.port).subscribe("nope")
        assert info.value.status == 404

    def test_bad_query_does_not_poison_its_batch_mates(self, server):
        """Error isolation through the coalescing layer: concurrent good
        and bad queries share a flush; only the bad one fails."""
        handle, _client, mirror = server
        results: dict[str, object] = {}

        def fire(text: str) -> None:
            with ServeClient(handle.host, handle.port) as client:
                try:
                    results[text] = client.ask("paper", text)
                except ServedError as error:
                    results[text] = error

        texts = ["CANCER=yes", "CANCER=bogus-label", "CANCER=no"]
        threads = [
            threading.Thread(target=fire, args=(text,)) for text in texts
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results["CANCER=yes"] == mirror.query("CANCER=yes")
        assert results["CANCER=no"] == mirror.query("CANCER=no")
        assert isinstance(results["CANCER=bogus-label"], ServedError)
        assert results["CANCER=bogus-label"].status == 400


class TestHotSwap:
    def test_update_notifies_websocket_subscribers(self):
        kb = build_kb()
        with serve_in_thread({"paper": kb}) as handle:
            with ServeClient(handle.host, handle.port) as client:
                with client.subscribe("paper") as subscription:
                    hello = subscription.recv(timeout=10)
                    assert hello["type"] == "hello"
                    assert hello["revision"] == 0
                    result = client.update("paper", rows=NEW_ROWS)
                    pushed = subscription.recv(timeout=10)
                    assert pushed["type"] == "revision"
                    assert pushed["revision"] == result["revision"] == 1
                    assert pushed["fingerprint"] == result["fingerprint"]
                assert client.describe("paper")["revision"] == 1

    def test_queries_in_flight_across_hot_swap_stay_bit_identical(self):
        """The acceptance burst: clients hammer while an update lands.
        Every served answer must equal the in-process answer of whichever
        revision's fingerprint it reports — no errors, no mixtures."""
        kb = build_kb()
        before = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
        after = updated_mirror(kb)
        served: list[tuple[str, float, int]] = []
        errors: list[Exception] = []
        stop = threading.Event()

        with serve_in_thread(
            {"paper": kb}, config=ServeConfig(flush_interval=0.002)
        ) as handle:

            def hammer() -> None:
                with ServeClient(handle.host, handle.port) as client:
                    index = 0
                    while not stop.is_set():
                        text = QUERIES[index % len(QUERIES)]
                        index += 1
                        try:
                            document = client.query("paper", text)
                        except Exception as error:  # noqa: BLE001
                            errors.append(error)
                            continue
                        served.append(
                            (
                                text,
                                document["answer"],
                                document["fingerprint"],
                            )
                        )

            threads = [
                threading.Thread(target=hammer, daemon=True)
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            control = ServeClient(handle.host, handle.port)
            # Let traffic build, swap mid-flight, let traffic continue.
            while len(served) < 50 and not errors:
                time.sleep(0.005)
            control.update("paper", rows=NEW_ROWS)
            goal = len(served) + 50
            while len(served) < goal and not errors:
                time.sleep(0.005)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            old_pool_stats = control.kb_stats("paper")["pool"]
            control.close()

        assert not errors
        mirrors = {
            before.model.fingerprint(): before,
            after.model.fingerprint(): after,
        }
        for text, answer, fingerprint in served:
            assert answer == mirrors[fingerprint].query(text)  # exact
        # The post-swap pool is the live one; the superseded pool was
        # retired (its stats are not reachable anymore — the entry now
        # reports the fresh pool).
        assert old_pool_stats["retired"] is False

    def test_server_stop_is_idempotent(self):
        handle = serve_in_thread({"paper": build_kb()})
        with ServeClient(handle.host, handle.port) as client:
            assert client.health()["status"] == "ok"
        handle.stop()
        handle.stop()  # second stop is a no-op
