"""Durable serving: a store-backed server resumes where it stopped.

Regression tests for the serve↔store integration: hosted updates persist
through the bound :class:`~repro.store.KBStore` *before* the hot-swap,
and a server restarted on the same store hosts every knowledge base at
its latest persisted revision — same fingerprint, same served answers.
"""

import pytest

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.eval.paper import paper_table
from repro.exceptions import DataError
from repro.serve import ServeClient, ServedError, serve_in_thread
from repro.serve.registry import KnowledgeBaseRegistry
from repro.store import KBStore

QUERIES = [
    "CANCER=yes",
    "CANCER=yes | SMOKING=smoker",
    "SMOKING=smoker | CANCER=yes",
]

NEW_ROWS = [
    {"SMOKING": "smoker", "CANCER": "yes", "FAMILY_HISTORY": "yes"}
] * 40 + [
    {"SMOKING": "non-smoker", "CANCER": "no", "FAMILY_HISTORY": "no"}
] * 60


def build_kb() -> ProbabilisticKnowledgeBase:
    return ProbabilisticKnowledgeBase.from_data(paper_table())


class TestServeRestart:
    def test_restart_resumes_at_latest_persisted_revision(self, tmp_path):
        """Serve → update → kill → restart on the same store: the second
        server hosts the updated state, not the boot-time one."""
        store = KBStore(tmp_path / "kb.db")
        handle = serve_in_thread({"paper": build_kb()}, store=store)
        try:
            with ServeClient(handle.host, handle.port) as client:
                before = client.describe("paper")
                result = client.update("paper", rows=NEW_ROWS)
                after = client.describe("paper")
                answers = {text: client.ask("paper", text) for text in QUERIES}
        finally:
            handle.stop()

        assert after["revision"] == result["revision"]
        assert after["fingerprint"] != before["fingerprint"]

        # Restart with no explicit KBs: everything comes from the store.
        with serve_in_thread({}, store=store) as restarted:
            with ServeClient(restarted.host, restarted.port) as client:
                assert client.kbs() == ["paper"]
                resumed = client.describe("paper")
                assert resumed["revision"] == after["revision"]
                assert resumed["fingerprint"] == after["fingerprint"]
                for text, expected in answers.items():
                    assert client.ask("paper", text) == expected
        store.close()

    def test_update_history_lands_in_the_store(self, tmp_path):
        store = KBStore(tmp_path / "kb.db")
        with serve_in_thread({"paper": build_kb()}, store=store) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.update("paper", rows=NEW_ROWS)
                revision = client.describe("paper")["revision"]
        history = store.history("paper")
        assert history[-1].number == revision
        assert history[-1].artifact_sha is not None
        store.close()

    def test_served_updates_match_inprocess_store_loads(self, tmp_path):
        """The persisted revision is the served revision: loading from
        the store mid-serve answers bit-identically to the live server."""
        store = KBStore(tmp_path / "kb.db")
        with serve_in_thread({"paper": build_kb()}, store=store) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.update("paper", rows=NEW_ROWS)
                mirror = store.load("paper")
                for text in QUERIES:
                    assert client.ask("paper", text) == mirror.query(text)
        store.close()


class TestRegistryStoreBinding:
    def test_add_persists_the_boot_state(self, tmp_path):
        store = KBStore(tmp_path / "kb.db")
        registry = KnowledgeBaseRegistry(store=store)
        try:
            registry.add("paper", build_kb())
        finally:
            registry.close()
        assert store.names() == ["paper"]
        store.close()

    def test_add_all_from_store_skips_already_hosted(self, tmp_path):
        store = KBStore(tmp_path / "kb.db")
        store.save("stored", build_kb())
        registry = KnowledgeBaseRegistry(store=store)
        try:
            registry.add("paper", build_kb())
            added = registry.add_all_from_store()
            assert [entry.name for entry in added] == ["stored"]
            assert sorted(registry.names()) == ["paper", "stored"]
            assert registry.add_all_from_store() == []
        finally:
            registry.close()
        store.close()

    def test_storeless_registry_rejects_add_from_store(self):
        registry = KnowledgeBaseRegistry()
        try:
            with pytest.raises(DataError, match="no store attached"):
                registry.add_from_store("paper")
        finally:
            registry.close()

    def test_update_on_storeless_server_still_works(self):
        """No store bound: updates hot-swap exactly as before."""
        with serve_in_thread({"paper": build_kb()}) as handle:
            with ServeClient(handle.host, handle.port) as client:
                result = client.update("paper", rows=NEW_ROWS)
                assert client.describe("paper")["revision"] == (
                    result["revision"]
                )

    def test_update_against_divergent_store_fails_before_swap(
        self, tmp_path
    ):
        """A lineage conflict surfaces as a served error and the hosted
        model keeps answering with its pre-update state."""
        store = KBStore(tmp_path / "kb.db")
        with serve_in_thread({"paper": build_kb()}, store=store) as handle:
            with ServeClient(handle.host, handle.port) as client:
                before = client.describe("paper")
                # Poison the stored lineage behind the server's back.
                fork = build_kb()
                from repro.data.streaming import TableBuilder

                builder = TableBuilder(fork.schema)
                for row in NEW_ROWS[:30]:
                    builder.add_record(row)
                fork.update(builder.snapshot())
                store.save("paper", fork)
                with pytest.raises(ServedError):
                    client.update("paper", rows=NEW_ROWS)
                after = client.describe("paper")
                assert after["fingerprint"] == before["fingerprint"]
                assert after["revision"] == before["revision"]
        store.close()
