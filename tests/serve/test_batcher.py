"""MicroBatcher contract: coalescing, cutoffs, and error isolation."""

import asyncio
import time

import pytest

from repro.exceptions import DataError
from repro.serve.batcher import MicroBatcher


def run(coro):
    return asyncio.run(coro)


class Recorder:
    """An echo runner that records every flushed batch."""

    def __init__(self, delay: float = 0.0):
        self.batches: list[list] = []
        self.delay = delay

    async def __call__(self, queries):
        self.batches.append(list(queries))
        if self.delay:
            await asyncio.sleep(self.delay)
        return [f"result:{query}" for query in queries]


class TestCoalescing:
    def test_concurrent_submissions_share_one_flush(self):
        runner = Recorder()

        async def scenario():
            batcher = MicroBatcher(runner, flush_interval=0.02, max_batch=64)
            results = await asyncio.gather(
                batcher.submit("a"), batcher.submit("b"), batcher.submit("c")
            )
            return results

        assert run(scenario()) == ["result:a", "result:b", "result:c"]
        assert runner.batches == [["a", "b", "c"]]

    def test_flush_window_waits_for_company(self):
        """The first submission arms the window; the answer arrives only
        after ``flush_interval`` (the lone-request latency cost)."""
        runner = Recorder()

        async def scenario():
            batcher = MicroBatcher(runner, flush_interval=0.05, max_batch=64)
            started = time.perf_counter()
            await batcher.submit("lonely")
            return time.perf_counter() - started

        elapsed = run(scenario())
        assert elapsed >= 0.04
        assert runner.batches == [["lonely"]]

    def test_max_batch_flushes_without_waiting_for_the_window(self):
        runner = Recorder()

        async def scenario():
            # A 10-second window that max_batch=2 must preempt.
            batcher = MicroBatcher(runner, flush_interval=10.0, max_batch=2)
            started = time.perf_counter()
            await asyncio.gather(batcher.submit("a"), batcher.submit("b"))
            return time.perf_counter() - started

        assert run(scenario()) < 5.0
        assert runner.batches == [["a", "b"]]

    def test_zero_interval_dispatches_each_submission_alone(self):
        runner = Recorder()

        async def scenario():
            batcher = MicroBatcher(runner, flush_interval=0.0)
            await batcher.submit("a")
            await batcher.submit("b")
            return batcher.stats

        stats = run(scenario())
        assert runner.batches == [["a"], ["b"]]
        assert stats.flushes == 2
        assert stats.coalesced_flushes == 0

    def test_stats_track_mean_and_max_batch(self):
        runner = Recorder()

        async def scenario():
            batcher = MicroBatcher(runner, flush_interval=0.02)
            await asyncio.gather(*(batcher.submit(i) for i in range(4)))
            await batcher.submit("solo")
            return batcher.stats.to_dict()

        stats = run(scenario())
        assert stats["submitted"] == 5
        assert stats["flushes"] == 2
        assert stats["coalesced_flushes"] == 1
        assert stats["max_batch"] == 4
        assert stats["mean_batch"] == pytest.approx(2.5)
        assert stats["errors"] == 0


class TestErrorIsolation:
    def test_exception_entry_fails_only_its_own_future(self):
        async def runner(queries):
            return [
                ValueError(f"bad:{query}") if query == "bad" else query
                for query in queries
            ]

        async def scenario():
            batcher = MicroBatcher(runner, flush_interval=0.02)
            good, bad, also_good = await asyncio.gather(
                batcher.submit("a"),
                batcher.submit("bad"),
                batcher.submit("c"),
                return_exceptions=True,
            )
            return good, bad, also_good, batcher.stats

        good, bad, also_good, stats = run(scenario())
        assert good == "a"
        assert also_good == "c"
        assert isinstance(bad, ValueError)
        assert stats.errors == 1

    def test_runner_crash_fails_the_whole_flush(self):
        async def runner(queries):
            raise RuntimeError("pool died")

        async def scenario():
            batcher = MicroBatcher(runner, flush_interval=0.02)
            return await asyncio.gather(
                batcher.submit("a"),
                batcher.submit("b"),
                return_exceptions=True,
            )

        results = run(scenario())
        assert all(isinstance(result, RuntimeError) for result in results)

    def test_wrong_result_count_fails_the_flush(self):
        async def runner(queries):
            return ["only-one"]

        async def scenario():
            batcher = MicroBatcher(runner, flush_interval=0.02)
            return await asyncio.gather(
                batcher.submit("a"),
                batcher.submit("b"),
                return_exceptions=True,
            )

        results = run(scenario())
        assert all(isinstance(result, DataError) for result in results)


class TestLifecycle:
    def test_closed_batcher_rejects_submissions(self):
        async def scenario():
            batcher = MicroBatcher(Recorder(), flush_interval=0.02)
            batcher.close()
            with pytest.raises(DataError, match="closed"):
                await batcher.submit("late")

        run(scenario())

    def test_drain_flushes_pending_submissions(self):
        runner = Recorder()

        async def scenario():
            batcher = MicroBatcher(runner, flush_interval=30.0)
            task = asyncio.ensure_future(batcher.submit("parked"))
            await asyncio.sleep(0)  # let the submission buffer
            assert batcher.pending == 1
            await batcher.drain()
            return await task

        assert run(scenario()) == "result:parked"
        assert runner.batches == [["parked"]]

    def test_invalid_knobs_raise(self):
        with pytest.raises(DataError, match="flush_interval"):
            MicroBatcher(Recorder(), flush_interval=-0.1)
        with pytest.raises(DataError, match="max_batch"):
            MicroBatcher(Recorder(), max_batch=0)
