"""SessionPool and registry lifecycle: recycling, retirement, hot-swap.

The satellite contract: ``QuerySession.close()`` is idempotent, pooled
sessions are reaped on hot-swap and shutdown, and no worker processes
leak — a retired pool closes idle sessions immediately and outstanding
ones at checkin.
"""

import asyncio

import pytest

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.exceptions import DataError
from repro.serve import (
    ApiError,
    KnowledgeBaseRegistry,
    ServeConfig,
    SessionPool,
)

NEW_ROWS = [
    {"SMOKING": "smoker", "CANCER": "yes", "FAMILY_HISTORY": "yes"}
] * 30 + [
    {"SMOKING": "non-smoker", "CANCER": "no", "FAMILY_HISTORY": "no"}
] * 70


@pytest.fixture
def kb(table):
    return ProbabilisticKnowledgeBase.from_data(table)


class TestSessionPool:
    def test_checkin_recycles_the_session_warm(self, kb):
        pool = SessionPool(kb.model, size=2)
        session = pool.checkout()
        session.ask("CANCER=yes")
        pool.checkin(session)
        assert pool.checkout() is session  # same warm object, not a rebuild

    def test_checkout_never_blocks_beyond_size(self, kb):
        pool = SessionPool(kb.model, size=1)
        first, second = pool.checkout(), pool.checkout()
        assert first is not second
        assert pool.outstanding == 2
        pool.checkin(first)
        pool.checkin(second)  # overflow: closed, not retained
        assert pool.stats()["idle"] == 1

    def test_run_is_exception_safe(self, kb):
        pool = SessionPool(kb.model, size=1)
        with pytest.raises(ValueError):
            pool.run(lambda session: (_ for _ in ()).throw(ValueError("x")))
        assert pool.outstanding == 0
        assert pool.stats()["idle"] == 1  # the session came back

    def test_retire_closes_idle_and_refuses_checkouts(self, kb):
        pool = SessionPool(kb.model, size=2)
        pool.checkin(pool.checkout())
        pool.retire()
        assert pool.retired
        assert pool.stats()["idle"] == 0
        with pytest.raises(DataError, match="retired"):
            pool.checkout()
        pool.retire()  # idempotent

    def test_outstanding_sessions_reaped_at_checkin(self, kb):
        """Hot-swap shape: retire while a request is mid-flight — the
        session finishes its work, then closes instead of recycling."""
        pool = SessionPool(kb.model, size=2, session_workers=2)
        session = pool.checkout()
        # Start the process-backed batch path so there is something real
        # to reap (worker processes spawn lazily on first batch call).
        answers = session.batch(["CANCER=yes", "CANCER=no"])
        assert len(answers) == 2
        assert session._parallel is not None
        pool.retire()
        pool.checkin(session)
        assert session._parallel is None  # workers stopped
        assert pool.stats()["idle"] == 0

    def test_query_session_close_is_idempotent(self, kb):
        session = kb.session(max_workers=2)
        session.batch(["CANCER=yes"])
        session.close()
        session.close()  # second close is a no-op, not an error
        # The session stays usable; a later batch restarts workers.
        assert session.ask("CANCER=yes") == kb.query("CANCER=yes")

    def test_invalid_size_raises(self, kb):
        with pytest.raises(DataError, match="pool size"):
            SessionPool(kb.model, size=0)


class TestRegistry:
    def test_add_get_and_names(self, kb):
        with KnowledgeBaseRegistry() as registry:
            entry = registry.add("paper", kb)
            assert registry.get("paper") is entry
            assert registry.names() == ["paper"]

    def test_unknown_name_is_a_404(self, kb):
        with KnowledgeBaseRegistry() as registry:
            registry.add("paper", kb)
            with pytest.raises(ApiError) as info:
                registry.get("nope")
            assert info.value.status == 404

    def test_duplicate_and_invalid_names_rejected(self, kb):
        with KnowledgeBaseRegistry() as registry:
            registry.add("paper", kb)
            with pytest.raises(DataError, match="already hosted"):
                registry.add("paper", kb)
            with pytest.raises(DataError, match="non-empty"):
                registry.add("", kb)
            with pytest.raises(DataError, match="no '/'"):
                registry.add("a/b", kb)

    def test_close_is_idempotent_and_reaps_pools(self, kb):
        registry = KnowledgeBaseRegistry()
        entry = registry.add("paper", kb)
        entry.pool.checkin(entry.pool.checkout())
        registry.close()
        assert entry.pool.retired
        assert entry.pool.stats()["idle"] == 0
        registry.close()  # second close is a no-op
        with pytest.raises(DataError, match="closed"):
            registry.add("late", kb)


class TestHostedKB:
    def test_served_query_matches_in_process_exactly(self, kb):
        expected = kb.query("CANCER=yes | SMOKING=smoker")

        async def scenario(registry):
            entry = registry.add("paper", kb)
            answer, fingerprint = await entry.query(
                "CANCER=yes | SMOKING=smoker"
            )
            return answer, fingerprint, entry.fingerprint()

        with KnowledgeBaseRegistry() as registry:
            answer, fingerprint, current = asyncio.run(scenario(registry))
        assert answer == expected  # exact float equality, not approx
        assert fingerprint == current

    def test_update_swaps_pool_and_notifies_subscribers(self, kb):
        mirror = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())

        async def scenario(registry):
            entry = registry.add("paper", kb)
            old_pool = entry.pool
            old_fingerprint = entry.fingerprint()
            queue = entry.subscribe()
            payload = await entry.update(rows=NEW_ROWS)
            answer, fingerprint = await entry.query("CANCER=yes")
            return (
                payload,
                queue.get_nowait(),
                old_pool,
                old_fingerprint,
                entry,
                answer,
                fingerprint,
            )

        with KnowledgeBaseRegistry() as registry:
            (
                payload,
                pushed,
                old_pool,
                old_fingerprint,
                entry,
                answer,
                fingerprint,
            ) = asyncio.run(scenario(registry))

        assert pushed == payload
        assert payload["type"] == "revision"
        assert payload["added_samples"] == len(NEW_ROWS)
        assert old_pool.retired
        assert entry.pool is not old_pool
        assert entry.fingerprint() != old_fingerprint
        assert entry.updates_served == 1
        # Served answers now match an in-process mirror that absorbed the
        # same rows — bit-for-bit.
        from repro.data.streaming import TableBuilder

        builder = TableBuilder(mirror.schema)
        for row in NEW_ROWS:
            builder.add_record(row)
        mirror.update(builder.snapshot())
        assert fingerprint == mirror.model.fingerprint()
        assert answer == mirror.query("CANCER=yes")

    def test_empty_update_is_a_422(self, kb):
        async def scenario(registry):
            entry = registry.add("paper", kb)
            await entry.update(rows=[])

        with KnowledgeBaseRegistry() as registry:
            with pytest.raises(ApiError) as info:
                asyncio.run(scenario(registry))
        assert info.value.status == 422

    def test_stats_report_counters_and_batcher(self, kb):
        async def scenario(registry):
            entry = registry.add("paper", kb)
            entry.count("query")
            await entry.query("CANCER=yes")
            return entry.stats()

        with KnowledgeBaseRegistry() as registry:
            stats = asyncio.run(scenario(registry))
        assert stats["requests"] == {"query": 1}
        assert stats["batcher"]["submitted"] == 1
        assert stats["pool"]["retired"] is False
