"""Property test: served responses are bit-identical to in-process queries.

Hypothesis generates arbitrary well-formed queries over the paper's
schema (any target attribute/value, any evidence subset); each one goes
over a real socket through the coalescing batcher and comes back as a
JSON float.  ``json.dumps`` round-trips binary64 exactly (shortest-repr
serialization), so the equality below is exact — not approx — for every
generated query.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.eval.paper import paper_schema, paper_table
from repro.serve import ServeClient, ServeConfig, serve_in_thread

SCHEMA = paper_schema()
SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def query_texts(draw):
    """Arbitrary ``A=x | B=y, C=z`` strings over the paper's schema."""
    names = list(SCHEMA.names)
    target = draw(st.sampled_from(names))
    target_value = draw(st.sampled_from(SCHEMA.attribute(target).values))
    others = [name for name in names if name != target]
    given_names = draw(
        st.lists(st.sampled_from(others), unique=True, max_size=len(others))
    )
    parts = [
        f"{name}={draw(st.sampled_from(SCHEMA.attribute(name).values))}"
        for name in given_names
    ]
    text = f"{target}={target_value}"
    if parts:
        text += " | " + ", ".join(parts)
    return text


@pytest.fixture(scope="module")
def served():
    kb = ProbabilisticKnowledgeBase.from_data(paper_table())
    mirror = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
    with serve_in_thread(
        {"paper": kb}, config=ServeConfig(flush_interval=0.001)
    ) as handle:
        with ServeClient(handle.host, handle.port) as client:
            yield client, mirror


@given(text=query_texts())
@SETTINGS
def test_served_answer_equals_in_process_answer(served, text):
    client, mirror = served
    assert client.ask("paper", text) == mirror.query(text)  # exact


@given(texts=st.lists(query_texts(), min_size=1, max_size=6))
@SETTINGS
def test_served_batch_equals_in_process_batch(served, texts):
    client, mirror = served
    document = client.batch("paper", texts)
    assert document["answers"] == mirror.query_many(texts)
