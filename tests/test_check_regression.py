"""Tests for benchmarks/check_regression.py — the perf-regression gate."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_regression"] = module
    spec.loader.exec_module(module)
    yield module
    del sys.modules["check_regression"]


def record(
    smoke=True,
    warm=8.0,
    cpus=4,
    parallel_cold=2.5,
    scenario_passed=True,
):
    return {
        "timestamp": "2026-01-01T00:00:00Z",
        "smoke": smoke,
        "metrics": {"scan_speedup_warm": warm},
        "parallel": {
            "workers": 4,
            "cpus": cpus,
            "scan_speedup_cold": parallel_cold,
            "scan_speedup_warm": parallel_cold,
            "query_speedup_cold": parallel_cold,
        },
        "scenarios": [
            {
                "scenario": "independence",
                "passed": scenario_passed,
                "gate_failures": []
                if scenario_passed
                else ["precision 0.0 < 1.0"],
            }
        ],
    }


def write(path, records):
    path.write_text(json.dumps(records))
    return str(path)


class TestRatioComparison:
    def test_within_tolerance_passes(self, gate, tmp_path):
        baseline = write(tmp_path / "base.json", [record(warm=8.0)])
        candidate = write(tmp_path / "cand.json", [record(warm=6.0)])
        assert (
            gate.main(["--baseline", baseline, "--candidate", candidate])
            == 0
        )

    def test_degradation_over_tolerance_fails(self, gate, tmp_path, capsys):
        baseline = write(tmp_path / "base.json", [record(warm=8.0)])
        candidate = write(tmp_path / "cand.json", [record(warm=4.0)])
        assert (
            gate.main(["--baseline", baseline, "--candidate", candidate])
            == 1
        )
        assert "scan_speedup_warm" in capsys.readouterr().err

    def test_baseline_is_minimum_over_matching_records(self, gate, tmp_path):
        # Two baseline runs, one slow: the candidate only has to beat the
        # *worst* baseline by the tolerance, damping one-off noise.
        baseline = write(
            tmp_path / "base.json", [record(warm=9.0), record(warm=5.0)]
        )
        candidate = write(tmp_path / "cand.json", [record(warm=4.0)])
        assert (
            gate.main(["--baseline", baseline, "--candidate", candidate])
            == 0
        )

    def test_smoke_and_full_records_not_mixed(self, gate, tmp_path):
        baseline = write(
            tmp_path / "base.json",
            [record(smoke=False, warm=20.0), record(smoke=True, warm=6.0)],
        )
        candidate = write(
            tmp_path / "cand.json", [record(smoke=True, warm=5.5)]
        )
        assert (
            gate.main(["--baseline", baseline, "--candidate", candidate])
            == 0
        )

    def test_no_matching_mode_means_no_ratio_floor(self, gate, tmp_path):
        # A full-size-only baseline sets no floor for a smoke candidate:
        # toy-size timings are never judged against full-size ones.
        baseline = write(
            tmp_path / "base.json", [record(smoke=False, warm=20.0)]
        )
        candidate = write(
            tmp_path / "cand.json", [record(smoke=True, warm=2.0)]
        )
        output = tmp_path / "diff.json"
        assert (
            gate.main(
                [
                    "--baseline",
                    baseline,
                    "--candidate",
                    candidate,
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        report = json.loads(output.read_text())
        assert all(
            row["status"] == "no comparable baseline"
            for row in report["ratios"]
        )

    def test_parallel_ratios_skipped_on_single_cpu_candidate(
        self, gate, tmp_path, capsys
    ):
        baseline = write(tmp_path / "base.json", [record(parallel_cold=3.0)])
        candidate = write(
            tmp_path / "cand.json",
            [record(cpus=1, parallel_cold=0.6)],
        )
        assert (
            gate.main(["--baseline", baseline, "--candidate", candidate])
            == 0
        )
        assert "skipped" in capsys.readouterr().out

    def test_single_cpu_baseline_sets_no_parallel_floor(self, gate, tmp_path):
        baseline = write(
            tmp_path / "base.json", [record(cpus=1, parallel_cold=0.9)]
        )
        candidate = write(
            tmp_path / "cand.json", [record(cpus=4, parallel_cold=0.5)]
        )
        assert (
            gate.main(["--baseline", baseline, "--candidate", candidate])
            == 0
        )

    def test_parallel_regression_on_multicore_fails(self, gate, tmp_path):
        baseline = write(tmp_path / "base.json", [record(parallel_cold=3.0)])
        candidate = write(
            tmp_path / "cand.json", [record(parallel_cold=1.0)]
        )
        assert (
            gate.main(["--baseline", baseline, "--candidate", candidate])
            == 1
        )


class TestScenarioGates:
    def test_gate_regression_fails(self, gate, tmp_path, capsys):
        baseline = write(tmp_path / "base.json", [record()])
        candidate = write(
            tmp_path / "cand.json", [record(scenario_passed=False)]
        )
        assert (
            gate.main(["--baseline", baseline, "--candidate", candidate])
            == 1
        )
        assert "independence" in capsys.readouterr().err

    def test_known_bad_baseline_scenario_does_not_block(self, gate, tmp_path):
        # A scenario already failing in the committed baseline is not a
        # *regression*; the gate only fails on newly-failing scenarios.
        baseline = write(
            tmp_path / "base.json", [record(scenario_passed=False)]
        )
        candidate = write(
            tmp_path / "cand.json", [record(scenario_passed=False)]
        )
        assert (
            gate.main(["--baseline", baseline, "--candidate", candidate])
            == 0
        )


class TestRegistryBaseline:
    """--registry and the legacy --baseline shim reach the same verdict."""

    def _registry(self, tmp_path, records):
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.store import RunRegistry

        path = tmp_path / "runs.db"
        with RunRegistry(path) as registry:
            for entry in records:
                registry.record(
                    kind="benchmark",
                    metrics=entry,
                    smoke=entry.get("smoke", False),
                    cpus=(entry.get("parallel") or {}).get("cpus", 0),
                    created_at=entry["timestamp"],
                )
        return str(path)

    @pytest.mark.parametrize("warm", [6.0, 4.0])
    def test_same_verdict_as_flat_file(self, gate, tmp_path, warm):
        records = [record(warm=8.0), record(warm=9.0)]
        baseline = write(tmp_path / "base.json", records)
        registry = self._registry(tmp_path, records)
        candidate = write(tmp_path / "cand.json", [record(warm=warm)])
        flat_exit = gate.main(
            [
                "--baseline",
                baseline,
                "--candidate",
                candidate,
                "--output",
                str(tmp_path / "flat.json"),
            ]
        )
        registry_exit = gate.main(
            [
                "--registry",
                registry,
                "--candidate",
                candidate,
                "--output",
                str(tmp_path / "reg.json"),
            ]
        )
        assert registry_exit == flat_exit
        flat = json.loads((tmp_path / "flat.json").read_text())
        reg = json.loads((tmp_path / "reg.json").read_text())
        assert reg["passed"] == flat["passed"]
        assert reg["ratios"] == flat["ratios"]
        assert reg["scenarios"] == flat["scenarios"]

    def test_flat_file_path_prints_deprecation_note(
        self, gate, tmp_path, capsys
    ):
        baseline = write(tmp_path / "base.json", [record()])
        candidate = write(tmp_path / "cand.json", [record()])
        gate.main(["--baseline", baseline, "--candidate", candidate])
        assert "deprecated" in capsys.readouterr().err

    def test_exactly_one_baseline_source_required(self, gate, tmp_path):
        candidate = write(tmp_path / "cand.json", [record()])
        with pytest.raises(SystemExit):
            gate.main(["--candidate", candidate])
        baseline = write(tmp_path / "base.json", [record()])
        registry = self._registry(tmp_path, [record()])
        with pytest.raises(SystemExit):
            gate.main(
                [
                    "--baseline",
                    baseline,
                    "--registry",
                    registry,
                    "--candidate",
                    candidate,
                ]
            )

    def test_empty_registry_warns_and_passes_without_floors(
        self, gate, tmp_path, capsys
    ):
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.store import RunRegistry

        path = tmp_path / "empty.db"
        RunRegistry(path).close()
        candidate = write(tmp_path / "cand.json", [record(warm=0.1)])
        assert (
            gate.main(["--registry", str(path), "--candidate", candidate])
            == 0
        )
        captured = capsys.readouterr()
        assert "holds no smoke=True benchmark runs" in captured.err
        assert "no comparable baseline" in captured.out


class TestReportArtifact:
    def test_output_written_with_verdict(self, gate, tmp_path):
        baseline = write(tmp_path / "base.json", [record(warm=8.0)])
        candidate = write(tmp_path / "cand.json", [record(warm=4.0)])
        output = tmp_path / "diff.json"
        gate.main(
            [
                "--baseline",
                baseline,
                "--candidate",
                candidate,
                "--output",
                str(output),
            ]
        )
        report = json.loads(output.read_text())
        assert report["passed"] is False
        assert any(
            row["status"] == "regressed" for row in report["ratios"]
        )
        assert report["regressions"]

    def test_custom_tolerance(self, gate, tmp_path):
        baseline = write(tmp_path / "base.json", [record(warm=8.0)])
        candidate = write(tmp_path / "cand.json", [record(warm=4.5)])
        assert (
            gate.main(
                [
                    "--baseline",
                    baseline,
                    "--candidate",
                    candidate,
                    "--tolerance",
                    "0.5",
                ]
            )
            == 0
        )
