"""Tests for the run registry: recording, importing, baseline queries."""

import json
from pathlib import Path

import pytest

from repro.discovery.config import DiscoveryConfig
from repro.exceptions import DataError
from repro.store import RunRegistry, config_hash, current_git_sha

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
COMMITTED_TRAJECTORY = REPO_ROOT / "BENCH_discovery.json"


@pytest.fixture
def registry(tmp_path) -> RunRegistry:
    with RunRegistry(tmp_path / "runs.db") as registry:
        yield registry


class TestRecording:
    def test_record_and_get(self, registry):
        record = registry.record(
            kind="benchmark",
            metrics={"speedup": 4.5},
            smoke=True,
            cpus=4,
            config_hash="abc",
            git_sha="deadbeef",
        )
        assert len(record.run_id) == 16
        fetched = registry.get(record.run_id)
        assert fetched == record
        assert fetched.metrics == {"speedup": 4.5}

    def test_identical_content_collapses_to_one_run(self, registry):
        kwargs = dict(
            kind="benchmark",
            metrics={"speedup": 4.5},
            smoke=True,
            cpus=4,
            created_at="2026-01-01T00:00:00Z",
        )
        first = registry.record(**kwargs)
        second = registry.record(**kwargs)
        assert first.run_id == second.run_id
        assert len(registry.runs()) == 1

    def test_any_content_difference_yields_a_fresh_id(self, registry):
        base = dict(
            kind="benchmark",
            metrics={"speedup": 4.5},
            smoke=True,
            cpus=4,
            created_at="2026-01-01T00:00:00Z",
        )
        registry.record(**base)
        registry.record(**{**base, "metrics": {"speedup": 4.6}})
        assert len(registry.runs()) == 2

    def test_kind_and_smoke_filters(self, registry):
        registry.record(kind="benchmark", metrics={}, smoke=True, cpus=1)
        registry.record(kind="benchmark", metrics={}, smoke=False, cpus=1)
        registry.record(kind="scenario", metrics={}, smoke=True, cpus=1)
        assert len(registry.runs()) == 3
        assert len(registry.runs(kind="benchmark")) == 2
        assert len(registry.runs(smoke=True)) == 2
        assert len(registry.runs(kind="benchmark", smoke=False)) == 1

    def test_unknown_run_id_fails(self, registry):
        with pytest.raises(DataError, match="no run"):
            registry.get("0" * 16)

    def test_non_dict_metrics_rejected(self, registry):
        with pytest.raises(DataError, match="metrics must be a dict"):
            registry.record(
                kind="benchmark", metrics=[1, 2], smoke=True, cpus=1
            )


class TestImporter:
    def test_committed_trajectory_imports_and_reimports_idempotently(
        self, registry
    ):
        added = registry.import_trajectory(COMMITTED_TRAJECTORY)
        records = json.loads(COMMITTED_TRAJECTORY.read_text())
        assert added == len(records)
        assert registry.import_trajectory(COMMITTED_TRAJECTORY) == 0
        assert len(registry.runs(kind="benchmark")) == len(records)

    def test_imported_runs_keep_their_timestamps_and_cpus(self, registry):
        registry.import_trajectory(COMMITTED_TRAJECTORY)
        records = json.loads(COMMITTED_TRAJECTORY.read_text())
        by_time = {run.created_at: run for run in registry.runs()}
        for entry in records:
            run = by_time[entry["timestamp"]]
            assert run.metrics == entry
            assert run.smoke == bool(entry.get("smoke", False))
            assert run.cpus == (entry.get("parallel") or {}).get("cpus", 0)

    def test_malformed_trajectory_fails_loudly(self, registry, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(DataError, match="cannot import"):
            registry.import_trajectory(path)
        path.write_text('[{"ok": true}, 7]')
        with pytest.raises(DataError, match="non-record entry"):
            registry.import_trajectory(path)


class TestBaselineQuery:
    def test_baseline_records_filters_by_smoke_flag(self, registry):
        registry.import_trajectory(COMMITTED_TRAJECTORY)
        records = json.loads(COMMITTED_TRAJECTORY.read_text())
        for smoke in (True, False):
            expected = [
                entry
                for entry in records
                if bool(entry.get("smoke", False)) == smoke
            ]
            assert registry.baseline_records(smoke) == expected

    def test_scenario_runs_never_pollute_baselines(self, registry):
        registry.record(kind="scenario", metrics={"x": 1}, smoke=True, cpus=1)
        assert registry.baseline_records(True) == []


class TestConfigHash:
    def test_machine_local_fields_stay_excluded(self):
        """The portability contract the registry's comparability rests on:
        two machines running the same *statistical* configuration hash
        identically even with different parallelism knobs."""
        base = DiscoveryConfig()
        assert config_hash(base) == config_hash(
            DiscoveryConfig(max_workers=8, parallel_scan_threshold=1)
        )
        for knob in ("max_workers", "parallel_scan_threshold"):
            assert knob not in base.to_dict()

    def test_statistical_fields_do_change_the_hash(self):
        assert config_hash(DiscoveryConfig(max_order=2)) != config_hash(
            DiscoveryConfig(max_order=3)
        )

    def test_dict_configs_hash_by_content(self):
        assert config_hash({"suite": "run_all", "smoke": True}) == (
            config_hash({"smoke": True, "suite": "run_all"})
        )


class TestGitSha:
    def test_current_git_sha_in_this_checkout(self):
        sha = current_git_sha()
        # Either a real 40-hex sha (we run inside the repo) or "" when
        # git is unavailable; never an exception.
        assert sha == "" or (
            len(sha) == 40 and all(c in "0123456789abcdef" for c in sha)
        )

    def test_github_sha_env_wins(self, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "feedface")
        assert current_git_sha() == "feedface"
