"""Tests for the record models and the dataclass→DDL derivation."""

from dataclasses import dataclass, field

import pytest

from repro.exceptions import DataError
from repro.store.db import StoreDB
from repro.store.records import (
    ArtifactRecord,
    KBRecord,
    RevisionRecord,
    RunRecord,
    create_table_sql,
    from_row,
    record_columns,
    table_name,
    to_row,
)


@dataclass(frozen=True)
class Sample:
    __table__ = "samples"

    key: str = field(metadata={"pk": True})
    count: int
    ratio: float
    flag: bool
    payload: dict
    items: list
    note: str | None


class TestDDLDerivation:
    def test_affinities_nullability_and_primary_key(self):
        sql = create_table_sql(Sample)
        assert sql.startswith("CREATE TABLE IF NOT EXISTS samples ")
        assert "key TEXT NOT NULL" in sql
        assert "count INTEGER NOT NULL" in sql
        assert "ratio REAL NOT NULL" in sql
        assert "flag INTEGER NOT NULL" in sql
        assert "payload TEXT NOT NULL" in sql
        assert "items TEXT NOT NULL" in sql
        # Optional columns drop NOT NULL.
        assert "note TEXT," in sql or sql.endswith("note TEXT)")
        assert "note TEXT NOT NULL" not in sql
        assert "PRIMARY KEY (key)" in sql

    def test_composite_primary_key(self):
        sql = create_table_sql(RevisionRecord)
        assert "PRIMARY KEY (kb_name, number)" in sql

    def test_columns_follow_field_order(self):
        assert record_columns(KBRecord) == [
            "name",
            "created_at",
            "updated_at",
            "latest_revision",
            "latest_artifact",
        ]

    def test_table_names(self):
        assert table_name(KBRecord) == "kbs"
        assert table_name(ArtifactRecord) == "artifacts"
        assert table_name(RevisionRecord) == "revisions"
        assert table_name(RunRecord) == "runs"

    def test_missing_table_name_rejected(self):
        @dataclass(frozen=True)
        class Nameless:
            value: int

        with pytest.raises(DataError, match="__table__"):
            table_name(Nameless)

    def test_unsupported_column_type_rejected(self):
        @dataclass(frozen=True)
        class Bad:
            __table__ = "bad"

            value: bytes

        with pytest.raises(DataError, match="unsupported column type"):
            create_table_sql(Bad)


class TestRowConversion:
    def test_round_trip_preserves_every_field(self):
        record = Sample(
            key="k",
            count=3,
            ratio=0.5,
            flag=True,
            payload={"b": 2, "a": [1, 2]},
            items=[1, "two"],
            note=None,
        )
        assert from_row(Sample, to_row(record)) == record

    def test_bool_stored_as_int(self):
        row = to_row(
            Sample(
                key="k",
                count=0,
                ratio=0.0,
                flag=True,
                payload={},
                items=[],
                note=None,
            )
        )
        assert row[3] == 1 and not isinstance(row[3], bool)

    def test_json_columns_stored_as_canonical_text(self):
        row = to_row(
            Sample(
                key="k",
                count=0,
                ratio=0.0,
                flag=False,
                payload={"b": 1, "a": 2},
                items=[],
                note="n",
            )
        )
        # Canonical JSON: sorted keys, compact separators.
        assert row[4] == '{"a":2,"b":1}'


class TestStoreDB:
    def test_insert_select_round_trip_through_sqlite(self, tmp_path):
        with StoreDB(tmp_path / "s.db", (Sample,)) as db:
            record = Sample(
                key="k",
                count=7,
                ratio=1.25,
                flag=False,
                payload={"x": [1, None, "y"]},
                items=["a", {"b": 2}],
                note=None,
            )
            db.insert(record)
            assert db.select(Sample) == [record]
            assert db.select_one(Sample, "key = ?", ("k",)) == record
            assert db.select_one(Sample, "key = ?", ("missing",)) is None

    def test_insert_ignore_reports_whether_inserted(self, tmp_path):
        with StoreDB(tmp_path / "s.db", (Sample,)) as db:
            record = Sample("k", 1, 0.0, False, {}, [], None)
            assert db.insert_ignore(record) is True
            assert db.insert_ignore(record) is False
            assert len(db.select(Sample)) == 1

    def test_replace_upserts_on_primary_key(self, tmp_path):
        with StoreDB(tmp_path / "s.db", (Sample,)) as db:
            db.insert(Sample("k", 1, 0.0, False, {}, [], None))
            db.insert(
                Sample("k", 2, 0.0, False, {}, [], None), replace=True
            )
            assert db.select_one(Sample, "key = ?", ("k",)).count == 2

    def test_tables_persist_across_connections(self, tmp_path):
        path = tmp_path / "s.db"
        with StoreDB(path, (Sample,)) as db:
            db.insert(Sample("k", 1, 0.0, False, {}, [], None))
        with StoreDB(path, (Sample,)) as db:
            assert db.select_one(Sample, "key = ?", ("k",)).count == 1
