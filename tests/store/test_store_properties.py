"""Property-based tests (hypothesis) for the store's round-trip contract.

Two guarantees the persistence layer stakes its design on:

- store→load→store of a knowledge base with several revisions is
  byte-identical in canonical JSON (the artifact + revision-row
  reassembly loses nothing);
- content addresses are stable: the hash depends only on the JSON
  *content*, never on dict insertion order, and Python's shortest
  round-trip float repr makes it platform-independent.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.core.serialization import (
    canonical_bytes,
    canonical_json,
    content_hash,
)
from repro.data.dataset import Dataset
from repro.eval.paper import paper_table
from repro.store import KBStore

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

JSON_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**12), 10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
)

JSON_DOCUMENTS = st.recursive(
    JSON_SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def _shuffle_keys(document, rng):
    """The same document with every dict's insertion order permuted."""
    if isinstance(document, dict):
        keys = list(document)
        rng.shuffle(keys)
        return {key: _shuffle_keys(document[key], rng) for key in keys}
    if isinstance(document, list):
        return [_shuffle_keys(item, rng) for item in document]
    return document


class TestRoundTripProperty:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**32 - 1),
        deltas=st.lists(st.integers(50, 400), min_size=3, max_size=4),
    )
    def test_multi_revision_kb_survives_store_load_store(
        self, tmp_path_factory, seed, deltas
    ):
        """A KB taken through >= 3 update revisions, stored, loaded, and
        stored again is byte-identical in canonical JSON at every step."""
        table = paper_table()
        rng = np.random.default_rng(seed)
        kb = ProbabilisticKnowledgeBase.from_data(table)
        for count in deltas:
            delta = Dataset.from_joint(
                kb.schema, table.probabilities(), count, rng
            )
            kb.update(delta)
        assert len(kb.revisions) >= 3

        tmp_path = tmp_path_factory.mktemp("store")
        with KBStore(tmp_path / "kb.db") as store:
            sha = store.save("kb", kb)
            loaded = store.load("kb")
            resaved_sha = store.save("kb", loaded)
        assert canonical_json(loaded.to_dict()) == canonical_json(
            kb.to_dict()
        )
        # Re-storing the loaded copy reproduces the same content address.
        assert resaved_sha == sha

    @SETTINGS
    @given(
        seed=st.integers(0, 2**32 - 1),
        count=st.integers(50, 300),
    )
    def test_every_captured_revision_reloads_exactly(
        self, tmp_path_factory, seed, count
    ):
        table = paper_table()
        rng = np.random.default_rng(seed)
        kb = ProbabilisticKnowledgeBase.from_data(table)
        tmp_path = tmp_path_factory.mktemp("store")
        with KBStore(tmp_path / "kb.db") as store:
            checkpoints = {}
            store.save("kb", kb)
            checkpoints[store.describe("kb").latest_revision] = (
                canonical_json(kb.to_dict())
            )
            for _ in range(3):
                delta = Dataset.from_joint(
                    kb.schema, table.probabilities(), count, rng
                )
                kb.update(delta)
                store.save("kb", kb)
                checkpoints[store.describe("kb").latest_revision] = (
                    canonical_json(kb.to_dict())
                )
            for number, expected in checkpoints.items():
                loaded = store.load("kb", revision=number)
                assert canonical_json(loaded.to_dict()) == expected


class TestContentHashStability:
    @settings(max_examples=100, deadline=None)
    @given(document=JSON_DOCUMENTS, seed=st.integers(0, 2**32 - 1))
    def test_hash_is_invariant_under_dict_key_order(self, document, seed):
        rng = np.random.default_rng(seed)
        shuffled = _shuffle_keys(document, rng)
        assert content_hash(shuffled) == content_hash(document)
        assert canonical_bytes(shuffled) == canonical_bytes(document)

    @settings(max_examples=100, deadline=None)
    @given(document=JSON_DOCUMENTS)
    def test_canonical_json_round_trips_through_the_parser(self, document):
        import json

        reparsed = json.loads(canonical_json(document))
        assert canonical_json(reparsed) == canonical_json(document)

    @settings(max_examples=100, deadline=None)
    @given(
        value=st.floats(allow_nan=False, allow_infinity=False, width=64)
    )
    def test_float_reprs_are_shortest_round_trip_exact(self, value):
        """Python's float repr is IEEE-754 shortest-round-trip: parsing
        the canonical text recovers the exact bit pattern, which is what
        makes artifact hashes portable across platforms."""
        import json

        assert json.loads(canonical_json(value)) == value
