"""Tests for KBStore: revisions, content-addressed artifacts, diffs."""

import pytest

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.core.serialization import canonical_json, content_hash
from repro.data.streaming import TableBuilder
from repro.eval.paper import paper_table
from repro.exceptions import DataError
from repro.store import KBStore

NEW_ROWS = [
    {"SMOKING": "smoker", "CANCER": "yes", "FAMILY_HISTORY": "yes"}
] * 40 + [
    {"SMOKING": "non-smoker", "CANCER": "no", "FAMILY_HISTORY": "no"}
] * 60


def build_kb() -> ProbabilisticKnowledgeBase:
    return ProbabilisticKnowledgeBase.from_data(paper_table())


def update_kb(kb: ProbabilisticKnowledgeBase, rows=NEW_ROWS):
    builder = TableBuilder(kb.schema)
    for row in rows:
        builder.add_record(row)
    return kb.update(builder.snapshot())


@pytest.fixture
def store(tmp_path) -> KBStore:
    with KBStore(tmp_path / "kb.db") as store:
        yield store


class TestSaveLoad:
    def test_round_trip_is_byte_identical(self, store):
        kb = build_kb()
        update_kb(kb)
        store.save("paper", kb)
        loaded = store.load("paper")
        assert canonical_json(loaded.to_dict()) == canonical_json(
            kb.to_dict()
        )
        assert loaded.model.fingerprint() == kb.model.fingerprint()

    def test_artifact_sha_is_the_content_hash(self, store):
        kb = build_kb()
        sha = store.save("paper", kb)
        document = kb.to_dict()
        document.pop("revisions")
        assert sha == content_hash(document)
        assert store.describe("paper").latest_artifact == sha

    def test_loaded_kb_stays_updatable(self, store):
        kb = build_kb()
        store.save("paper", kb)
        loaded = store.load("paper")
        revision = update_kb(loaded)
        store.save("paper", loaded)
        assert store.describe("paper").latest_revision == revision.number

    def test_unknown_name_lists_stored_names(self, store):
        store.save("paper", build_kb())
        with pytest.raises(DataError, match=r"'paper'"):
            store.load("nope")

    def test_invalid_names_rejected(self, store):
        kb = build_kb()
        with pytest.raises(DataError, match="non-empty"):
            store.save("", kb)
        with pytest.raises(DataError, match="non-empty"):
            store.save("a/b", kb)

    def test_reopen_across_connections(self, tmp_path):
        path = tmp_path / "kb.db"
        kb = build_kb()
        update_kb(kb)
        with KBStore(path) as store:
            store.save("paper", kb)
        with KBStore(path) as store:
            loaded = store.load("paper")
        assert canonical_json(loaded.to_dict()) == canonical_json(
            kb.to_dict()
        )


class TestRevisionHistory:
    def test_every_save_appends_unseen_revisions(self, store):
        kb = build_kb()
        store.save("paper", kb)
        first = len(store.history("paper"))
        update_kb(kb)
        update_kb(kb, rows=NEW_ROWS[:50])
        store.save("paper", kb)
        history = store.history("paper")
        assert len(history) == first + 2
        assert [row.number for row in history] == list(range(len(history)))

    def test_latest_revision_carries_the_artifact(self, store):
        kb = build_kb()
        store.save("paper", kb)
        update_kb(kb)
        sha = store.save("paper", kb)
        history = store.history("paper")
        assert history[-1].artifact_sha == sha

    def test_unsaved_intermediate_revision_has_no_artifact(self, store):
        kb = build_kb()
        store.save("paper", kb)
        update_kb(kb)  # never saved at this state
        update_kb(kb, rows=NEW_ROWS[:50])
        store.save("paper", kb)
        history = store.history("paper")
        assert history[-2].artifact_sha is None
        assert history[-1].artifact_sha is not None

    def test_load_at_older_captured_revision(self, store):
        kb = build_kb()
        store.save("paper", kb)
        checkpoint = canonical_json(kb.to_dict())
        number = store.describe("paper").latest_revision
        update_kb(kb)
        store.save("paper", kb)
        old = store.load("paper", revision=number)
        assert canonical_json(old.to_dict()) == checkpoint

    def test_load_at_uncaptured_revision_names_the_captured_ones(
        self, store
    ):
        kb = build_kb()
        store.save("paper", kb)
        update_kb(kb)
        missing = kb.revisions[-1].number
        update_kb(kb, rows=NEW_ROWS[:50])
        store.save("paper", kb)
        with pytest.raises(DataError, match="no stored artifact"):
            store.load("paper", revision=missing)

    def test_load_at_unknown_revision_fails(self, store):
        store.save("paper", build_kb())
        with pytest.raises(DataError, match="no revision 99"):
            store.load("paper", revision=99)

    def test_noop_revisions_share_one_artifact(self, store):
        kb = build_kb()
        sha_before = store.save("paper", kb)
        sha_again = store.save("paper", kb)
        assert sha_before == sha_again
        payload = store.artifact(sha_before)
        assert "revisions" not in payload

    def test_names_and_describe(self, store):
        store.save("beta", build_kb())
        store.save("alpha", build_kb())
        assert store.names() == ["alpha", "beta"]
        assert store.describe("alpha").name == "alpha"


class TestLineage:
    def test_divergent_history_under_same_name_rejected(self, store):
        kb = build_kb()
        update_kb(kb)
        store.save("paper", kb)
        fork = build_kb()
        update_kb(fork, rows=NEW_ROWS[:30])
        with pytest.raises(DataError, match="diverges"):
            store.save("paper", fork)

    def test_stale_fork_rejected(self, store):
        kb = build_kb()
        update_kb(kb)
        update_kb(kb, rows=NEW_ROWS[:50])
        store.save("paper", kb)
        stale = build_kb()
        update_kb(stale)
        with pytest.raises(DataError, match="load the"):
            store.save("paper", stale)

    def test_matching_resave_is_accepted(self, store):
        kb = build_kb()
        update_kb(kb)
        store.save("paper", kb)
        # Same lineage saved again (e.g. from a reloaded copy): fine.
        store.save("paper", store.load("paper"))
        assert store.describe("paper").latest_revision == (
            kb.revisions[-1].number
        )


class TestDiff:
    def test_diff_reports_sample_growth_and_changed_constraints(
        self, store
    ):
        kb = build_kb()
        store.save("paper", kb)
        base = store.describe("paper").latest_revision
        update_kb(kb)
        store.save("paper", kb)
        latest = store.describe("paper").latest_revision
        diff = store.diff("paper", base, latest)
        assert diff.sample_size_b > diff.sample_size_a
        assert not diff.identical
        assert diff.constraints_changed
        text = diff.describe()
        assert f"revision {base} -> {latest}" in text
        assert "~ constraint" in text

    def test_diff_of_identical_revisions(self, store):
        kb = build_kb()
        store.save("paper", kb)
        number = store.describe("paper").latest_revision
        diff = store.diff("paper", number, number)
        assert diff.identical
        assert "(no constraint changes)" in diff.describe()
