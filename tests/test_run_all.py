"""Tests for benchmarks/run_all.py argument handling and record emission.

The heavy measurement functions are monkeypatched: these tests pin down
the CLI contract (--skip-suite, --smoke, --json PATH, suite-failure
short-circuit) without running any benchmark.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def run_all():
    spec = importlib.util.spec_from_file_location(
        "run_all", REPO_ROOT / "benchmarks" / "run_all.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["run_all"] = module
    spec.loader.exec_module(module)
    yield module
    del sys.modules["run_all"]


@pytest.fixture
def stubbed(run_all, monkeypatch):
    calls = {
        "suite": [],
        "discovery": [],
        "parallel": [],
        "distributed": [],
        "serving": [],
        "scenarios": [],
    }
    monkeypatch.setattr(
        run_all,
        "run_suite",
        lambda smoke: calls["suite"].append(smoke) or 0,
    )
    monkeypatch.setattr(
        run_all,
        "measure_discovery",
        lambda smoke: calls["discovery"].append(smoke)
        or {"scan_speedup_warm": 7.5},
    )
    monkeypatch.setattr(
        run_all,
        "measure_parallel",
        lambda smoke: calls["parallel"].append(smoke)
        or {"workers": 4, "cpus": 4, "scan_speedup_cold": 2.5},
    )
    monkeypatch.setattr(
        run_all,
        "measure_distributed",
        lambda smoke: calls["distributed"].append(smoke)
        or {"workers": 4, "cpus": 4, "scan_speedup": 1.8},
    )
    monkeypatch.setattr(
        run_all,
        "measure_serving",
        lambda smoke: calls["serving"].append(smoke)
        or {"clients": 4, "throughput_ratio": 3.0},
    )
    monkeypatch.setattr(
        run_all,
        "measure_scenarios",
        lambda smoke, tiers=None: calls["scenarios"].append((smoke, tiers))
        or [{"scenario": "independence", "passed": True}],
    )
    return calls


class TestSkipSuite:
    def test_skip_suite_skips_pytest_run(self, run_all, stubbed, tmp_path):
        target = tmp_path / "traj.json"
        assert run_all.main(["--json", str(target), "--skip-suite"]) == 0
        assert stubbed["suite"] == []
        assert stubbed["discovery"] == [False]
        assert stubbed["scenarios"] == [(False, None)]
        assert target.exists()

    def test_without_skip_suite_runs_pytest(self, run_all, stubbed, tmp_path):
        target = tmp_path / "traj.json"
        assert run_all.main(["--json", str(target)]) == 0
        assert stubbed["suite"] == [False]

    def test_skip_suite_without_json_is_a_noop(self, run_all, stubbed):
        assert run_all.main(["--skip-suite"]) == 0
        assert stubbed["suite"] == []
        assert stubbed["discovery"] == []

    def test_suite_failure_short_circuits(
        self, run_all, stubbed, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(run_all, "run_suite", lambda smoke: 3)
        target = tmp_path / "traj.json"
        assert run_all.main(["--json", str(target)]) == 3
        assert stubbed["discovery"] == []
        assert not target.exists()


class TestSmokeFlag:
    def test_smoke_propagates_to_measurements(
        self, run_all, stubbed, monkeypatch, tmp_path
    ):
        monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)
        target = tmp_path / "traj.json"
        assert (
            run_all.main(["--json", str(target), "--smoke", "--skip-suite"])
            == 0
        )
        assert stubbed["discovery"] == [True]
        assert stubbed["scenarios"] == [(True, None)]
        record = json.loads(target.read_text())[-1]
        assert record["smoke"] is True


class TestTrajectoryRecord:
    def test_record_contains_metrics_and_scenarios(
        self, run_all, stubbed, tmp_path
    ):
        target = tmp_path / "traj.json"
        assert run_all.main(["--json", str(target), "--skip-suite"]) == 0
        history = json.loads(target.read_text())
        assert isinstance(history, list) and len(history) == 1
        record = history[0]
        assert record["metrics"] == {"scan_speedup_warm": 7.5}
        assert record["parallel"] == {
            "workers": 4,
            "cpus": 4,
            "scan_speedup_cold": 2.5,
        }
        assert record["distributed"] == {
            "workers": 4,
            "cpus": 4,
            "scan_speedup": 1.8,
        }
        assert record["serving"] == {
            "clients": 4,
            "throughput_ratio": 3.0,
        }
        assert record["scenarios"] == [
            {"scenario": "independence", "passed": True}
        ]
        assert "timestamp" in record and "python" in record

    def test_records_append_across_invocations(
        self, run_all, stubbed, tmp_path
    ):
        target = tmp_path / "traj.json"
        run_all.main(["--json", str(target), "--skip-suite"])
        run_all.main(["--json", str(target), "--skip-suite"])
        assert len(json.loads(target.read_text())) == 2

    def test_corrupt_history_is_replaced(self, run_all, stubbed, tmp_path):
        target = tmp_path / "traj.json"
        target.write_text("{not json")
        run_all.main(["--json", str(target), "--skip-suite"])
        assert len(json.loads(target.read_text())) == 1

    def test_scalar_history_is_wrapped(self, run_all, stubbed, tmp_path):
        target = tmp_path / "traj.json"
        target.write_text(json.dumps({"old": "record"}))
        run_all.main(["--json", str(target), "--skip-suite"])
        history = json.loads(target.read_text())
        assert history[0] == {"old": "record"}
        assert len(history) == 2


class TestRegistry:
    def test_registry_records_the_trajectory_record(
        self, run_all, stubbed, tmp_path, capsys
    ):
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.store import RunRegistry

        target = tmp_path / "traj.json"
        registry_path = tmp_path / "runs.db"
        assert (
            run_all.main(
                [
                    "--json",
                    str(target),
                    "--smoke",
                    "--skip-suite",
                    "--registry",
                    str(registry_path),
                ]
            )
            == 0
        )
        assert "recorded in" in capsys.readouterr().err
        record = json.loads(target.read_text())[-1]
        with RunRegistry(registry_path) as registry:
            runs = registry.runs(kind="benchmark")
            assert len(runs) == 1
            assert runs[0].metrics == record
            assert runs[0].smoke is True
            assert runs[0].cpus == 4
            assert runs[0].created_at == record["timestamp"]
            # The registry run is exactly what the regression gate reads.
            assert registry.baseline_records(True) == [record]

    def test_rerunning_with_identical_record_is_idempotent(
        self, run_all, stubbed, tmp_path, monkeypatch
    ):
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.store import RunRegistry

        monkeypatch.setattr(
            run_all.time, "strftime", lambda *a: "2026-01-01T00:00:00Z"
        )
        target = tmp_path / "traj.json"
        registry_path = tmp_path / "runs.db"
        argv = [
            "--json",
            str(target),
            "--skip-suite",
            "--registry",
            str(registry_path),
        ]
        assert run_all.main(argv) == 0
        assert run_all.main(argv) == 0
        # Flat file appends; the content-addressed registry does not.
        assert len(json.loads(target.read_text())) == 2
        with RunRegistry(registry_path) as registry:
            assert len(registry.runs()) == 1

    def test_registry_requires_json(self, run_all, stubbed, tmp_path):
        with pytest.raises(SystemExit):
            run_all.main(["--registry", str(tmp_path / "runs.db")])


class TestGateMiss:
    def test_record_written_before_nonzero_exit(
        self, run_all, stubbed, monkeypatch, tmp_path, capsys
    ):
        """A gate miss still appends the record (the diagnostics), then
        fails."""
        monkeypatch.setattr(
            run_all,
            "measure_scenarios",
            lambda smoke, tiers=None: [
                {
                    "scenario": "independence",
                    "passed": False,
                    "gate_failures": ["precision 0.000 < 1.000"],
                }
            ],
        )
        target = tmp_path / "traj.json"
        assert run_all.main(["--json", str(target), "--skip-suite"]) == 1
        history = json.loads(target.read_text())
        assert len(history) == 1
        assert history[0]["scenarios"][0]["passed"] is False
        err = capsys.readouterr().err
        assert "conformance gates or latency SLOs missed" in err
        assert "independence: precision" in err
