"""Tests for the conformance runner: scoring, gates, matrix, JSON."""

import json

import pytest

from repro.discovery.trace import score_constraint_keys
from repro.scenarios import (
    ConformanceGates,
    outcome_to_dict,
    run_matrix,
    run_scenario,
    scenario_names,
)
from repro.scenarios.runner import check_gates


class TestScoreConstraintKeys:
    def test_perfect_recovery(self):
        truth = {(("A", "B"), (0, 1))}
        score = score_constraint_keys(truth, set(truth))
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.false_alarms == ()
        assert score.missed == ()

    def test_false_alarm_and_miss(self):
        truth = {(("A", "B"), (0, 1)), (("B", "C"), (1, 1))}
        found = {(("A", "B"), (0, 1)), (("A", "C"), (0, 0))}
        score = score_constraint_keys(truth, found)
        assert score.precision == pytest.approx(0.5)
        assert score.recall == pytest.approx(0.5)
        assert score.false_alarms == ((("A", "C"), (0, 0)),)
        assert score.missed == ((("B", "C"), (1, 1)),)

    def test_empty_truth_empty_found_is_perfect(self):
        score = score_constraint_keys(set(), set())
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_nothing_found_with_truth_scores_zero(self):
        """Matches recovery_score: a find-nothing run cannot pass a
        precision gate vacuously."""
        score = score_constraint_keys({(("A", "B"), (0, 0))}, set())
        assert score.precision == 0.0
        assert score.recall == 0.0

    def test_empty_truth_with_findings_is_imprecise(self):
        score = score_constraint_keys(set(), {(("A", "B"), (0, 0))})
        assert score.precision == 0.0
        assert score.recall == 1.0


class TestCheckGates:
    def _score(self, precision, recall, alarms=0):
        truth = {(("A", "B"), (0, i)) for i in range(4)}
        hits = int(round(recall * len(truth)))
        found = set(list(truth)[:hits])
        found |= {(("X", "Y"), (0, i)) for i in range(alarms)}
        score = score_constraint_keys(truth, found)
        return score

    def test_all_gates_pass(self):
        score = score_constraint_keys({(("A", "B"), (0, 0))}, {(("A", "B"), (0, 0))})
        gates = ConformanceGates(min_precision=1.0, min_recall=1.0, max_kl=0.1)
        assert check_gates(gates, score, kl=0.05) == []

    def test_each_gate_reports(self):
        score = self._score(0.5, 0.5, alarms=2)
        gates = ConformanceGates(
            min_precision=0.9,
            min_recall=0.9,
            max_kl=0.01,
            max_false_alarms=1,
        )
        failures = check_gates(gates, score, kl=0.5)
        text = "\n".join(failures)
        assert len(failures) == 4
        assert "precision" in text
        assert "recall" in text
        assert "KL" in text
        assert "false alarms" in text


class TestRunScenario:
    def test_single_scenario_outcome(self):
        outcome = run_scenario("single-pairwise", smoke=True)
        assert outcome.scenario == "single-pairwise"
        assert outcome.smoke is True
        assert outcome.truth_size == 1
        assert outcome.recall == 1.0
        assert outcome.kl_empirical_fitted >= 0.0
        assert outcome.seconds > 0.0
        # Profile instrumentation flows through from the engine.
        assert outcome.scan_seconds > 0.0
        assert outcome.fit_sweeps > 0
        assert outcome.passed
        # Both baseline selectors ran and were scored.
        assert {b.selector for b in outcome.baselines} == {"chi2", "bic"}

    def test_no_baselines(self):
        outcome = run_scenario(
            "independence", smoke=True, include_baselines=False
        )
        assert outcome.baselines == []
        assert outcome.constraints_found == 0
        assert outcome.precision == 1.0
        assert outcome.recall == 1.0

    def test_outcome_to_dict_round_trips_json(self):
        outcome = run_scenario("near-deterministic", smoke=True)
        data = outcome_to_dict(outcome)
        payload = json.loads(json.dumps(data))
        for key in (
            "scenario",
            "precision",
            "recall",
            "kl_empirical_fitted",
            "stage_scan_s",
            "stage_fit_s",
            "stage_verify_s",
            "baselines",
            "gate_failures",
            "passed",
        ):
            assert key in payload
        assert payload["passed"] is True
        assert payload["scenario"] == "near-deterministic"


class TestRunMatrix:
    def test_full_registry_smoke_conformance(self):
        """The CI contract: every default-tier scenario passes its gates.

        The default fleet is the smoke+full tiers; the stress tier runs
        in the nightly matrix (``run_matrix(tiers="stress")``), not here.
        """
        from repro.scenarios import DEFAULT_TIERS

        outcomes = run_matrix(smoke=True, include_baselines=False)
        assert len(outcomes) >= 20
        assert [o.scenario for o in outcomes] == scenario_names(
            DEFAULT_TIERS
        )
        failures = {
            o.scenario: o.gate_failures + o.slo_failures
            for o in outcomes
            if not o.passed
        }
        assert failures == {}

    def test_selection_by_name(self):
        outcomes = run_matrix(
            names=["independence", "skewed-marginals"],
            smoke=True,
            include_baselines=False,
        )
        assert [o.scenario for o in outcomes] == [
            "independence",
            "skewed-marginals",
        ]


class TestConformanceReport:
    def test_report_renders_all_scenarios(self):
        from repro.eval.conformance import conformance_report

        outcomes = run_matrix(
            names=["independence", "single-pairwise"], smoke=True
        )
        text = conformance_report(outcomes)
        assert "SCENARIO CONFORMANCE MATRIX" in text
        assert "independence" in text
        assert "single-pairwise" in text
        assert "all conformance gates and latency SLOs passed" in text
        assert "selector comparison" in text
        assert "chi2" in text and "bic" in text

    def test_report_lists_gate_failures(self):
        from repro.eval.conformance import conformance_report

        outcome = run_scenario("independence", smoke=True)
        outcome.gate_failures = ["precision 0.000 < 1.000"]
        text = conformance_report([outcome])
        assert "gate failures:" in text
        assert "independence: precision" in text
