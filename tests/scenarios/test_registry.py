"""Tests for the scenario registry: contents, determinism, validation."""

import numpy as np
import pytest

from repro.data.contingency import ContingencyTable
from repro.exceptions import DataError
from repro.scenarios import (
    ConformanceGates,
    Scenario,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
    unregister,
)
from repro.scenarios.registry import ScenarioInstance


class TestBuiltinRegistry:
    def test_at_least_ten_scenarios(self):
        assert len(scenario_names()) >= 10

    def test_names_unique(self):
        names = scenario_names()
        assert len(names) == len(set(names))

    def test_structural_axes_covered(self):
        names = set(scenario_names())
        for expected in (
            "independence",
            "single-pairwise",
            "chained-pairwise",
            "order3-interaction",
            "near-deterministic",
            "skewed-marginals",
            "high-cardinality",
            "sparse-counts",
            "missing-data",
            "streaming-drift",
        ):
            assert expected in names

    def test_get_unknown_scenario_raises(self):
        with pytest.raises(DataError, match="no scenario named"):
            get_scenario("definitely-not-registered")

    @pytest.mark.parametrize("name", ["independence", "order3-interaction"])
    def test_build_is_deterministic(self, name):
        scenario = get_scenario(name)
        first = scenario.build(smoke=True)
        second = scenario.build(smoke=True)
        assert first.table == second.table
        assert first.truth == second.truth

    def test_smoke_and_full_sizes_differ(self):
        for scenario in all_scenarios():
            assert scenario.sample_size(True) <= scenario.sample_size(False)

    def test_every_scenario_builds_with_declared_total(self):
        for scenario in all_scenarios("all"):
            instance = scenario.build(smoke=True)
            assert isinstance(instance.table, ContingencyTable)
            if "duplicates" in scenario.tags:
                # Duplicate-row corruption inflates the declared draw by
                # its duplication fraction — that iid violation is the
                # scenario's point, so the total exceeds the declaration.
                assert instance.table.total > scenario.smoke_samples
            else:
                assert instance.table.total == scenario.smoke_samples
            # Ground-truth keys must be cells of the scanned orders.
            for attributes, values in instance.truth:
                assert 2 <= len(attributes) <= scenario.max_order
                assert len(attributes) == len(values)
                for name in attributes:
                    assert name in instance.table.schema.names

    def test_gates_for_mode_selection(self):
        scenario = get_scenario("order3-interaction")
        assert scenario.gates_for(True) is scenario.gates
        assert scenario.gates_for(False) is scenario.full_gates
        no_full = get_scenario("single-pairwise")
        assert no_full.gates_for(False) is no_full.gates


class TestRegistration:
    def _dummy(self, rng: np.random.Generator, n: int) -> ScenarioInstance:
        from repro.synth.generators import independent_population

        population = independent_population(rng, 3)
        return ScenarioInstance(
            table=population.sample_table(n, rng),
            truth=frozenset(),
            population=population,
        )

    def test_register_unregister_cycle(self):
        scenario = Scenario(
            name="tmp-test-scenario",
            description="temporary",
            seed=7,
            builder=self._dummy,
        )
        register(scenario)
        try:
            assert "tmp-test-scenario" in scenario_names()
            assert get_scenario("tmp-test-scenario") is scenario
        finally:
            unregister("tmp-test-scenario")
        assert "tmp-test-scenario" not in scenario_names()

    def test_duplicate_name_rejected(self):
        with pytest.raises(DataError, match="already registered"):
            register(
                Scenario(
                    name="independence",
                    description="impostor",
                    seed=1,
                    builder=self._dummy,
                )
            )

    def test_unregister_unknown_raises(self):
        with pytest.raises(DataError, match="no scenario named"):
            unregister("never-was")

    def test_invalid_scenario_rejected(self):
        with pytest.raises(DataError, match="whitespace"):
            Scenario(
                name="has space",
                description="bad",
                seed=1,
                builder=self._dummy,
            )
        with pytest.raises(DataError, match="max_order"):
            Scenario(
                name="bad-order",
                description="bad",
                seed=1,
                builder=self._dummy,
                max_order=1,
            )
        with pytest.raises(DataError, match="smoke_samples"):
            Scenario(
                name="bad-sizes",
                description="bad",
                seed=1,
                builder=self._dummy,
                smoke_samples=100,
                full_samples=50,
            )


class TestConformanceGates:
    def test_bounds_validated(self):
        with pytest.raises(DataError, match="min_precision"):
            ConformanceGates(min_precision=1.5)
        with pytest.raises(DataError, match="max_kl"):
            ConformanceGates(max_kl=0.0)
        with pytest.raises(DataError, match="max_false_alarms"):
            ConformanceGates(max_false_alarms=-1)

    def test_defaults_are_permissive(self):
        gates = ConformanceGates()
        assert gates.min_precision == 0.0
        assert gates.min_recall == 0.0
        assert gates.max_kl == float("inf")
        assert gates.max_false_alarms is None
