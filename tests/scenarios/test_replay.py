"""Tests for the closed-loop query-traffic replay layer."""

import pytest

from repro.exceptions import DataError
from repro.scenarios import get_scenario
from repro.scenarios.replay import (
    closed_loop_replay,
    latency_stats,
    percentile,
    replay_session,
    scenario_query_mix,
)


class TestPercentile:
    def test_empty_sample_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.50) == 3.0
        assert percentile(values, 0.99) == 4.0

    def test_latency_stats_in_milliseconds(self):
        stats = latency_stats([0.001, 0.002, 0.010])
        assert stats["p50_ms"] == pytest.approx(2.0)
        assert stats["max_ms"] == pytest.approx(10.0)
        assert stats["p99_ms"] <= stats["max_ms"]

    def test_latency_stats_empty(self):
        stats = latency_stats([])
        assert stats == {"p50_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}


class TestScenarioQueryMix:
    def _schema(self, name="single-pairwise"):
        return get_scenario(name).build(smoke=True).table.schema

    def test_deterministic_for_seed(self):
        schema = self._schema()
        assert scenario_query_mix(schema, 42) == scenario_query_mix(
            schema, 42
        )
        assert scenario_query_mix(schema, 42) != scenario_query_mix(
            schema, 43
        )

    def test_mix_cycles_shapes(self):
        queries = scenario_query_mix(self._schema(), 7, size=6)
        assert len(queries) == 6
        marginals = [q for q in queries if "|" not in q]
        doubles = [q for q in queries if "," in q]
        assert marginals and doubles

    def test_size_validated(self):
        with pytest.raises(DataError, match="size"):
            scenario_query_mix(self._schema(), 1, size=0)

    def test_queries_are_askable(self):
        instance = get_scenario("single-pairwise").build(smoke=True)
        from repro.discovery.config import DiscoveryConfig
        from repro.discovery.engine import discover

        model = discover(
            instance.table, DiscoveryConfig(max_order=2)
        ).model
        from repro.api.session import QuerySession

        session = QuerySession(model)
        try:
            for text in scenario_query_mix(instance.table.schema, 11):
                value = session.ask(text)
                assert 0.0 <= value <= 1.0
        finally:
            session.close()


class TestClosedLoopReplay:
    def test_counts_and_percentiles(self):
        result = closed_loop_replay(
            lambda: (lambda text: 0.5), ["a", "b"], requests=10, clients=2
        )
        assert result["requests"] == 20
        assert result["clients"] == 2
        assert result["rps"] > 0
        assert result["p50_ms"] <= result["p99_ms"] <= result["max_ms"]

    def test_validation(self):
        client = lambda: (lambda text: 0.5)  # noqa: E731
        with pytest.raises(DataError, match="requests"):
            closed_loop_replay(client, ["a"], requests=0)
        with pytest.raises(DataError, match="clients"):
            closed_loop_replay(client, ["a"], requests=1, clients=0)
        with pytest.raises(DataError, match="queries"):
            closed_loop_replay(client, [], requests=1)


class TestReplaySession:
    def test_replays_against_fresh_sessions(self):
        instance = get_scenario("single-pairwise").build(smoke=True)
        from repro.discovery.config import DiscoveryConfig
        from repro.discovery.engine import discover

        model = discover(
            instance.table, DiscoveryConfig(max_order=2)
        ).model
        queries = scenario_query_mix(instance.table.schema, 5)
        result = replay_session(model, queries, requests=8, clients=2)
        assert result["requests"] == 16
        assert result["p99_ms"] > 0.0
