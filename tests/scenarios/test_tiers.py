"""Tests for scenario tiers, latency SLOs, and the generated catalog."""

from pathlib import Path

import pytest

from repro.exceptions import DataError
from repro.scenarios import (
    DEFAULT_TIERS,
    TIERS,
    LatencySLO,
    Scenario,
    all_scenarios,
    default_slo,
    get_scenario,
    scenario_names,
)
from repro.scenarios.catalog import scenario_catalog_markdown
from repro.scenarios.registry import FULL_SLO_SCALE
from repro.scenarios.runner import check_slo

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestLatencySLO:
    def test_validation(self):
        with pytest.raises(DataError, match="scan_p99_ms"):
            LatencySLO(scan_p99_ms=0.0)
        with pytest.raises(DataError, match="p50"):
            LatencySLO(query_p50_ms=100.0, query_p99_ms=50.0)

    def test_scaled(self):
        slo = LatencySLO(scan_p99_ms=100.0, query_p99_ms=10.0)
        scaled = slo.scaled(4.0)
        assert scaled.scan_p99_ms == 400.0
        assert scaled.query_p99_ms == 40.0
        assert scaled.fit_p99_ms is None

    def test_budgets_skip_unset_stages(self):
        slo = LatencySLO(scan_p99_ms=100.0)
        assert slo.budgets() == [("scan", 0.99, 100.0)]

    def test_describe_mentions_set_budgets(self):
        text = LatencySLO(scan_p99_ms=100.0, query_p50_ms=5.0).describe()
        assert "scan" in text and "query" in text
        assert "fit" not in text

    def test_default_slo_per_tier(self):
        assert default_slo("stress").scan_p99_ms > default_slo(
            "smoke"
        ).scan_p99_ms
        with pytest.raises(DataError, match="tier"):
            default_slo("nope")


class TestTierFiltering:
    def test_fleet_spans_three_tiers(self):
        assert TIERS == ("smoke", "full", "stress")
        assert len(scenario_names("all")) >= 30
        assert len(scenario_names("smoke")) >= 10
        assert len(scenario_names("full")) >= 10
        assert len(scenario_names("stress")) >= 5

    def test_default_excludes_stress(self):
        default = scenario_names(DEFAULT_TIERS)
        assert default == scenario_names(("smoke", "full"))
        stress = set(scenario_names("stress"))
        assert not stress & set(default)
        # The bare call keeps listing the whole registry.
        assert set(scenario_names()) == set(scenario_names("all"))

    def test_unknown_tier_rejected(self):
        with pytest.raises(DataError, match="tier"):
            scenario_names("nightly")

    def test_every_scenario_declares_width_and_tier(self):
        for scenario in all_scenarios("all"):
            assert scenario.tier in TIERS
            instance = scenario.build(smoke=True)
            assert len(instance.table.schema) == scenario.attributes

    def test_invalid_tier_on_scenario_rejected(self):
        with pytest.raises(DataError, match="tier"):
            Scenario(
                name="bad-tier",
                description="bad",
                seed=1,
                builder=lambda rng, n: None,
                tier="weekly",
            )


class TestSloForMode:
    def test_tier_default_applies(self):
        scenario = get_scenario("single-pairwise")
        smoke_slo = scenario.slo_for(smoke=True)
        assert smoke_slo.scan_p99_ms == default_slo("smoke").scan_p99_ms

    def test_full_mode_scales_budgets(self):
        scenario = get_scenario("single-pairwise")
        smoke_slo = scenario.slo_for(smoke=True)
        full_slo = scenario.slo_for(smoke=False)
        assert full_slo.scan_p99_ms == pytest.approx(
            FULL_SLO_SCALE * smoke_slo.scan_p99_ms
        )


class TestCheckSlo:
    def test_within_budget_passes(self):
        slo = LatencySLO(scan_p99_ms=100.0, query_p99_ms=10.0)
        failures = check_slo(
            slo,
            {"scan_p99_ms": 50.0},
            {"p99_ms": 5.0},
        )
        assert failures == []

    def test_each_miss_reported(self):
        slo = LatencySLO(
            scan_p99_ms=10.0, query_p50_ms=1.0, query_p99_ms=2.0
        )
        failures = check_slo(
            slo,
            {"scan_p99_ms": 50.0},
            {"p50_ms": 9.0, "p99_ms": 9.0},
        )
        text = "\n".join(failures)
        assert len(failures) == 3
        assert "scan" in text and "query" in text

    def test_env_scale_loosens_budgets(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLO_SCALE", "10")
        from repro.scenarios.runner import _slo_scale

        assert _slo_scale() == 10.0


class TestCatalog:
    def test_catalog_is_deterministic(self):
        assert scenario_catalog_markdown() == scenario_catalog_markdown()

    def test_catalog_lists_every_scenario_by_tier(self):
        text = scenario_catalog_markdown()
        for tier in TIERS:
            assert f"## Tier: {tier}" in text
        for name in scenario_names("all"):
            assert name in text

    def test_docs_file_in_sync(self):
        """CI contract: docs/scenarios.md is exactly the generated catalog.

        Regenerate with::

            PYTHONPATH=src python -m repro.cli scenarios list --markdown \
                > docs/scenarios.md
        """
        committed = (REPO_ROOT / "docs" / "scenarios.md").read_text()
        assert committed == scenario_catalog_markdown() + "\n"
