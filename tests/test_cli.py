"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data.dataset import Dataset
from repro.data.io import write_dataset_csv


@pytest.mark.parametrize(
    "command,needle",
    [
        (["figure1"], "FIGURE 1"),
        (["figure2"], "RELATION OF SMOKING TO CANCER"),
        (["table1"], "TABLE 1"),
        (["table2"], "TABLE 2"),
        (["solvers"], "gevarter"),
        (["appendixb"], "APPENDIX B"),
        (["discover"], "constraints found"),
        (["discover", "--max-order", "2"], "constraints found"),
        (["rules", "--min-probability", "0.7"], "IF "),
        (["loglinear"], "adopted margin"),
    ],
)
def test_commands_print_expected(capsys, command, needle):
    assert main(command) == 0
    output = capsys.readouterr().out
    assert needle in output


def test_discover_with_csv(capsys, schema, table, rng, tmp_path):
    dataset = Dataset.from_joint(schema, table.probabilities(), 3000, rng)
    path = tmp_path / "survey.csv"
    write_dataset_csv(dataset, path)
    assert main(["discover", "--csv", str(path)]) == 0
    output = capsys.readouterr().out
    assert "N=3000" in output


def test_recovery_command(capsys):
    assert main(["recovery", "--trials", "1"]) == 0
    output = capsys.readouterr().out
    assert "mml" in output and "chi2" in output and "bic" in output


class TestQueryCommand:
    def test_single_expression(self, capsys):
        assert main(["query", "CANCER=yes | SMOKING=smoker"]) == 0
        output = capsys.readouterr().out
        assert "P(CANCER=yes | SMOKING=smoker) = 0.18" in output

    def test_multiple_expressions(self, capsys):
        assert main(["query", "CANCER=yes", "FAMILY_HISTORY=yes"]) == 0
        output = capsys.readouterr().out.strip().splitlines()
        assert len(output) == 2
        assert output[0].startswith("P(CANCER=yes) = ")

    def test_backends_agree(self, capsys):
        text = "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes"
        assert main(["query", text, "--backend", "dense"]) == 0
        dense = capsys.readouterr().out
        assert main(["query", text, "--backend", "elimination"]) == 0
        elimination = capsys.readouterr().out
        assert dense == elimination

    def test_batch_file(self, capsys, tmp_path):
        batch = tmp_path / "queries.txt"
        batch.write_text("CANCER=yes\n\nCANCER=yes | SMOKING=smoker\n")
        assert main(["query", "--batch", str(batch)]) == 0
        output = capsys.readouterr().out.strip().splitlines()
        assert len(output) == 2

    def test_mpe(self, capsys):
        assert main(["query", "--mpe", "--given", "SMOKING=smoker"]) == 0
        output = capsys.readouterr().out
        assert "most probable explanation" in output
        assert "SMOKING = smoker" in output
        assert "CANCER = no" in output
        assert "P = " in output

    def test_saved_kb(self, capsys, tmp_path):
        from repro.core.knowledge_base import ProbabilisticKnowledgeBase
        from repro.eval.paper import paper_table

        kb = ProbabilisticKnowledgeBase.from_data(paper_table())
        path = tmp_path / "kb.json"
        kb.save(path)
        assert main(["query", "CANCER=yes", "--kb", str(path)]) == 0
        output = capsys.readouterr().out
        assert "P(CANCER=yes) = " in output

    def test_no_queries_errors(self, capsys):
        assert main(["query"]) == 2
        assert "no queries" in capsys.readouterr().out

    def test_bad_backend_rejected_before_fitting(self, capsys):
        assert main(["query", "CANCER=yes", "--backend", "quantum"]) == 2
        assert "unknown inference backend" in capsys.readouterr().err

    def test_overlap_reports_cleanly(self, capsys):
        assert main(["query", "CANCER=yes | CANCER=no"]) == 1
        assert "both target and evidence" in capsys.readouterr().err

    def test_missing_batch_file_reports_cleanly(self, capsys):
        assert main(["query", "--batch", "/nonexistent/queries.txt"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_kb_file_reports_cleanly(self, capsys):
        assert main(["query", "CANCER=yes", "--kb", "/nonexistent.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_mpe_with_expressions_rejected(self, capsys):
        assert main(["query", "CANCER=yes", "--mpe"]) == 2
        assert "--mpe" in capsys.readouterr().err

    def test_given_without_mpe_rejected(self, capsys):
        assert main(["query", "CANCER=yes", "--given", "SMOKING=smoker"]) == 2
        assert "--given" in capsys.readouterr().err


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
