"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data.dataset import Dataset
from repro.data.io import write_dataset_csv


@pytest.mark.parametrize(
    "command,needle",
    [
        (["figure1"], "FIGURE 1"),
        (["figure2"], "RELATION OF SMOKING TO CANCER"),
        (["table1"], "TABLE 1"),
        (["table2"], "TABLE 2"),
        (["solvers"], "gevarter"),
        (["appendixb"], "APPENDIX B"),
        (["discover"], "constraints found"),
        (["discover", "--max-order", "2"], "constraints found"),
        (["rules", "--min-probability", "0.7"], "IF "),
        (["loglinear"], "adopted margin"),
    ],
)
def test_commands_print_expected(capsys, command, needle):
    assert main(command) == 0
    output = capsys.readouterr().out
    assert needle in output


def test_discover_with_csv(capsys, schema, table, rng, tmp_path):
    dataset = Dataset.from_joint(schema, table.probabilities(), 3000, rng)
    path = tmp_path / "survey.csv"
    write_dataset_csv(dataset, path)
    assert main(["discover", "--csv", str(path)]) == 0
    output = capsys.readouterr().out
    assert "N=3000" in output


def test_discover_profile(capsys):
    assert main(["discover", "--profile", "--max-order", "2"]) == 0
    captured = capsys.readouterr()
    # The timing table is diagnostics: stderr only, stdout stays the
    # summary so piped output remains parseable.
    output = captured.err
    assert "discovery stage timings" not in captured.out
    assert "discovery stage timings" in output
    for stage in ("scan", "fit", "verify"):
        assert stage in output
    assert "sweeps" in output
    # The rendered table carries the per-stage work and share columns.
    assert "cells" in output
    assert "%" in output
    for header in ("stage", "calls", "work", "seconds", "share"):
        assert header in output


def test_discover_profile_with_save(capsys, tmp_path):
    target = tmp_path / "kb.json"
    assert main(
        ["discover", "--profile", "--max-order", "2", "--save", str(target)]
    ) == 0
    assert "discovery stage timings" in capsys.readouterr().err
    assert target.exists()


@pytest.mark.parametrize(
    "command",
    [
        ["discover", "--workers", "0", "--max-order", "2"],
        ["query", "--workers", "-2", "CANCER=yes"],
        ["scenarios", "run", "--smoke", "--workers", "0"],
    ],
)
def test_bad_worker_count_rejected_at_parse_time(capsys, command):
    with pytest.raises(SystemExit) as excinfo:
        main(command)
    assert excinfo.value.code == 2
    assert "must be >= 1" in capsys.readouterr().err


def test_recovery_command(capsys):
    assert main(["recovery", "--trials", "1"]) == 0
    output = capsys.readouterr().out
    assert "mml" in output and "chi2" in output and "bic" in output


class TestQueryCommand:
    def test_single_expression(self, capsys):
        assert main(["query", "CANCER=yes | SMOKING=smoker"]) == 0
        output = capsys.readouterr().out
        assert "P(CANCER=yes | SMOKING=smoker) = 0.18" in output

    def test_multiple_expressions(self, capsys):
        assert main(["query", "CANCER=yes", "FAMILY_HISTORY=yes"]) == 0
        output = capsys.readouterr().out.strip().splitlines()
        assert len(output) == 2
        assert output[0].startswith("P(CANCER=yes) = ")

    def test_backends_agree(self, capsys):
        text = "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes"
        assert main(["query", text, "--backend", "dense"]) == 0
        dense = capsys.readouterr().out
        assert main(["query", text, "--backend", "elimination"]) == 0
        elimination = capsys.readouterr().out
        assert dense == elimination

    def test_batch_file(self, capsys, tmp_path):
        batch = tmp_path / "queries.txt"
        batch.write_text("CANCER=yes\n\nCANCER=yes | SMOKING=smoker\n")
        assert main(["query", "--batch", str(batch)]) == 0
        output = capsys.readouterr().out.strip().splitlines()
        assert len(output) == 2

    def test_mpe(self, capsys):
        assert main(["query", "--mpe", "--given", "SMOKING=smoker"]) == 0
        output = capsys.readouterr().out
        assert "most probable explanation" in output
        assert "SMOKING = smoker" in output
        assert "CANCER = no" in output
        assert "P = " in output

    def test_saved_kb(self, capsys, tmp_path):
        from repro.core.knowledge_base import ProbabilisticKnowledgeBase
        from repro.eval.paper import paper_table

        kb = ProbabilisticKnowledgeBase.from_data(paper_table())
        path = tmp_path / "kb.json"
        kb.save(path)
        assert main(["query", "CANCER=yes", "--kb", str(path)]) == 0
        output = capsys.readouterr().out
        assert "P(CANCER=yes) = " in output

    def test_no_queries_errors(self, capsys):
        assert main(["query"]) == 2
        assert "no queries" in capsys.readouterr().out

    def test_bad_backend_rejected_before_fitting(self, capsys):
        assert main(["query", "CANCER=yes", "--backend", "quantum"]) == 2
        assert "unknown inference backend" in capsys.readouterr().err

    def test_overlap_reports_cleanly(self, capsys):
        assert main(["query", "CANCER=yes | CANCER=no"]) == 1
        assert "both target and evidence" in capsys.readouterr().err

    def test_missing_batch_file_reports_cleanly(self, capsys):
        assert main(["query", "--batch", "/nonexistent/queries.txt"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_kb_file_reports_cleanly(self, capsys):
        assert main(["query", "CANCER=yes", "--kb", "/nonexistent.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_mpe_with_expressions_rejected(self, capsys):
        assert main(["query", "CANCER=yes", "--mpe"]) == 2
        assert "--mpe" in capsys.readouterr().err

    def test_given_without_mpe_rejected(self, capsys):
        assert main(["query", "CANCER=yes", "--given", "SMOKING=smoker"]) == 2
        assert "--given" in capsys.readouterr().err


class TestUpdateCommand:
    def _write_csv(self, schema, table, rng, path, n):
        dataset = Dataset.from_joint(schema, table.probabilities(), n, rng)
        write_dataset_csv(dataset, path)

    def test_discover_save_then_update(
        self, capsys, schema, table, rng, tmp_path
    ):
        import json

        kb_path = tmp_path / "kb.json"
        assert main(["discover", "--save", str(kb_path)]) == 0
        assert "knowledge base saved" in capsys.readouterr().out
        assert json.loads(kb_path.read_text())["format_version"] == 3

        delta_path = tmp_path / "delta.csv"
        self._write_csv(schema, table, rng, delta_path, 400)
        assert main(
            ["update", "--kb", str(kb_path), "--csv", str(delta_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "revision 1" in output
        assert "absorbed 400 samples" in output
        assert "N=3828" in output
        assert json.loads(kb_path.read_text())["sample_size"] == 3828

    def test_update_save_elsewhere(self, capsys, schema, table, rng, tmp_path):
        kb_path = tmp_path / "kb.json"
        assert main(["discover", "--save", str(kb_path)]) == 0
        delta_path = tmp_path / "delta.csv"
        self._write_csv(schema, table, rng, delta_path, 100)
        out_path = tmp_path / "kb2.json"
        capsys.readouterr()
        assert main(
            [
                "update",
                "--kb",
                str(kb_path),
                "--csv",
                str(delta_path),
                "--save",
                str(out_path),
            ]
        ) == 0
        assert out_path.exists()
        # The original file is untouched.
        from repro.core.knowledge_base import ProbabilisticKnowledgeBase

        assert ProbabilisticKnowledgeBase.load(kb_path).sample_size == 3428
        assert ProbabilisticKnowledgeBase.load(out_path).sample_size == 3528

    def test_update_pre_v3_kb_rejected(
        self, capsys, schema, table, rng, tmp_path
    ):
        import json

        from repro.core.knowledge_base import ProbabilisticKnowledgeBase

        kb = ProbabilisticKnowledgeBase.from_data(table)
        data = kb.to_dict()
        data.pop("discovery")
        data.pop("revisions")
        data["format_version"] = 2
        kb_path = tmp_path / "old_kb.json"
        kb_path.write_text(json.dumps(data))
        delta_path = tmp_path / "delta.csv"
        self._write_csv(schema, table, rng, delta_path, 50)
        assert main(
            ["update", "--kb", str(kb_path), "--csv", str(delta_path)]
        ) == 2
        assert "no discovery audit trail" in capsys.readouterr().err

    def test_update_schema_mismatch_reported(self, capsys, tmp_path):
        kb_path = tmp_path / "kb.json"
        assert main(["discover", "--save", str(kb_path)]) == 0
        bad_csv = tmp_path / "bad.csv"
        bad_csv.write_text("X,Y\na,b\nc,d\n")
        capsys.readouterr()
        assert main(
            ["update", "--kb", str(kb_path), "--csv", str(bad_csv)]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_update_missing_kb_reports_cleanly(self, capsys, tmp_path):
        delta = tmp_path / "delta.csv"
        delta.write_text("A,B\nx,y\n")
        assert main(
            ["update", "--kb", "/nonexistent.json", "--csv", str(delta)]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestScenariosCommand:
    def test_list_shows_registry(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenarios", "list"]) == 0
        output = capsys.readouterr().out
        for name in scenario_names():
            assert name in output

    def test_run_single_scenario_text_report(self, capsys):
        assert (
            main(
                [
                    "scenarios",
                    "run",
                    "--smoke",
                    "--scenario",
                    "independence",
                    "--no-baselines",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "SCENARIO CONFORMANCE MATRIX" in output
        assert "independence" in output
        assert "all conformance gates and latency SLOs passed" in output

    def test_run_json_to_stdout(self, capsys):
        import json

        assert (
            main(
                [
                    "scenarios",
                    "run",
                    "--smoke",
                    "--scenario",
                    "near-deterministic",
                    "--no-baselines",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        record = payload[0]
        assert record["scenario"] == "near-deterministic"
        for key in ("precision", "recall", "kl_empirical_fitted", "stage_scan_s"):
            assert key in record

    def test_run_json_to_file(self, capsys, tmp_path):
        import json

        target = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "scenarios",
                    "run",
                    "--smoke",
                    "--scenario",
                    "skewed-marginals",
                    "--no-baselines",
                    "--json",
                    str(target),
                ]
            )
            == 0
        )
        assert json.loads(target.read_text())[0]["scenario"] == (
            "skewed-marginals"
        )

    def test_smoke_env_variable_respected(self, capsys, monkeypatch):
        import json

        from repro.scenarios import get_scenario

        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        assert (
            main(
                [
                    "scenarios",
                    "run",
                    "--scenario",
                    "independence",
                    "--no-baselines",
                    "--json",
                ]
            )
            == 0
        )
        record = json.loads(capsys.readouterr().out)[0]
        assert record["smoke"] is True
        assert record["n_samples"] == get_scenario("independence").smoke_samples

    def test_gate_miss_exits_nonzero(self, capsys, monkeypatch):
        import repro.scenarios.runner as runner_module
        from repro.cli import main as cli_main

        def failing_check(gates, recovery, kl):
            return ["precision 0.000 < 1.000"]

        monkeypatch.setattr(runner_module, "check_gates", failing_check)
        assert (
            cli_main(
                [
                    "scenarios",
                    "run",
                    "--smoke",
                    "--scenario",
                    "independence",
                    "--no-baselines",
                ]
            )
            == 1
        )
        captured = capsys.readouterr()
        assert "conformance gate miss" in captured.err

    def test_unknown_scenario_reports_cleanly(self, capsys):
        assert (
            main(["scenarios", "run", "--scenario", "no-such-workload"]) == 1
        )
        assert "no scenario named" in capsys.readouterr().err

    def test_requires_action(self):
        with pytest.raises(SystemExit):
            main(["scenarios"])

    def test_list_tier_filter(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenarios", "list", "--tier", "stress"]) == 0
        output = capsys.readouterr().out
        for name in scenario_names("stress"):
            assert name in output
        assert "single-pairwise" not in output

    def test_list_markdown_matches_catalog(self, capsys):
        from repro.scenarios.catalog import scenario_catalog_markdown

        assert main(["scenarios", "list", "--markdown"]) == 0
        assert capsys.readouterr().out == scenario_catalog_markdown() + "\n"


class TestScorecardCommand:
    def _record_run(self, registry_path, scenario="independence"):
        assert (
            main(
                [
                    "scenarios",
                    "run",
                    "--smoke",
                    "--scenario",
                    scenario,
                    "--no-baselines",
                    "--registry",
                    registry_path,
                ]
            )
            == 0
        )

    def test_empty_registry_renders_placeholder(self, capsys, tmp_path):
        registry = str(tmp_path / "runs.db")
        from repro.store import RunRegistry

        RunRegistry(registry).close()
        assert main(["scorecard", "--registry", registry]) == 0
        assert "No scenario outcomes recorded." in capsys.readouterr().out

    def test_scorecard_aggregates_recorded_runs(self, capsys, tmp_path):
        import json

        registry = str(tmp_path / "runs.db")
        self._record_run(registry)
        self._record_run(registry, scenario="single-pairwise")
        capsys.readouterr()
        json_path = tmp_path / "scorecard.json"
        assert (
            main(
                [
                    "scorecard",
                    "--registry",
                    registry,
                    "--json",
                    str(json_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "# Scenario scorecard" in output
        assert "independence" in output
        assert "single-pairwise" in output
        card = json.loads(json_path.read_text())
        assert card["total_scenarios"] == 2
        assert card["failing"] == []

    def test_check_flag_fails_on_failing_scenario(self, capsys, tmp_path):
        registry = str(tmp_path / "runs.db")
        self._record_run(registry)
        from repro.store import RunRegistry

        with RunRegistry(registry) as store:
            store.record(
                kind="scenario",
                metrics={
                    "scenario": "independence",
                    "passed": False,
                    "gate_failures": ["precision 0.000 < 1.000"],
                },
                smoke=True,
                cpus=1,
                config_hash="cafecafe",
                git_sha="abc1234",
                created_at="2099-01-01T00:00:00Z",
            )
        capsys.readouterr()
        assert main(["scorecard", "--registry", registry]) == 0
        assert main(["scorecard", "--registry", registry, "--check"]) == 1
        assert "regressed" in capsys.readouterr().err

    def test_markdown_output_file(self, capsys, tmp_path):
        registry = str(tmp_path / "runs.db")
        self._record_run(registry)
        capsys.readouterr()
        target = tmp_path / "scorecard.md"
        assert (
            main(
                [
                    "scorecard",
                    "--registry",
                    registry,
                    "--output",
                    str(target),
                ]
            )
            == 0
        )
        assert "# Scenario scorecard" in target.read_text()


class TestStoreCommands:
    """The durable-store surface: --store/--name, history, diff, runs."""

    def _delta_csv(self, tmp_path, n=200, seed=11):
        import numpy as np

        from repro.eval.paper import paper_table

        table = paper_table()
        dataset = Dataset.from_joint(
            table.schema,
            table.probabilities(),
            n,
            np.random.default_rng(seed),
        )
        path = tmp_path / "delta.csv"
        write_dataset_csv(dataset, path)
        return str(path)

    def test_discover_into_store_then_update_and_history(
        self, capsys, tmp_path
    ):
        store = str(tmp_path / "kb.db")
        assert main(["discover", "--store", store]) == 0
        assert "stored as 'paper'" in capsys.readouterr().out
        csv = self._delta_csv(tmp_path)
        assert main(["update", "--store", store, "--csv", csv]) == 0
        assert "persisted to 'paper'" in capsys.readouterr().out
        assert main(["history", "paper", "--store", store]) == 0
        output = capsys.readouterr().out
        assert "update revisions" in output
        assert "warm" in output

    def test_history_json_is_machine_parseable(self, capsys, tmp_path):
        import json

        store = str(tmp_path / "kb.db")
        assert main(["discover", "--store", store, "--name", "kb"]) == 0
        capsys.readouterr()
        assert main(["history", "kb", "--store", store, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and rows[0]["mode"] == "initial"
        assert rows[-1]["artifact"]

    def test_diff_between_revisions(self, capsys, tmp_path):
        store = str(tmp_path / "kb.db")
        assert main(["discover", "--store", store]) == 0
        csv = self._delta_csv(tmp_path)
        assert main(["update", "--store", store, "--csv", csv]) == 0
        capsys.readouterr()
        assert main(["diff", "paper", "0", "1", "--store", store]) == 0
        output = capsys.readouterr().out
        assert "revision 0 -> 1" in output
        assert "samples:" in output

    def test_update_requires_exactly_one_source(self, capsys, tmp_path):
        csv = self._delta_csv(tmp_path)
        assert main(["update", "--csv", csv]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert (
            main(
                [
                    "update",
                    "--csv",
                    csv,
                    "--kb",
                    "kb.json",
                    "--store",
                    "kb.db",
                ]
            )
            == 2
        )

    def test_update_needs_name_in_multi_kb_store(self, capsys, tmp_path):
        store = str(tmp_path / "kb.db")
        assert main(["discover", "--store", store, "--name", "one"]) == 0
        assert main(["discover", "--store", store, "--name", "two"]) == 0
        csv = self._delta_csv(tmp_path)
        capsys.readouterr()
        assert main(["update", "--store", store, "--csv", csv]) == 1
        assert "--name is required" in capsys.readouterr().err

    def test_discover_name_requires_store(self, capsys):
        assert main(["discover", "--name", "x"]) == 2
        assert "--name requires --store" in capsys.readouterr().err

    def test_history_of_missing_kb_fails_cleanly(self, capsys, tmp_path):
        store = str(tmp_path / "kb.db")
        assert main(["discover", "--store", store]) == 0
        capsys.readouterr()
        assert main(["history", "ghost", "--store", store]) == 1
        assert "no knowledge base named" in capsys.readouterr().err

    def test_runs_import_list_show_round_trip(self, capsys, tmp_path):
        import json
        from pathlib import Path

        registry = str(tmp_path / "runs.db")
        trajectory = (
            Path(__file__).resolve().parent.parent / "BENCH_discovery.json"
        )
        assert (
            main(["runs", "import", str(trajectory), "--registry", registry])
            == 0
        )
        assert "imported" in capsys.readouterr().out
        # Idempotent: the re-import inserts nothing.
        assert (
            main(["runs", "import", str(trajectory), "--registry", registry])
            == 0
        )
        assert "imported 0 new runs" in capsys.readouterr().out
        assert (
            main(
                [
                    "runs",
                    "list",
                    "--registry",
                    registry,
                    "--smoke",
                    "--json",
                ]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert rows and all(row["smoke"] for row in rows)
        assert (
            main(["runs", "show", rows[0]["run_id"], "--registry", registry])
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "benchmark"
        assert document["metrics"]

    def test_runs_show_unknown_id_fails_cleanly(self, capsys, tmp_path):
        registry = str(tmp_path / "runs.db")
        assert main(["runs", "show", "feedface", "--registry", registry]) == 1
        assert "no run" in capsys.readouterr().err

    def test_scenarios_run_records_through_registry(self, capsys, tmp_path):
        import json
        import sqlite3

        registry = str(tmp_path / "runs.db")
        assert (
            main(
                [
                    "scenarios",
                    "run",
                    "--smoke",
                    "--scenario",
                    "independence",
                    "--no-baselines",
                    "--registry",
                    registry,
                ]
            )
            == 0
        )
        assert "recorded 1 scenario runs" in capsys.readouterr().err
        rows = sqlite3.connect(registry).execute(
            "SELECT kind, smoke, metrics FROM runs"
        ).fetchall()
        assert len(rows) == 1
        kind, smoke, metrics = rows[0]
        assert kind == "scenario" and smoke == 1
        assert json.loads(metrics)["scenario"] == "independence"


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
