"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data.dataset import Dataset
from repro.data.io import write_dataset_csv


@pytest.mark.parametrize(
    "command,needle",
    [
        (["figure1"], "FIGURE 1"),
        (["figure2"], "RELATION OF SMOKING TO CANCER"),
        (["table1"], "TABLE 1"),
        (["table2"], "TABLE 2"),
        (["solvers"], "gevarter"),
        (["appendixb"], "APPENDIX B"),
        (["discover"], "constraints found"),
        (["discover", "--max-order", "2"], "constraints found"),
        (["rules", "--min-probability", "0.7"], "IF "),
        (["loglinear"], "adopted margin"),
    ],
)
def test_commands_print_expected(capsys, command, needle):
    assert main(command) == 0
    output = capsys.readouterr().out
    assert needle in output


def test_discover_with_csv(capsys, schema, table, rng, tmp_path):
    dataset = Dataset.from_joint(schema, table.probabilities(), 3000, rng)
    path = tmp_path / "survey.csv"
    write_dataset_csv(dataset, path)
    assert main(["discover", "--csv", str(path)]) == 0
    output = capsys.readouterr().out
    assert "N=3000" in output


def test_recovery_command(capsys):
    assert main(["recovery", "--trials", "1"]) == 0
    output = capsys.readouterr().out
    assert "mml" in output and "chi2" in output and "bic" in output


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
