"""Tests for the Estimator lifecycle protocol and its registry."""

import numpy as np
import pytest

from repro.baselines.loglinear import discover_loglinear
from repro.baselines.naive_bayes import NaiveBayesClassifier
from repro.data.dataset import Dataset
from repro.data.streaming import TableBuilder
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.estimators import (
    DiscoveryEstimator,
    Estimator,
    available_estimators,
    create_estimator,
    register_estimator,
    unregister_estimator,
)
from repro.estimators.discovery import scan_for_new_significance
from repro.exceptions import DataError


@pytest.fixture
def delta(schema, table, rng):
    return Dataset.from_joint(
        schema, table.probabilities(), 500, rng
    ).to_contingency()


class TestRegistry:
    def test_builtins_registered(self):
        names = available_estimators()
        for name in (
            "discovery",
            "empirical",
            "independence",
            "loglinear",
            "naive_bayes",
        ):
            assert name in names

    def test_create_by_name(self, table):
        estimator = create_estimator("independence").fit(table)
        assert estimator.model.probability({"SMOKING": "smoker"}) == (
            pytest.approx(1290 / 3428, abs=1e-9)
        )

    def test_create_unknown(self):
        with pytest.raises(DataError, match="unknown estimator"):
            create_estimator("nope")

    def test_create_with_options(self, table):
        estimator = create_estimator(
            "naive_bayes", class_attribute="CANCER"
        ).fit(table)
        assert isinstance(estimator.model, NaiveBayesClassifier)

    def test_duplicate_name_rejected(self):
        class Fake(Estimator):
            name = "discovery"

            @property
            def model(self):
                return None

            def _fit(self, table):
                pass

        with pytest.raises(ValueError, match="already registered"):
            register_estimator(Fake)

    def test_register_unregister_cycle(self, table):
        class Plugin(Estimator):
            name = "plugin-test"

            def __init__(self):
                super().__init__()
                self._model = None

            @property
            def model(self):
                return self._model

            def _fit(self, table):
                self._model = table.total

        try:
            register_estimator(Plugin)
            estimator = create_estimator("plugin-test").fit(table)
            assert estimator.model == table.total
        finally:
            unregister_estimator("plugin-test")
        assert "plugin-test" not in available_estimators()


class TestLifecycleBasics:
    def test_update_before_fit(self, table):
        with pytest.raises(DataError, match="not fitted"):
            create_estimator("discovery").update(table)

    def test_fit_empty_table(self, schema):
        from repro.data.contingency import ContingencyTable

        with pytest.raises(DataError, match="empty"):
            create_estimator("independence").fit(
                ContingencyTable.zeros(schema)
            )

    def test_empty_delta_is_noop(self, schema, table):
        from repro.data.contingency import ContingencyTable

        estimator = create_estimator("independence").fit(table)
        report = estimator.update(ContingencyTable.zeros(schema))
        assert report.mode == "noop"
        assert estimator.table.total == table.total

    def test_schema_mismatch_reported(self, schema, table):
        from repro.data.contingency import ContingencyTable
        from repro.data.schema import Attribute, Schema

        other = Schema([Attribute("X", ("a", "b"))])
        estimator = create_estimator("independence").fit(table)
        with pytest.raises(DataError, match="missing attributes"):
            estimator.update(ContingencyTable.zeros(other))

    def test_update_accepts_raw_samples(self, table):
        estimator = create_estimator("independence").fit(table)
        report = estimator.update([("smoker", "yes", "no")] * 10)
        assert report.mode == "cold"
        assert estimator.table.total == table.total + 10

    def test_update_rejects_builder(self, schema, table):
        """A builder is not consumed by update, so accepting one would
        re-absorb its history every window; snapshot() is the safe form."""
        builder = TableBuilder(schema)
        builder.add_sample(("smoker", "yes", "no"))
        estimator = create_estimator("independence").fit(table)
        with pytest.raises(DataError, match="snapshot"):
            estimator.update(builder)
        estimator.update(builder.snapshot())
        assert estimator.table.total == table.total + 1

    def test_refresh_refits_accumulated(self, table, delta):
        estimator = create_estimator("empirical").fit(table)
        estimator.update(delta)
        report = estimator.refresh()
        assert report.mode == "cold"
        merged = table + delta
        assert np.allclose(
            estimator.model.joint(), merged.probabilities(), atol=1e-12
        )


class TestBaselineEstimators:
    def test_independence_update_exact(self, table, delta):
        estimator = create_estimator("independence").fit(table)
        estimator.update(delta)
        merged = table + delta
        for name in table.schema.names:
            assert np.allclose(
                estimator.model.marginal([name]),
                merged.first_order_probabilities(name),
                atol=1e-12,
            )

    def test_empirical_update_exact(self, table, delta):
        estimator = create_estimator("empirical").fit(table)
        estimator.update(delta)
        merged = table + delta
        assert np.allclose(
            estimator.model.joint(), merged.probabilities(), atol=1e-12
        )

    def test_naive_bayes_update_matches_batch(self, table, delta):
        estimator = create_estimator(
            "naive_bayes", class_attribute="CANCER"
        ).fit(table)
        estimator.update(delta)
        batch = NaiveBayesClassifier(table + delta, "CANCER")
        evidence = {"SMOKING": "smoker", "FAMILY_HISTORY": "yes"}
        assert estimator.model.class_distribution(evidence) == pytest.approx(
            batch.class_distribution(evidence)
        )

    def test_naive_bayes_unknown_class(self, table):
        with pytest.raises(DataError, match="class attribute"):
            create_estimator("naive_bayes", class_attribute="NOPE").fit(table)

    def test_loglinear_warm_matches_cold(self, table, delta):
        estimator = create_estimator("loglinear").fit(table)
        report = estimator.update(delta)
        assert report.mode in ("warm", "cold")
        cold = discover_loglinear(table + delta, estimator.config)
        assert set(estimator.result.constraints.subset_margins) == set(
            cold.constraints.subset_margins
        )
        assert np.allclose(
            estimator.model.joint(), cold.model.joint(), atol=1e-6
        )

    def test_loglinear_warm_sees_new_pair_under_adopted_triple(self):
        """Re-adoption is interleaved per order: a pairwise effect that
        appears inside a previously adopted 3-way term is still adopted
        at order 2, exactly as a cold selection of the merged table would
        (the triple fixes its pairwise marginals, so imposing it first
        would mask the pair forever)."""
        from repro.data.contingency import ContingencyTable
        from repro.data.schema import Attribute, Schema

        schema = Schema([Attribute(n, ("0", "1")) for n in ("X", "Y", "Z")])
        # XOR-style window: pairwise marginals independent, triple real.
        xor = np.array(
            [[[220, 30], [30, 220]], [[30, 220], [220, 30]]]
        )
        window = ContingencyTable(schema, xor)
        estimator = create_estimator("loglinear").fit(window)
        assert estimator.result.found_subsets == [("X", "Y", "Z")]

        # Delta: strong X-Y association, Z uniform.
        pair = np.array(
            [[[400, 400], [50, 50]], [[50, 50], [400, 400]]]
        )
        report = estimator.update(ContingencyTable(schema, pair))
        assert report.mode == "warm"
        cold = discover_loglinear(
            window + ContingencyTable(schema, pair), estimator.config
        )
        assert set(estimator.result.constraints.subset_margins) == set(
            cold.constraints.subset_margins
        )
        assert ("X", "Y") in estimator.result.constraints.subset_margins

    def test_loglinear_warm_respects_lowered_cap(self, table, delta):
        from repro.baselines.loglinear import LogLinearConfig

        estimator = create_estimator("loglinear").fit(table)
        adopted = len(estimator.result.constraints.subset_margins)
        assert adopted >= 1
        capped = create_estimator(
            "loglinear", config=LogLinearConfig(max_terms=0)
        )
        capped._result = estimator.result
        capped._table = estimator.table
        capped.update(delta)
        assert len(capped.result.constraints.subset_margins) == 0

    def test_loglinear_stale_term_falls_back_and_drops(self, rng):
        """A term adopted from a small noisy window is re-verified on
        update; a large independent delta kills it via the cold fallback
        instead of letting it ride the warm path forever."""
        from repro.data.contingency import ContingencyTable
        from repro.data.schema import Attribute, Schema

        schema = Schema(
            [Attribute("X", ("a", "b")), Attribute("Y", ("c", "d"))]
        )
        # Small window with a strong (spurious) association.
        window = ContingencyTable(schema, np.array([[40, 5], [5, 40]]))
        estimator = create_estimator("loglinear").fit(window)
        assert ("X", "Y") in estimator.result.constraints.subset_margins

        # A much larger, perfectly independent delta.
        independent = ContingencyTable(
            schema, np.array([[2500, 2500], [2500, 2500]])
        )
        report = estimator.update(independent)
        assert report.mode == "cold"
        assert ("X", "Y") in report.dropped
        assert ("X", "Y") not in estimator.result.constraints.subset_margins


class TestDiscoveryEstimator:
    def test_warm_update_matches_cold_refit(self, table, delta):
        config = DiscoveryConfig(max_order=2)
        estimator = DiscoveryEstimator(config).fit(table)
        report = estimator.update(delta)
        assert report.mode == "warm"
        cold = discover(table + delta, config)
        assert estimator.result.constraints.cell_keys() == (
            cold.constraints.cell_keys()
        )
        assert np.allclose(
            estimator.model.joint(), cold.model.joint(), atol=1e-8
        )

    def test_readoption_recorded_in_audit_trail(self, table, delta):
        estimator = DiscoveryEstimator(DiscoveryConfig(max_order=2)).fit(table)
        adopted = estimator.result.constraints.cell_keys()
        estimator.update(delta)
        readopt_scans = [
            scan for scan in estimator.result.scans if scan.readopted
        ]
        assert readopt_scans
        assert set(readopt_scans[0].readopted) <= adopted

    def test_update_report_tracks_new_constraints(self, schema, table, rng):
        """Streaming in strongly correlated data grows the constraint set."""
        estimator = DiscoveryEstimator(DiscoveryConfig(max_order=2)).fit(table)
        before = estimator.result.constraints.cell_keys()
        skewed = Dataset.from_samples(
            schema, [("smoker", "yes", "yes")] * 2000
        ).to_contingency()
        report = estimator.update(skewed)
        after = estimator.result.constraints.cell_keys()
        assert after - before == set(report.added)
        assert before - after == set(report.dropped)

    def test_warm_update_respects_lowered_cap(self, table, delta):
        """A max_constraints cap lowered between revisions binds the
        re-adoption chain too, exactly like a capped cold run."""
        estimator = DiscoveryEstimator(
            DiscoveryConfig(max_order=2, max_constraints=5)
        ).fit(table)
        capped = DiscoveryEstimator(
            DiscoveryConfig(max_order=2, max_constraints=2)
        )
        capped._result = estimator.result
        capped._table = estimator.table
        capped.update(delta)
        found = capped.result.constraints.cells
        assert len(found) <= 2

    def test_gevarter_solver_update(self, table, delta):
        config = DiscoveryConfig(max_order=2, solver="gevarter", tol=1e-9)
        estimator = DiscoveryEstimator(config).fit(table)
        report = estimator.update(delta)
        assert report.mode in ("warm", "cold")
        cold = discover(table + delta, config)
        assert estimator.result.constraints.cell_keys() == (
            cold.constraints.cell_keys()
        )

    def test_scan_probe_quiet_on_same_distribution(self, table, delta):
        estimator = DiscoveryEstimator(DiscoveryConfig(max_order=2)).fit(table)
        merged = table + delta
        assert not scan_for_new_significance(
            merged, estimator.result, estimator.config
        )

    def test_scan_probe_fires_on_drift(self, schema, table):
        estimator = DiscoveryEstimator(DiscoveryConfig(max_order=2)).fit(table)
        skewed = Dataset.from_samples(
            schema, [("smoker", "yes", "yes")] * 3000
        ).to_contingency()
        assert scan_for_new_significance(
            table + skewed, estimator.result, estimator.config
        )
