"""Auto-selection of serial vs sharded scans by candidate-pool size.

``DiscoveryConfig.max_workers`` must never be a pessimization: on a
candidate pool smaller than ``parallel_scan_threshold`` the engine runs
the serial kernel (and, because worker pools start lazily, spawns no
processes at all), recording the chosen path per order in
``DiscoveryProfile.scan_paths``.  An executor the caller constructed and
passed in explicitly is always honored — the bypass applies only to
executors the engine created from its own config.
"""

import numpy as np
import pytest

from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine, _candidate_pool_size
from repro.exceptions import DataError
from repro.parallel.scan import ShardedScanExecutor


def paths(result) -> list[tuple[int, str]]:
    return [
        (entry["order"], entry["path"])
        for entry in result.profile.scan_paths
    ]


class TestAutoSelect:
    def test_small_pool_bypasses_config_created_executor(self, table):
        """The paper's order-2 pool (16 cells) is far below the default
        threshold: max_workers=4 must fall back to the serial kernel —
        and never start a worker process."""
        with DiscoveryEngine(
            DiscoveryConfig(max_order=2, max_workers=4)
        ) as engine:
            result = engine.run(table)
            assert paths(result) == [(2, "serial")]
            # Lazy pools: the serial choice means no workers ever spawned.
            assert engine.executor is not None
            assert not engine.executor.pool._workers

    def test_zero_threshold_forces_the_sharded_path(self, table):
        serial = DiscoveryEngine(DiscoveryConfig(max_order=2)).run(table)
        with DiscoveryEngine(
            DiscoveryConfig(
                max_order=2, max_workers=4, parallel_scan_threshold=0
            )
        ) as engine:
            sharded = engine.run(table)
        assert paths(sharded) == [(2, "sharded")]
        assert [c.key for c in sharded.found] == [
            c.key for c in serial.found
        ]
        assert np.array_equal(sharded.model.joint(), serial.model.joint())

    def test_explicit_executor_is_always_honored(self, table):
        """An executor the caller passed in is their decision — the
        threshold bypass must not second-guess it, even on a tiny pool."""
        with ShardedScanExecutor(max_workers=2) as executor:
            engine = DiscoveryEngine(
                DiscoveryConfig(max_order=2), executor=executor
            )
            result = engine.run(table)
        assert paths(result) == [(2, "sharded")]

    def test_reference_backend_records_its_path(self, table):
        result = DiscoveryEngine(
            DiscoveryConfig(max_order=2), scan_backend="reference"
        ).run(table)
        assert paths(result) == [(2, "reference")]

    def test_scan_paths_record_pool_cells(self, table):
        result = DiscoveryEngine(DiscoveryConfig(max_order=2)).run(table)
        (entry,) = result.profile.scan_paths
        assert entry["cells"] == _candidate_pool_size(table, 2)
        assert entry["cells"] == 16  # the paper's "16 second order cells"

    def test_candidate_pool_size_counts_subset_cells(self, table):
        schema = table.schema
        cells = 1
        for name in schema.names:
            cells *= schema.attribute(name).cardinality
        # The full joint is the single highest-order subset.
        assert _candidate_pool_size(table, len(schema)) == cells


class TestThresholdConfig:
    def test_threshold_is_not_serialized(self):
        # Execution knob, machine-local — same contract as max_workers: a
        # saved artifact must not pin scan-path choices on a later host.
        config = DiscoveryConfig(max_order=2, parallel_scan_threshold=7)
        data = config.to_dict()
        assert "parallel_scan_threshold" not in data
        assert DiscoveryConfig.from_dict(data).parallel_scan_threshold == 512

    def test_negative_threshold_rejected(self):
        with pytest.raises(DataError, match="parallel_scan_threshold"):
            DiscoveryConfig(parallel_scan_threshold=-1)
