"""Tests for a-priori ("originally given as significant") constraints."""

import pytest

from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.maxent.constraints import CellConstraint


@pytest.fixture
def given(table):
    probability = (
        table.marginal(["SMOKING", "CANCER"])[0, 0] / table.total
    )
    return CellConstraint(("SMOKING", "CANCER"), (0, 0), probability)


class TestGivenConstraints:
    def test_given_cell_not_rescanned(self, table, given):
        result = discover(
            table, DiscoveryConfig(given_constraints=(given,), max_order=2)
        )
        for scan in result.scans:
            for test in scan.tests:
                assert (test.attributes, test.values) != given.key

    def test_given_cell_in_final_constraints(self, table, given):
        result = discover(
            table, DiscoveryConfig(given_constraints=(given,), max_order=2)
        )
        assert given.key in {c.key for c in result.found}

    def test_first_adoption_changes(self, table, given):
        """With the top cell pre-given, the scan's first adoption is the
        next-most-significant cell instead."""
        baseline = discover(table, DiscoveryConfig(max_order=2))
        seeded = discover(
            table, DiscoveryConfig(given_constraints=(given,), max_order=2)
        )
        assert baseline.found[0].key == given.key
        first_scanned = next(
            s.chosen for s in seeded.scans if s.chosen is not None
        )
        assert (first_scanned.attributes, first_scanned.values) != given.key

    def test_same_final_model_as_unseeded(self, table, given):
        """Seeding with what discovery would find first anyway converges
        to the same knowledge."""
        import numpy as np

        baseline = discover(table, DiscoveryConfig(max_order=2))
        seeded = discover(
            table, DiscoveryConfig(given_constraints=(given,), max_order=2)
        )
        assert {c.key for c in baseline.found} == {
            c.key for c in seeded.found
        }
        assert np.allclose(
            baseline.model.joint(), seeded.model.joint(), atol=1e-7
        )

    def test_max_constraints_excludes_given(self, table, given):
        result = discover(
            table,
            DiscoveryConfig(
                given_constraints=(given,), max_constraints=1, max_order=2
            ),
        )
        # 1 given + 1 discovered.
        assert len(result.found) == 2

    def test_list_coerced_to_tuple(self, given):
        config = DiscoveryConfig(given_constraints=[given])
        assert isinstance(config.given_constraints, tuple)
