"""Tests for the Figure-3 discovery loop."""

import numpy as np
import pytest

from repro.data.contingency import ContingencyTable
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine, discover
from repro.exceptions import DataError
from repro.synth.generators import (
    independent_population,
    random_planted_population,
)


class TestPaperRun:
    def test_first_adoption_is_smoker_cancer(self, table):
        result = discover(table)
        first = result.found[0]
        assert first.attributes == ("SMOKING", "CANCER")
        assert first.values == (0, 0)

    def test_all_constraints_satisfied(self, table):
        result = discover(table)
        model = result.model
        for cell in result.found:
            marginal = model.marginal(list(cell.attributes))
            assert marginal[cell.values] == pytest.approx(
                cell.probability, abs=1e-7
            )

    def test_final_model_not_flagged(self, table):
        """After discovery, a rescan at every order finds nothing more."""
        from repro.significance.mml import most_significant, scan_order

        result = discover(table)
        for order in (2, 3):
            tests = scan_order(
                table, result.model, order, result.constraints
            )
            assert most_significant(tests) is None

    def test_terminal_scan_per_order(self, table):
        result = discover(table)
        terminal_orders = [s.order for s in result.scans if s.chosen is None]
        assert terminal_orders.count(2) == 1
        assert terminal_orders.count(3) == 1

    def test_smoking_cancer_association_learned(self, table):
        """The acquired knowledge reproduces the data's association:
        smokers have elevated cancer probability."""
        result = discover(table)
        model = result.model
        smoker = model.conditional({"CANCER": "yes"}, {"SMOKING": "smoker"})
        non_smoker = model.conditional(
            {"CANCER": "yes"}, {"SMOKING": "non-smoker"}
        )
        empirical_smoker = 240 / 1290
        empirical_non_smoker = 93 / 1133
        assert smoker == pytest.approx(empirical_smoker, abs=0.01)
        assert non_smoker == pytest.approx(empirical_non_smoker, abs=0.01)
        assert smoker > non_smoker

    def test_summary_mentions_constraints(self, table):
        result = discover(table)
        text = result.summary()
        assert "SMOKING=smoker" in text
        assert f"N={table.total}" in text


class TestConfig:
    def test_max_order_limits_scan(self, table):
        result = discover(table, DiscoveryConfig(max_order=2))
        assert all(s.order == 2 for s in result.scans)

    def test_max_constraints_caps_adoptions(self, table):
        result = discover(table, DiscoveryConfig(max_constraints=2))
        assert len(result.found) == 2

    def test_gevarter_solver_agrees(self, table):
        ipf_result = discover(table, DiscoveryConfig(solver="ipf"))
        gevarter_result = discover(table, DiscoveryConfig(solver="gevarter"))
        assert [c.key for c in ipf_result.found] == [
            c.key for c in gevarter_result.found
        ]
        assert np.allclose(
            ipf_result.model.joint(), gevarter_result.model.joint(), atol=1e-6
        )

    def test_invalid_config(self):
        with pytest.raises(DataError):
            DiscoveryConfig(solver="magic")
        with pytest.raises(DataError):
            DiscoveryConfig(max_order=1)
        with pytest.raises(DataError):
            DiscoveryConfig(tol=-1.0)

    def test_empty_table_rejected(self, schema):
        with pytest.raises(DataError, match="empty"):
            discover(ContingencyTable.zeros(schema))


class TestBehaviourOnSyntheticData:
    def test_independent_data_yields_few_constraints(self, rng):
        """On truly independent data the MML test should stay quiet."""
        population = independent_population(rng, num_attributes=3)
        table = population.sample_table(5000, rng)
        result = discover(table, DiscoveryConfig(max_order=2))
        assert len(result.found) <= 1  # allow one chance false alarm

    def test_planted_correlation_recovered(self, rng):
        population = random_planted_population(
            rng, num_attributes=3, num_planted=1, strength=4.0
        )
        table = population.sample_table(20000, rng)
        result = discover(table, DiscoveryConfig(max_order=2))
        planted = population.planted
        found_keys = {(c.attributes, c.values) for c in result.found}
        assert (planted[0].attributes, planted[0].values) in found_keys

    def test_more_data_increases_sensitivity(self, rng):
        """A weak planted effect invisible at small N emerges at large N —
        the MML threshold adapts to sample size."""
        population = random_planted_population(
            np.random.default_rng(7), num_attributes=3, num_planted=1,
            strength=1.6,
        )
        small = population.sample_table(300, np.random.default_rng(1))
        large = population.sample_table(60000, np.random.default_rng(2))
        few = discover(small, DiscoveryConfig(max_order=2))
        many = discover(large, DiscoveryConfig(max_order=2))
        assert len(many.found) >= len(few.found)
        assert len(many.found) >= 1

    def test_dataset_pipeline(self, rng):
        """Discovery accepts data arriving as raw samples too."""
        population = random_planted_population(rng, num_attributes=3)
        dataset = population.sample(5000, rng)
        result = discover(dataset.to_contingency())
        assert result.table.total == 5000

    def test_engine_reusable(self, table):
        engine = DiscoveryEngine()
        first = engine.run(table)
        second = engine.run(table)
        assert [c.key for c in first.found] == [c.key for c in second.found]
