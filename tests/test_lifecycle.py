"""Tests for the live knowledge-base lifecycle (repro.lifecycle)."""

import numpy as np
import pytest

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.data.dataset import Dataset
from repro.discovery.config import DiscoveryConfig
from repro.exceptions import DataError
from repro.lifecycle import LiveKnowledgeBase, UpdatePolicy


@pytest.fixture
def live(table):
    return LiveKnowledgeBase.from_data(
        table, policy=UpdatePolicy(every_n=100)
    )


class TestUpdatePolicy:
    def test_defaults(self):
        policy = UpdatePolicy()
        assert policy.every_n == 1000
        assert not policy.significance_triggered

    def test_bad_every_n(self):
        with pytest.raises(DataError, match="every_n"):
            UpdatePolicy(every_n=0)

    def test_bad_check_every(self):
        with pytest.raises(DataError, match="check_every"):
            UpdatePolicy(check_every=0)


class TestCountPolicy:
    def test_observe_triggers_at_threshold(self, live):
        for _ in range(99):
            assert live.observe(("smoker", "yes", "no")) is None
        assert live.pending == 99
        revision = live.observe(("smoker", "yes", "no"))
        assert revision is not None
        assert revision.added_samples == 100
        assert live.pending == 0
        assert live.sample_size == 3428 + 100

    def test_observe_records(self, live):
        revision = live.observe(
            {"SMOKING": "smoker", "CANCER": "yes", "FAMILY_HISTORY": "no"}
        )
        assert revision is None
        assert live.pending == 1

    def test_observe_batch(self, live, schema, table, rng):
        dataset = Dataset.from_joint(schema, table.probabilities(), 250, rng)
        revision = live.observe_batch(list(dataset))
        assert revision is not None
        assert live.pending == 0
        assert live.sample_size == 3428 + 250

    def test_add_table(self, live, schema, table, rng):
        shard = Dataset.from_joint(
            schema, table.probabilities(), 150, rng
        ).to_contingency()
        revision = live.add_table(shard)
        assert revision is not None
        assert revision.added_samples == 150

    def test_manual_policy_only_flushes_on_demand(self, table):
        live = LiveKnowledgeBase.from_data(
            table, policy=UpdatePolicy(every_n=None)
        )
        for _ in range(500):
            assert live.observe(("smoker", "yes", "no")) is None
        assert live.pending == 500
        revision = live.flush()
        assert revision is not None
        assert live.pending == 0

    def test_flush_with_nothing_pending(self, live):
        assert live.flush() is None

    def test_history_accumulates(self, live, schema, table, rng):
        assert [r.mode for r in live.history] == ["initial"]
        dataset = Dataset.from_joint(schema, table.probabilities(), 300, rng)
        live.observe_batch(list(dataset))
        assert len(live.history) == 2
        assert live.history[1].number == 1
        assert live.history[1].mode in ("warm", "cold")


class TestSignificancePolicy:
    def test_quiet_stream_does_not_refit(self, schema, table, rng):
        live = LiveKnowledgeBase.from_data(
            table,
            policy=UpdatePolicy(
                every_n=None, significance_triggered=True, check_every=50
            ),
        )
        dataset = Dataset.from_joint(schema, table.probabilities(), 200, rng)
        revision = live.observe_batch(list(dataset))
        # Same population: the probe sees no new structure, no refit.
        assert revision is None
        assert live.pending == 200

    def test_drifting_stream_triggers_refit(self, schema, table):
        live = LiveKnowledgeBase.from_data(
            table,
            policy=UpdatePolicy(
                every_n=None, significance_triggered=True, check_every=50
            ),
        )
        skewed = [("smoker", "yes", "yes")] * 2000
        revision = live.observe_batch(skewed)
        assert revision is not None
        assert live.pending == 0
        assert len(revision.constraints_added) > 0


class TestLiveServing:
    def test_sessions_stay_valid_across_refits(self, table, schema, rng):
        live = LiveKnowledgeBase.from_data(
            table, policy=UpdatePolicy(every_n=100)
        )
        session = live.session()
        before = session.ask("CANCER=yes | SMOKING=smoker")
        # Stream heavily skewed data so the answer must move.
        live.observe_batch([("smoker", "yes", "no")] * 100)
        after = session.ask("CANCER=yes | SMOKING=smoker")
        assert after > before
        # The session still points at the same (mutated-in-place) model.
        assert session.model is live.kb.model

    def test_query_passthrough(self, live):
        assert live.query("CANCER=yes | SMOKING=smoker") == pytest.approx(
            live.kb.query("CANCER=yes | SMOKING=smoker")
        )
        assert live.probability(
            {"CANCER": "yes"}, {"SMOKING": "smoker"}
        ) == pytest.approx(live.kb.probability(
            {"CANCER": "yes"}, {"SMOKING": "smoker"}
        ))

    def test_needs_updatable_kb(self, table):
        kb = ProbabilisticKnowledgeBase.from_data(table)
        stripped = ProbabilisticKnowledgeBase.from_dict(
            {**kb.to_dict(), "discovery": None}
        )
        with pytest.raises(DataError, match="updatable"):
            LiveKnowledgeBase(stripped)

    def test_observe_bad_type(self, live):
        with pytest.raises(DataError, match="observe expects"):
            live.observe(42)

    def test_observe_batch_bad_item_reported(self, live):
        with pytest.raises(DataError, match="observe expects"):
            live.observe_batch([("smoker", "yes", "no"), 42])

    def test_observe_batch_string_item_reported(self, live):
        """A bare string must not be iterated character by character."""
        with pytest.raises(DataError, match="observe expects"):
            live.observe_batch(["smoker"])

    def test_observe_batch_is_atomic(self, live):
        """A bad item partway through leaves nothing half-counted."""
        with pytest.raises(DataError):
            live.observe_batch(
                [("smoker", "yes", "no"), ("smoker", "yes")]  # bad width
            )
        assert live.pending == 0

    def test_repr(self, live):
        text = repr(live)
        assert "N=3428" in text and "pending=0" in text


class TestEquivalenceThroughLifecycle:
    def test_streamed_equals_batch(self, schema, table, rng):
        """Observing in windows lands on the same model as one cold fit."""
        config = DiscoveryConfig(max_order=2)
        dataset = Dataset.from_joint(schema, table.probabilities(), 900, rng)
        rows = list(dataset)

        live = LiveKnowledgeBase.from_data(
            table, config=config, policy=UpdatePolicy(every_n=300)
        )
        live.observe_batch(rows[:300])
        live.observe_batch(rows[300:600])
        live.observe_batch(rows[600:])
        assert live.pending == 0

        batch = ProbabilisticKnowledgeBase.from_data(
            table + dataset.to_contingency(), config
        )
        assert {c.key for c in live.kb.constraints} == {
            c.key for c in batch.constraints
        }
        assert np.allclose(
            live.kb.model.joint(), batch.model.joint(), atol=1e-7
        )


class TestDurableLifecycle:
    """bind_store/from_store: every refit persists before returning."""

    def test_bind_store_saves_now_and_on_every_refit(self, table, tmp_path):
        from repro.store import KBStore

        live = LiveKnowledgeBase.from_data(
            table, policy=UpdatePolicy(every_n=50)
        )
        with KBStore(tmp_path / "kb.db") as store:
            live.bind_store(store, "survey")
            assert store.names() == ["survey"]
            boot_revision = store.describe("survey").latest_revision
            for _ in range(50):
                live.observe(("smoker", "yes", "no"))
            assert store.describe("survey").latest_revision == (
                boot_revision + 1
            )
            assert store.history("survey")[-1].artifact_sha is not None

    def test_from_store_resumes_and_keeps_persisting(self, table, tmp_path):
        from repro.core.serialization import canonical_json
        from repro.store import KBStore

        first = LiveKnowledgeBase.from_data(
            table, policy=UpdatePolicy(every_n=50)
        )
        with KBStore(tmp_path / "kb.db") as store:
            first.bind_store(store, "survey")
            for _ in range(50):
                first.observe(("smoker", "yes", "no"))
            # A new process resumes from the store at the same state.
            resumed = LiveKnowledgeBase.from_store(
                store, "survey", policy=UpdatePolicy(every_n=50)
            )
            assert canonical_json(resumed.kb.to_dict()) == canonical_json(
                first.kb.to_dict()
            )
            for _ in range(50):
                resumed.observe(("non-smoker", "no", "no"))
            assert store.describe("survey").latest_revision == (
                resumed.kb.revisions[-1].number
            )

    def test_manual_flush_persists(self, table, tmp_path):
        from repro.store import KBStore

        live = LiveKnowledgeBase.from_data(
            table, policy=UpdatePolicy(every_n=None)
        )
        with KBStore(tmp_path / "kb.db") as store:
            live.bind_store(store, "survey")
            live.observe(("smoker", "yes", "no"))
            before = store.describe("survey").latest_revision
            revision = live.flush()
            assert revision is not None
            assert store.describe("survey").latest_revision == (
                revision.number
            ) > before

    def test_unbound_lifecycle_unchanged(self, live):
        # No store bound: flush still works, nothing tries to persist.
        live.observe(("smoker", "yes", "no"))
        assert live.flush() is not None
