"""Quickstart: the paper's smoking/cancer example end to end.

Runs the complete pipeline on the exact data of Figure 1: contingency
table → discovery of significant joint probabilities → probability
queries → IF-THEN rules.

Run with::

    python examples/quickstart.py
"""

from repro import ProbabilisticKnowledgeBase, paper_table


def main() -> None:
    table = paper_table()
    print("Input data (the paper's Figure 1):")
    print(table.render("SMOKING", "CANCER", show_marginals=True))
    print()

    kb = ProbabilisticKnowledgeBase.from_data(table)
    print(kb.summary())
    print()

    print("Probability queries (conditionals are ratios of joints):")
    for query in [
        "CANCER=yes",
        "CANCER=yes | SMOKING=smoker",
        "CANCER=yes | SMOKING=non-smoker",
        "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes",
        "SMOKING=smoker | CANCER=yes",
    ]:
        print(f"  P({query}) = {kb.query(query):.4f}")
    print()

    print("IF-THEN rules with probability (lift-sorted, support >= 5%):")
    rules = kb.rules(min_support=0.05, max_conditions=2).sorted_by_lift()
    for rule in list(rules)[:8]:
        print(f"  {rule.describe()}")


if __name__ == "__main__":
    main()
