"""Scenario tour: the conformance matrix over every registered workload.

The ROADMAP asks the system to handle "as many scenarios as you can
imagine"; :mod:`repro.scenarios` is where those live.  This example walks
the whole registry — a null world, planted pairwise links, a genuine
order-3 interaction, a near-deterministic rule, skewed margins,
high-cardinality axes, sparse counts, EM-completed missing data, and a
drifting stream — and for each one:

1. materializes the seeded workload (same table every run);
2. runs the Figure-3 discovery engine with per-stage profiling;
3. scores the adopted constraints against the planted ground truth
   (precision / recall, strict exact-key convention);
4. measures KL(empirical ‖ fitted) — how much of the sample the
   maximum-entropy model fails to explain;
5. compares against the chi-square and BIC baseline selectors;
6. checks the scenario's conformance gates — the same gates CI's
   scenario-matrix job enforces on every push.

Run with::

    python examples/scenario_tour.py [--full]
"""

import sys

from repro.eval.conformance import conformance_report
from repro.scenarios import all_scenarios, run_matrix


def main(argv: list[str]) -> int:
    smoke = "--full" not in argv
    mode = "smoke" if smoke else "full"
    print(f"scenario tour ({mode} sizes)\n")
    for scenario in all_scenarios():
        print(
            f"  {scenario.name}: {scenario.description} "
            f"[N={scenario.sample_size(smoke)}, max order "
            f"{scenario.max_order}]"
        )
    print()
    outcomes = run_matrix(smoke=smoke)
    print(conformance_report(outcomes))
    return 0 if all(outcome.passed for outcome in outcomes) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
