"""Wind-tunnel study: continuous measurements through the full pipeline.

The paper names wind-tunnel tests as a target data source.  This example
synthesizes continuous runs (angle of attack, Mach number, measured lift
quality, separation flag), discretizes the continuous channels into bands
(`repro.data.discretize`), streams them through a `TableBuilder`, writes
and re-reads the survey as CSV (the interchange path), and runs discovery
on the result — the complete raw-instrumentation-to-knowledge path.

The synthetic aerodynamics: flow separation becomes likely at high angle
of attack, more so at high Mach; separated flow ruins the lift quality.
Discovery must surface exactly those correlations.

Run with::

    python examples/wind_tunnel.py [runs]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import Attribute, DiscoveryConfig, ProbabilisticKnowledgeBase, Schema
from repro.data.discretize import Discretizer
from repro.data.io import read_dataset_csv, write_dataset_csv
from repro.data.dataset import Dataset
from repro.data.streaming import TableBuilder


def simulate_runs(n: int, rng: np.random.Generator):
    """Continuous wind-tunnel channels with known physics."""
    angle = rng.uniform(-5.0, 25.0, n)          # degrees
    mach = rng.uniform(0.2, 0.95, n)            # Mach number
    # Separation probability rises with angle, boosted by Mach.
    logits = 0.45 * (angle - 15.0) + 3.0 * (mach - 0.55)
    separated = rng.random(n) < 1.0 / (1.0 + np.exp(-logits))
    # Lift quality collapses when separated.
    lift = np.where(
        separated,
        rng.normal(0.4, 0.15, n),
        rng.normal(1.1, 0.15, n) + 0.01 * angle,
    )
    return angle, mach, lift, separated


def main(n: int = 40000) -> None:
    rng = np.random.default_rng(41)
    angle, mach, lift, separated = simulate_runs(n, rng)

    print(f"Discretizing {n} wind-tunnel runs into categorical bands...")
    angle_bins = Discretizer.fit("ANGLE", angle, bins=3)
    mach_bins = Discretizer.fit("MACH", mach, bins=2)
    lift_bins = Discretizer.fit("LIFT", lift, bins=2, method="quantile")
    schema = Schema(
        [
            angle_bins.attribute(),
            mach_bins.attribute(),
            lift_bins.attribute(),
            Attribute("SEPARATION", ("attached", "separated")),
        ]
    )
    rows = np.column_stack(
        [
            angle_bins.transform(angle),
            mach_bins.transform(mach),
            lift_bins.transform(lift),
            separated.astype(np.int64),
        ]
    )
    dataset = Dataset(schema, rows)

    with tempfile.TemporaryDirectory() as tmp:
        # Round-trip through CSV: the archive interchange path.
        path = Path(tmp) / "tunnel_runs.csv"
        write_dataset_csv(dataset, path)
        print(f"archived to CSV ({path.stat().st_size} bytes), re-reading...")
        recovered = read_dataset_csv(path, schema)

    # Stream into the accumulator in downlink-sized chunks.
    builder = TableBuilder(schema)
    chunk = 5000
    all_rows = list(recovered)
    for start in range(0, len(all_rows), chunk):
        builder.add_samples(all_rows[start : start + chunk])
    table = builder.snapshot()
    print(f"accumulated {table.total} runs in {builder.batches} batches\n")

    kb = ProbabilisticKnowledgeBase.from_data(
        table, DiscoveryConfig(max_order=2)
    )
    print(kb.discovery.summary())
    print()

    print("Aerodynamic questions answered from the acquired knowledge:")
    angle_labels = schema.attribute("ANGLE").values
    for band in angle_labels:
        probability = kb.probability(
            {"SEPARATION": "separated"}, {"ANGLE": band}
        )
        print(f"  P(separated | ANGLE in {band}) = {probability:.3f}")
    lift_labels = schema.attribute("LIFT").values
    print(
        "  P(LIFT in %s | separated) = %.3f"
        % (
            lift_labels[0],
            kb.probability(
                {"LIFT": lift_labels[0]}, {"SEPARATION": "separated"}
            ),
        )
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40000
    main(n)
