"""Streaming telemetry: a live knowledge base over batched downlinks.

The paper's archives never stop growing — "NASA has masses of unevaluated
data from its space explorations" — and a downlink arrives as batches, not
as one table.  This example runs :class:`repro.lifecycle.LiveKnowledgeBase`
over the synthetic telemetry world:

1. fit an initial window of frames;
2. open a query session an operator keeps using the whole time;
3. stream downlink batches — the update policy refits every N frames,
   warm-starting discovery from the current constraints and ``a`` values
   (Figure 4's "last previously calculated a values"), so each refresh
   costs a fraction of a cold refit;
4. inject a failure-mode drift (anomalies start tracking cold
   temperatures) and watch a later revision pick the new correlation up;
5. print the revision history — the knowledge base's audit log.

The operator's session is never rebuilt: every refit lands in the same
model object and the session's caches self-invalidate via the model
fingerprint.

Run with::

    python examples/streaming_telemetry.py [BATCHES]
"""

import sys

import numpy as np

from repro import DiscoveryConfig, LiveKnowledgeBase, UpdatePolicy
from repro.synth.generators import PlantedCell, build_planted_population
from repro.synth.surveys import telemetry_population

QUERY = "ANOMALY=detected | VIBRATION=high"


def drifted_population():
    """The telemetry world after a failure mode appears: anomalies now
    also co-occur with *cold* temperatures (a stuck heater, say)."""
    base = telemetry_population()
    margins = {
        "TEMPERATURE": np.array([0.70, 0.18, 0.12]),
        "VIBRATION": np.array([0.80, 0.20]),
        "RADIATION": np.array([0.75, 0.25]),
        "ANOMALY": np.array([0.90, 0.10]),
    }
    planted = [
        PlantedCell(("VIBRATION", "ANOMALY"), (1, 1), 3.0),
        PlantedCell(("TEMPERATURE", "RADIATION", "ANOMALY"), (1, 1, 1), 2.5),
        PlantedCell(("TEMPERATURE", "ANOMALY"), (2, 1), 4.0),  # the drift
    ]
    return build_planted_population(base.schema, margins, planted)


def main(batches: int = 8, batch_size: int = 20000) -> None:
    nominal = telemetry_population()
    drifted = drifted_population()
    rng = np.random.default_rng(42)

    print(f"Fitting the initial window ({batch_size} frames)...")
    live = LiveKnowledgeBase.from_data(
        nominal.sample_table(batch_size, rng),
        config=DiscoveryConfig(max_order=3),
        policy=UpdatePolicy(every_n=batch_size),
    )
    session = live.session()
    print(f"  {QUERY} = {session.ask(QUERY):.4f}")
    print()

    print(f"Streaming {batches} downlink batches of {batch_size} frames:")
    for number in range(1, batches + 1):
        # Halfway through, the failure mode appears in the stream.
        population = nominal if number <= batches // 2 else drifted
        revision = live.add_table(population.sample_table(batch_size, rng))
        answer = session.ask(QUERY)
        cold_risk = session.ask("ANOMALY=detected | TEMPERATURE=cold")
        label = "nominal" if population is nominal else "DRIFTED"
        mode = revision.mode if revision else "pending"
        print(
            f"  batch {number} ({label:>7}): revision={mode:<4} "
            f"N={live.sample_size:>7} {QUERY}={answer:.4f} "
            f"P(ANOMALY|cold)={cold_risk:.4f}"
        )
    print()

    print("Revision history (the knowledge base's audit log):")
    for revision in live.history:
        changes = []
        if revision.constraints_added:
            changes.append(f"+{len(revision.constraints_added)} constraints")
        if revision.constraints_dropped:
            changes.append(f"-{len(revision.constraints_dropped)} constraints")
        print(
            f"  rev {revision.number}: {revision.mode:<7} "
            f"N={revision.sample_size:>7} "
            f"(+{revision.added_samples} samples) "
            f"{', '.join(changes) if changes else 'structure unchanged'}"
        )
    print()

    print("Constraints the live knowledge base currently holds:")
    print(live.kb.discovery.summary())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
