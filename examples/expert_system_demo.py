"""Expert-system demo: acquire a knowledge base, ship it, consult it.

The paper's end goal: the extracted probabilities become the knowledge
base of a probabilistic expert system.  This example acquires knowledge
from the smoking/cancer data, serializes it to JSON (no training data
shipped), reloads it in a "deployed" phase, compiles IF-THEN rules, and
runs consultations through the forward-chaining shell.

Run with::

    python examples/expert_system_demo.py
"""

import tempfile
from pathlib import Path

from repro import ProbabilisticKnowledgeBase, paper_table
from repro.core.inference import RuleEngine


def acquisition_phase(path: Path) -> None:
    print("== Acquisition phase ==")
    kb = ProbabilisticKnowledgeBase.from_data(paper_table())
    print(kb.summary())
    kb.save(path)
    print(f"knowledge base saved to {path} "
          f"({path.stat().st_size} bytes, no raw data included)\n")


def consultation_phase(path: Path) -> None:
    print("== Consultation phase (deployed system) ==")
    kb = ProbabilisticKnowledgeBase.load(path)
    rules = kb.rules(max_conditions=2, min_support=0.01)
    engine = RuleEngine(rules)

    patients = [
        {"SMOKING": "smoker", "FAMILY_HISTORY": "yes"},
        {"SMOKING": "smoker", "FAMILY_HISTORY": "no"},
        {"SMOKING": "non-smoker", "FAMILY_HISTORY": "no"},
        {"SMOKING": "non-smoker married to smoker"},
    ]
    for facts in patients:
        facts_text = ", ".join(f"{k}={v}" for k, v in facts.items())
        print(f"patient: {facts_text}")
        # Exact posterior from the model.
        posterior = kb.probability({"CANCER": "yes"}, facts)
        print(f"  model posterior      P(CANCER=yes | facts) = {posterior:.4f}")
        # Rule-engine conclusion with its justification.
        conclusion = engine.conclude(facts, "CANCER")
        print(f"  rule-engine verdict  {conclusion.describe()}")
        print()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cancer_kb.json"
        acquisition_phase(path)
        consultation_phase(path)


if __name__ == "__main__":
    main()
