"""Persistent knowledge base: one store, two processes.

The store makes a knowledge base outlive the process that built it.
This example acquires a KB and persists it to a SQLite store, then
spawns a *separate* Python process that loads the stored KB, folds in a
new batch of survey data, and persists the new revision.  Back in the
parent process, the store shows the full revision history — including
the update made by the child — and the reloaded KB is byte-identical in
canonical JSON to what the child saved.

Run with::

    python examples/persistent_kb.py
"""

import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import ProbabilisticKnowledgeBase, paper_table
from repro.core.serialization import canonical_json, content_hash
from repro.data.dataset import Dataset
from repro.store import KBStore


def acquisition_process(store_path: Path) -> None:
    print("== Process 1: acquisition ==")
    kb = ProbabilisticKnowledgeBase.from_data(paper_table())
    with KBStore(store_path) as store:
        sha = store.save("survey", kb)
    print(f"stored 'survey' in {store_path.name} (artifact {sha[:12]})")
    print(f"posterior before update: "
          f"P(CANCER=yes | smoker) = "
          f"{kb.probability({'CANCER': 'yes'}, {'SMOKING': 'smoker'}):.4f}\n")


def update_process(store_path: Path) -> None:
    """Runs in a child interpreter: load → update → save."""
    table = paper_table()
    rng = np.random.default_rng(7)
    with KBStore(store_path) as store:
        kb = store.load("survey")
        delta = Dataset.from_joint(kb.schema, table.probabilities(), 500, rng)
        kb.update(delta)
        sha = store.save("survey", kb)
    print(f"child process: updated 'survey' to revision "
          f"{kb.revisions[-1].number} (artifact {sha[:12]})")


def consultation_process(store_path: Path) -> None:
    print("\n== Process 3: consultation ==")
    with KBStore(store_path) as store:
        kb = store.load("survey")
        print(f"revision history of 'survey' in {store_path.name}:")
        for row in store.history("survey"):
            captured = row.artifact_sha[:12] if row.artifact_sha else "-"
            print(f"  rev {row.number}  mode={row.mode:<8} "
                  f"N={row.sample_size:<5} artifact={captured}")
        print(store.diff("survey", 0, kb.revisions[-1].number).describe())

    # Reloading reproduces the child's state exactly, bit for bit.
    document = kb.to_dict()
    print(f"\nreloaded at revision {kb.revisions[-1].number}, "
          f"content address {content_hash(document)[:12]}")
    print(f"canonical JSON size: {len(canonical_json(document))} bytes")
    print(f"posterior after update:  "
          f"P(CANCER=yes | smoker) = "
          f"{kb.probability({'CANCER': 'yes'}, {'SMOKING': 'smoker'}):.4f}")


def main() -> None:
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        update_process(Path(sys.argv[2]))
        return

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "kb.db"
        acquisition_process(store_path)

        print("== Process 2: update (separate interpreter) ==")
        subprocess.run(
            [sys.executable, __file__, "--child", str(store_path)],
            check=True,
        )

        consultation_process(store_path)


if __name__ == "__main__":
    main()
