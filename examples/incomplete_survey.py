"""Incomplete survey: EM completion, validation, and explanation.

Real questionnaires come back with blanks.  This example knocks out 20%
of the fields of a smoking/cancer survey, EM-completes it, runs
discovery, validates the acquired model on a held-out complete sample
(log loss, Brier score, calibration), and *explains* a risk query by
knock-out attribution — the full modern workflow on top of the paper's
machinery.

Run with::

    python examples/incomplete_survey.py [N]
"""

import sys

import numpy as np

from repro import ProbabilisticKnowledgeBase, paper_table
from repro.core.explain import explain
from repro.core.validation import (
    calibration_table,
    conditional_brier_score,
    holdout_log_loss,
)
from repro.data.dataset import Dataset
from repro.data.missing import MISSING, IncompleteDataset, complete_table


def main(n: int = 10000) -> None:
    population = paper_table()
    schema = population.schema
    rng = np.random.default_rng(61)

    print(f"Simulating a survey of {n} responses, then losing 20% of fields...")
    full = Dataset.from_joint(schema, population.probabilities(), n, rng)
    holdout = Dataset.from_joint(
        schema, population.probabilities(), n, rng
    ).to_contingency()
    rows = full.rows.copy()
    rows[rng.random(rows.shape) < 0.20] = MISSING
    incomplete = IncompleteDataset(schema, rows)
    print(f"missing fraction: {incomplete.missing_fraction:.1%}")

    completed, em = complete_table(incomplete)
    print(
        f"EM converged in {em.iterations} iterations; completed table "
        f"N={completed.total}\n"
    )

    kb = ProbabilisticKnowledgeBase.from_data(completed)
    print(kb.summary())
    print()

    print("Validation on a held-out complete sample:")
    print(f"  holdout log loss : {holdout_log_loss(kb.model, holdout):.4f} nats/sample")
    print(
        "  Brier (CANCER)   : "
        f"{conditional_brier_score(kb.model, holdout, 'CANCER'):.4f}"
    )
    print("  calibration of P(CANCER=yes | rest):")
    for bin_ in calibration_table(kb.model, holdout, "CANCER", "yes", bins=4):
        print(
            f"    predicted {bin_.predicted_mean:.3f}  "
            f"observed {bin_.observed_rate:.3f}  "
            f"(weight {bin_.weight:.2f})"
        )
    print()

    print("Explaining the headline risk query:")
    explanation = explain(
        kb.model, {"CANCER": "yes"}, {"SMOKING": "smoker"}
    )
    print(explanation.describe(schema))


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10000
    main(n)
