"""Spacecraft telemetry: mining anomaly correlates from archive data.

The paper's motivation: "NASA has masses of unevaluated data from its
space explorations. Automatic means to find significant correlations in
these data can begin to reduce this mammoth NASA reserve data bank."

This example stands in for that archive with a synthetic telemetry world:
continuous temperature readings are discretized into bands (the
real-data path), combined with categorical vibration / radiation /
anomaly flags, and the discovery engine surfaces the environment-anomaly
correlations an analyst would want flagged.

Run with::

    python examples/spacecraft_telemetry.py [N]
"""

import sys

import numpy as np

from repro import DiscoveryConfig, ProbabilisticKnowledgeBase
from repro.core.inference import RuleEngine
from repro.data.discretize import Discretizer
from repro.synth.surveys import telemetry_population


def demonstrate_discretization() -> None:
    """Show the continuous-to-categorical path on raw temperatures."""
    rng = np.random.default_rng(3)
    raw_temperatures = np.concatenate(
        [
            rng.normal(20.0, 3.0, 700),   # nominal
            rng.normal(55.0, 5.0, 200),   # hot excursions
            rng.normal(-15.0, 4.0, 100),  # cold excursions
        ]
    )
    discretizer = Discretizer.fit("TEMPERATURE_C", raw_temperatures, bins=3)
    attribute = discretizer.attribute()
    bins = discretizer.transform(raw_temperatures)
    counts = np.bincount(bins, minlength=attribute.cardinality)
    print("Discretizing raw temperature telemetry:")
    for label, count in zip(attribute.values, counts):
        print(f"  {label:>14}: {count} readings")
    print()


def main(n: int = 80000) -> None:
    demonstrate_discretization()

    population = telemetry_population()
    rng = np.random.default_rng(31)
    print(f"Tallying {n} telemetry frames...")
    table = population.sample_table(n, rng)

    kb = ProbabilisticKnowledgeBase.from_data(
        table, DiscoveryConfig(max_order=3)
    )
    print(kb.discovery.summary())
    print()

    print("Anomaly risk by environment:")
    for evidence in [
        {"VIBRATION": "high"},
        {"VIBRATION": "low"},
        {"TEMPERATURE": "hot", "RADIATION": "elevated"},
        {"TEMPERATURE": "nominal", "RADIATION": "background"},
    ]:
        probability = kb.probability({"ANOMALY": "detected"}, evidence)
        evidence_text = ", ".join(f"{k}={v}" for k, v in evidence.items())
        print(f"  P(ANOMALY=detected | {evidence_text}) = {probability:.4f}")
    print()

    print("Operational rules for the anomaly-response expert system:")
    rules = kb.rules(min_support=0.01, max_conditions=2).about("ANOMALY")
    engine = RuleEngine(rules)
    frame = {"VIBRATION": "high", "TEMPERATURE": "hot"}
    conclusion = engine.conclude(frame, "ANOMALY")
    print(f"  telemetry frame: {frame}")
    print(f"  inference: {conclusion.describe()}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 80000
    main(n)
