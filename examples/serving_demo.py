"""Serving demo: query a live knowledge base while it hot-swaps.

The paper's acquisition loop never stops — new survey batches keep
arriving — and the ROADMAP's production shape puts a *network* between
the knowledge base and its users.  This example boots the
:mod:`repro.serve` server on a background thread and drives it the way a
deployment would:

1. host the paper's smoking/cancer knowledge base as ``paper``;
2. open a WebSocket subscription so revision changes push to us;
3. start client threads that hammer ``POST /kb/paper/query``
   continuously (coalesced server-side into shared batch evaluations);
4. mid-traffic, ``POST /kb/paper/update`` with a new batch of survey
   rows — the server rediscovers on a clone and atomically swaps the
   served model, so not one in-flight query fails or blocks;
5. verify every served answer is *bit-identical* to in-process
   ``kb.query()`` against the matching revision (the fingerprint in
   each response says which revision served it);
6. print the serving stats: coalescing ratio, pool recycling, and the
   revision notification that arrived over the WebSocket.

Run with::

    python examples/serving_demo.py [SECONDS]
"""

import sys
import threading
import time

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.eval.paper import paper_table
from repro.serve import ServeClient, ServeConfig, serve_in_thread

QUERIES = [
    "CANCER=yes | SMOKING=smoker",
    "CANCER=yes | SMOKING=non-smoker",
    "CANCER=yes | FAMILY_HISTORY=yes",
    "SMOKING=smoker | CANCER=yes",
    "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes",
]

#: The update batch: a clinic's worth of new smoker-with-cancer records.
NEW_ROWS = [
    {"SMOKING": "smoker", "CANCER": "yes", "FAMILY_HISTORY": "yes"}
] * 40 + [
    {"SMOKING": "non-smoker", "CANCER": "no", "FAMILY_HISTORY": "no"}
] * 60


def main(seconds: float = 3.0) -> None:
    kb = ProbabilisticKnowledgeBase.from_data(paper_table())

    # In-process mirrors of both revisions, for the bit-identity check.
    before = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
    after = ProbabilisticKnowledgeBase.from_dict(kb.to_dict())

    config = ServeConfig(flush_interval=0.002, max_batch=32, pool_size=4)
    with serve_in_thread({"paper": kb}, config=config) as handle:
        print(f"serving on http://{handle.host}:{handle.port}")
        control = ServeClient(handle.host, handle.port)
        fingerprints = {before.model.fingerprint(): "rev 0"}

        stop = threading.Event()
        served: list[tuple[str, float, int]] = []
        errors: list[Exception] = []

        def hammer() -> None:
            client = ServeClient(handle.host, handle.port)
            index = 0
            while not stop.is_set():
                text = QUERIES[index % len(QUERIES)]
                index += 1
                try:
                    document = client.query("paper", text)
                except Exception as error:  # noqa: BLE001 — demo tally
                    errors.append(error)
                    continue
                served.append(
                    (text, document["answer"], document["fingerprint"])
                )
            client.close()

        threads = [
            threading.Thread(target=hammer, daemon=True) for _ in range(4)
        ]
        with control.subscribe("paper") as subscription:
            hello = subscription.recv(timeout=10)
            print(f"subscribed at revision {hello['revision']}")
            for thread in threads:
                thread.start()

            # Let traffic build, then hot-swap mid-flight.
            time.sleep(seconds / 2)
            revision = control.update("paper", rows=NEW_ROWS)
            fingerprints[revision["fingerprint"]] = "rev 1"
            print(
                f"update absorbed {revision['added_samples']} rows -> "
                f"revision {revision['revision']} "
                f"(+{revision['constraints_added']} constraints)"
            )
            notification = subscription.recv(timeout=10)
            print(
                f"WebSocket push: revision {notification['revision']} "
                f"is now live"
            )
            time.sleep(seconds / 2)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)

        # Apply the same rows to the in-process "after" mirror; served
        # answers must match whichever revision's fingerprint they carry.
        from repro.data.streaming import TableBuilder

        builder = TableBuilder(after.schema)
        for row in NEW_ROWS:
            builder.add_record(row)
        after.update(builder.snapshot())
        mirrors = {
            before.model.fingerprint(): before,
            after.model.fingerprint(): after,
        }
        mismatches = 0
        tally = {"rev 0": 0, "rev 1": 0}
        for text, answer, fingerprint in served:
            mirror = mirrors[fingerprint]
            tally[fingerprints[fingerprint]] += 1
            if answer != mirror.query(text):  # exact float equality
                mismatches += 1

        stats = control.kb_stats("paper")
        batcher = stats["batcher"]
        print(
            f"\nserved {len(served)} queries "
            f"({tally['rev 0']} on rev 0, {tally['rev 1']} on rev 1), "
            f"{len(errors)} errors"
        )
        print(
            f"coalescing: {batcher['submitted']} submissions in "
            f"{batcher['flushes']} flushes "
            f"(mean batch {batcher['mean_batch']:.2f}, "
            f"max {batcher['max_batch']})"
        )
        print(f"bit-identical to in-process: {mismatches == 0}")
        if mismatches:
            raise SystemExit(f"{mismatches} served answers diverged")
        control.close()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 3.0)
