"""Medical survey: discovery on a five-attribute health questionnaire.

A synthetic population with planted two- and three-way interactions
(sedentary∧high blood pressure; age∧heart disease; a three-way
diet∧exercise∧heart-disease excess) is sampled, and the discovery engine
must surface those correlations from the raw counts — the paper's
"psychological, medical, and social surveys" use case.

Run with::

    python examples/medical_survey.py [N]
"""

import sys

import numpy as np

from repro import DiscoveryConfig, ProbabilisticKnowledgeBase
from repro.synth.surveys import medical_survey_population


def main(n: int = 50000) -> None:
    population = medical_survey_population()
    rng = np.random.default_rng(7)
    print(f"Sampling {n} survey responses from the synthetic population...")
    table = population.sample_table(n, rng)

    print("Ground truth (planted interactions):")
    for cell in population.planted:
        labels = ", ".join(
            f"{name}={population.schema.attribute(name).value_at(v)}"
            for name, v in zip(cell.attributes, cell.values)
        )
        print(f"  [{labels}] x{cell.strength}")
    print()

    kb = ProbabilisticKnowledgeBase.from_data(
        table, DiscoveryConfig(max_order=3)
    )
    print(kb.discovery.summary())
    print()

    print("Risk queries against the acquired knowledge base:")
    scenarios = [
        ({"EXERCISE": "sedentary", "DIET": "poor"}, "HEART_DISEASE"),
        ({"EXERCISE": "active", "DIET": "balanced"}, "HEART_DISEASE"),
        ({"AGE": "over60"}, "HEART_DISEASE"),
        ({"EXERCISE": "sedentary"}, "BLOOD_PRESSURE"),
    ]
    for evidence, target in scenarios:
        distribution = kb.distribution(target, evidence)
        evidence_text = ", ".join(f"{k}={v}" for k, v in evidence.items())
        print(
            f"  P({target}=... | {evidence_text}) = "
            + ", ".join(f"{k}:{p:.3f}" for k, p in distribution.items())
        )

    print()
    print("High-lift rules (the survey's headline findings):")
    rules = kb.rules(min_support=0.02, max_conditions=2).sorted_by_lift()
    for rule in list(rules)[:6]:
        print(f"  {rule.describe()}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50000
    main(n)
