"""Model-selection comparison: MML vs chi-square vs BIC.

Reruns the A1 ablation interactively: plants known correlations, samples
surveys of varying size, and scores each selector's precision/recall at
recovering the planted cells.  Demonstrates the MML criterion's
sample-size adaptivity versus a fixed-alpha z test and a BIC search.

Run with::

    python examples/model_selection_comparison.py [trials]
"""

import sys

import numpy as np

from repro.eval.harness import selector_recovery_experiment
from repro.eval.tables import format_table


def main(trials: int = 4) -> None:
    print("Planted-correlation recovery across sample sizes\n")
    for n in (2000, 20000, 100000):
        rows, _text = selector_recovery_experiment(
            seed=0, trials=trials, n=n, strength=2.5
        )
        summary = []
        for selector in ("mml", "chi2", "bic"):
            chosen = [r for r in rows if r.selector == selector]
            summary.append(
                [
                    selector,
                    float(np.mean([r.precision for r in chosen])),
                    float(np.mean([r.recall for r in chosen])),
                    float(np.mean([r.found for r in chosen])),
                ]
            )
        print(f"N = {n} ({trials} trials, strength 2.5):")
        print(
            format_table(
                ["selector", "precision", "recall", "constraints found"],
                summary,
            )
        )
        print()

    print(
        "Reading: all selectors gain recall with N; the MML criterion\n"
        "adapts its threshold to the sample size and the cell's feasible\n"
        "range, so it needs no alpha knob and stays quiet on null data."
    )


if __name__ == "__main__":
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    main(trials)
