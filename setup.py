"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``wheel`` for PEP 660
editable installs; this shim lets the legacy path
(``pip install -e . --no-use-pep517 --no-build-isolation``) work offline.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
