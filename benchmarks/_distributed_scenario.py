"""The distributed (TCP-worker) scan/query scenario shared between
``bench_distributed.py`` and the ``run_all.py`` trajectory emitter — one
definition of the workload and the daemon lifecycle, so recorded
distributed speedups always measure exactly what CI asserts.

The workload is the same wide order-3 world as ``_parallel_scenario``
(see that module for why the paper-sized survey is below round-trip
cost); what changes is the transport: shards run on ``repro worker``
daemons — real separate processes reached over localhost TCP — instead
of fork/spawn children, so the measurement includes the wire protocol's
framing, pickling, and the fingerprint-amortized joint/model broadcasts.
"""

import contextlib
import os
import subprocess
import sys
from pathlib import Path

from _parallel_scenario import (
    ORDER,
    WORKERS,
    best_of,
    build_world,
    num_queries,
    query_traffic,
    timing_repeats,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Enforced floors (full size, >= WORKERS cpus): warm distributed scan
#: and batch query vs the serial in-process paths.  Lower than the shm
#: floors — every joint broadcast and result merge crosses a socket —
#: but localhost TCP must still clearly beat serial on the wide world.
MIN_DISTRIBUTED_SPEEDUP = 1.3


@contextlib.contextmanager
def worker_daemons(count: int):
    """Spawn ``count`` ``repro worker`` daemons on localhost ephemeral
    ports; yields their ``HOST:PORT`` addresses and tears them down
    (terminate, then kill) on exit."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    processes = []
    addresses = []
    try:
        for _ in range(count):
            process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "worker",
                    "--listen",
                    "127.0.0.1:0",
                ],
                stdout=subprocess.PIPE,
                text=True,
                env=env,
            )
            processes.append(process)
            # serve() prints "repro worker listening on HOST:PORT" once
            # the listener is bound, so readline doubles as readiness.
            line = process.stdout.readline().strip()
            if not line:
                raise RuntimeError(
                    "worker daemon exited before announcing its address"
                )
            addresses.append(line.rsplit(" ", 1)[-1])
        yield tuple(addresses)
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            process.stdout.close()


def measure_distributed(smoke: bool) -> dict:
    """Distributed-transport trajectory metrics (bit-identity always
    checked; ratios recorded, asserted only under the CPU gate).

    Serial in-process scan/batch vs the same workload sharded across
    ``WORKERS`` localhost ``repro worker`` daemons, plus the wire
    ledger: bytes on the wire per warm scan (the broadcast-amortization
    contract made measurable) and round trips.
    """
    from repro.api.session import QuerySession
    from repro.parallel.scan import ShardedScanExecutor
    from repro.significance.kernels import OrderScanKernel
    from repro.significance.mml import most_significant

    repeats = timing_repeats(smoke)
    table, constraints, model = build_world(smoke)

    serial_kernel = OrderScanKernel(table, ORDER, constraints)
    serial_tests = serial_kernel.scan(model)
    scan_serial_warm = best_of(lambda: serial_kernel.scan(model), repeats)

    with worker_daemons(WORKERS) as addresses:
        with ShardedScanExecutor(worker_addresses=addresses) as executor:
            executor.begin_order(table, ORDER, constraints, None)
            distributed_tests, distributed_best = executor.scan(model)
            if distributed_tests != serial_tests or distributed_best != (
                most_significant(serial_tests)
            ):
                raise AssertionError(
                    "distributed scan diverged from the serial kernel"
                )

            def distributed_cold():
                executor.begin_order(table, ORDER, constraints, None)
                executor.scan(model)

            scan_cold = best_of(distributed_cold, repeats)
            executor.begin_order(table, ORDER, constraints, None)
            executor.scan(model)
            scan_warm = best_of(lambda: executor.scan(model), repeats)
            # The steady-state wire cost of one more scan: with the joint
            # fingerprint unchanged this is shard results + cache tokens,
            # not the joint itself.
            wire_before = executor.counters.to_dict()["bytes_wire"]
            executor.scan(model)
            wire_per_scan = (
                executor.counters.to_dict()["bytes_wire"] - wire_before
            )
            scan_counters = executor.counters.to_dict()
            executor.end_order()
            transport = executor.transport

        queries = query_traffic(model.schema, num_queries(smoke))
        serial_values = QuerySession(model).batch(queries)
        query_serial = best_of(
            lambda: QuerySession(model).batch(queries), repeats
        )
        with QuerySession(model, worker_addresses=addresses) as session:
            if session.batch(queries) != serial_values:
                raise AssertionError(
                    "distributed batch evaluation diverged from the "
                    "serial session"
                )
            query_warm = best_of(lambda: session.batch(queries), repeats)
            query_counters = session._parallel.counters.to_dict()

    return {
        "workers": WORKERS,
        "cpus": os.cpu_count() or 1,
        "transport": transport,
        "candidate_cells": len(serial_tests),
        "n_queries": len(queries),
        "scan_serial_warm_ms": 1e3 * scan_serial_warm,
        "scan_distributed_cold_ms": 1e3 * scan_cold,
        "scan_distributed_warm_ms": 1e3 * scan_warm,
        "scan_speedup_cold": scan_serial_warm / scan_cold,
        "scan_speedup": scan_serial_warm / scan_warm,
        "wire_bytes_per_scan": wire_per_scan,
        "scan_bytes_wire": scan_counters["bytes_wire"],
        "scan_round_trips": scan_counters["round_trips"],
        "scan_broadcasts_total": scan_counters["broadcasts_total"],
        "scan_broadcasts_skipped": scan_counters["broadcasts_skipped"],
        "query_serial_s": query_serial,
        "query_distributed_s": query_warm,
        "query_speedup": query_serial / query_warm,
        "query_bytes_wire": query_counters["bytes_wire"],
        "query_round_trips": query_counters["round_trips"],
    }
