"""A5 — ablation: EM completion of incomplete surveys.

Benchmarks EM on the paper's population with fields knocked out at
random.  Shape criteria: the completed table preserves N exactly, the
reconstructed joint tracks the truth, and the dominant smoker-cancer
association survives 25% missingness into discovery.
"""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.missing import MISSING, IncompleteDataset, complete_table
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.eval.tables import format_table


@pytest.fixture
def incomplete(table, rng):
    dataset = Dataset.from_joint(
        table.schema, table.probabilities(), 4000, rng
    )
    rows = dataset.rows.copy()
    mask = rng.random(rows.shape) < 0.25
    rows[mask] = MISSING
    return IncompleteDataset(table.schema, rows), dataset


def test_bench_missing_em(benchmark, table, incomplete, write_report):
    data, original = incomplete

    completed, result = benchmark(complete_table, data)

    assert completed.total == len(data)
    assert result.converged
    truth = original.to_contingency().probabilities()
    assert np.abs(result.joint - truth).max() < 0.03

    discovery = discover(completed, DiscoveryConfig(max_order=2))
    assert ("SMOKING", "CANCER") in {c.attributes for c in discovery.found}

    rows = [
        ["missing fraction", f"{data.missing_fraction:.3f}"],
        ["EM iterations", result.iterations],
        ["max |joint - truth|", f"{np.abs(result.joint - truth).max():.4f}"],
        ["constraints found after completion", len(discovery.found)],
    ]
    text = "A5: EM COMPLETION OF INCOMPLETE SURVEYS\n\n" + format_table(
        ["quantity", "value"], rows
    )
    write_report("a5_missing_data.txt", text)


@pytest.mark.parametrize("fraction", [0.1, 0.3, 0.5])
def test_bench_missing_fraction_sweep(benchmark, table, rng, fraction):
    dataset = Dataset.from_joint(
        table.schema, table.probabilities(), 2000, rng
    )
    rows = dataset.rows.copy()
    mask = rng.random(rows.shape) < fraction
    rows[mask] = MISSING
    data = IncompleteDataset(table.schema, rows)

    completed, result = benchmark(complete_table, data)

    assert completed.total == 2000
    # Reconstruction degrades gracefully with missingness.
    truth = dataset.to_contingency().probabilities()
    assert np.abs(result.joint - truth).max() < 0.02 + 0.1 * fraction
