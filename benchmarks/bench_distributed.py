"""Distributed execution over the TCP worker protocol: remote sharded
scans + remote batch serving, against real ``repro worker`` daemons.

Two workloads from ``_distributed_scenario`` (the wide order-3 world of
``_parallel_scenario``, sharded across localhost worker daemons instead
of fork/spawn children):

- **distributed discovery scans**: a serial
  :class:`~repro.significance.kernels.OrderScanKernel` whole-order scan
  vs a :class:`~repro.parallel.scan.ShardedScanExecutor` whose shards
  run on 4 ``repro worker`` daemons over length-prefixed TCP frames.
  The joint ships once per model fingerprint (``("cached", fp)`` tokens
  after that), so the warm path's wire cost is shard results, not
  payload rebroadcast — the benchmark records bytes-on-wire per warm
  scan to keep that contract measurable.
- **distributed batch queries**: a serial
  :class:`~repro.api.session.QuerySession.batch` vs the same batch
  sharded across 4 remote pinned sessions (packed model broadcast once
  per fingerprint).

Shape criteria: the distributed scan's merged output — every CellTest
float and the greedy argmax — equals the serial scan exactly, and
distributed batch results equal serial results exactly, in input order.
At full size on a machine with >= 4 CPUs, warm distributed scans and
batches are at least ``MIN_DISTRIBUTED_SPEEDUP``x the serial paths;
under ``REPRO_BENCH_SMOKE=1`` (or fewer cores) the equivalences stay
enforced and the ratios are reported only.
"""

import argparse
import json
import multiprocessing
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from _distributed_scenario import (
    MIN_DISTRIBUTED_SPEEDUP,
    measure_distributed,
    worker_daemons,
)
from _parallel_scenario import (
    ORDER,
    WORKERS,
    best_of,
    build_world,
    num_queries,
    query_traffic,
    timing_repeats,
)
from repro.api.session import QuerySession
from repro.eval.tables import format_table
from repro.parallel.scan import ShardedScanExecutor
from repro.significance.kernels import OrderScanKernel
from repro.significance.mml import most_significant

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPEATS = timing_repeats(SMOKE)
CPUS = os.cpu_count() or 1
HAS_PROCESSES = bool(multiprocessing.get_all_start_methods())
#: Wall-clock floors are only meaningful with real cores behind the
#: daemons; bit-identity is asserted regardless.
ENFORCE_RATIOS = not SMOKE and CPUS >= WORKERS

pytestmark = pytest.mark.skipif(
    not HAS_PROCESSES, reason="no multiprocessing start method available"
)


@pytest.fixture(scope="module")
def daemons():
    with worker_daemons(WORKERS) as addresses:
        yield addresses


@pytest.fixture(scope="module")
def world():
    return build_world(SMOKE)


def test_bench_distributed_scan(daemons, world, write_report):
    table, constraints, model = world

    serial_kernel = OrderScanKernel(table, ORDER, constraints)
    serial_tests = serial_kernel.scan(model)
    serial_best = most_significant(serial_tests)

    with ShardedScanExecutor(worker_addresses=daemons) as executor:
        assert executor.transport == "tcp"
        executor.begin_order(table, ORDER, constraints, None)
        distributed_tests, distributed_best = executor.scan(model)

        # Bit-identity across the wire: every m1/m2/moment float and the
        # shard-merged argmax equal the serial kernel exactly.
        assert distributed_tests == serial_tests
        assert distributed_best == serial_best

        def distributed_cold():
            executor.begin_order(table, ORDER, constraints, None)
            executor.scan(model)

        serial_warm_s = best_of(lambda: serial_kernel.scan(model), REPEATS)
        cold_s = best_of(distributed_cold, REPEATS)
        executor.begin_order(table, ORDER, constraints, None)
        executor.scan(model)
        warm_s = best_of(lambda: executor.scan(model), REPEATS)
        wire_before = executor.counters.to_dict()["bytes_wire"]
        executor.scan(model)
        wire_per_scan = (
            executor.counters.to_dict()["bytes_wire"] - wire_before
        )
        executor.end_order()
        counters = executor.counters

    warm_speedup = serial_warm_s / warm_s
    rows = [
        ["serial kernel, warm", f"{1e3 * serial_warm_s:.2f}", "1.0x"],
        [
            f"tcp x{WORKERS}, cold",
            f"{1e3 * cold_s:.2f}",
            f"{serial_warm_s / cold_s:.1f}x",
        ],
        [
            f"tcp x{WORKERS}, warm",
            f"{1e3 * warm_s:.2f}",
            f"{warm_speedup:.1f}x",
        ],
    ]
    write_report(
        "distributed_scan.txt",
        f"DISTRIBUTED ORDER-{ORDER} SCAN ({len(serial_tests)} candidate "
        f"cells, {WORKERS} tcp workers, {CPUS} cpus, best of {REPEATS})\n\n"
        + format_table(["scan path", "per-order scan (ms)", "speedup"], rows)
        + f"\n\nwire: {counters.bytes_wire} B total, "
        f"{wire_per_scan} B per warm scan, "
        f"{counters.round_trips} round trips, "
        f"{counters.broadcasts_skipped}/{counters.broadcasts_total} "
        f"joint broadcasts amortized away",
    )

    # The fingerprint cache must hold: a warm scan never re-ships the
    # joint, so its wire cost stays below one joint broadcast per worker.
    assert counters.broadcasts_skipped > 0

    if ENFORCE_RATIOS:
        assert warm_speedup >= MIN_DISTRIBUTED_SPEEDUP, (
            f"distributed warm scan only {warm_speedup:.1f}x the serial "
            f"kernel (need >= {MIN_DISTRIBUTED_SPEEDUP}x)"
        )


def test_bench_distributed_batch_query(daemons, world, write_report):
    _table, _constraints, model = world
    queries = query_traffic(model.schema, num_queries(SMOKE))

    serial_values = QuerySession(model).batch(queries)
    serial_s = best_of(lambda: QuerySession(model).batch(queries), REPEATS)

    with QuerySession(model, worker_addresses=daemons) as session:
        distributed_values = session.batch(queries)
        assert distributed_values == serial_values  # exact, input order
        assert session._parallel.transport == "tcp"

        warm_s = best_of(lambda: session.batch(queries), REPEATS)
        counters = session._parallel.counters.snapshot()

    warm_speedup = serial_s / warm_s
    n = len(queries)
    rows = [
        ["serial session", f"{serial_s:.4f}", f"{n / serial_s:.0f}", "1.0x"],
        [
            f"tcp x{WORKERS} (warm workers)",
            f"{warm_s:.4f}",
            f"{n / warm_s:.0f}",
            f"{warm_speedup:.1f}x",
        ],
    ]
    write_report(
        "distributed_batch_query.txt",
        f"DISTRIBUTED BATCH QUERIES ({n} conditional queries, "
        f"{WORKERS} tcp workers, {CPUS} cpus, best of {REPEATS})\n\n"
        + format_table(["path", "seconds", "queries/sec", "speedup"], rows)
        + f"\n\nwire: {counters.bytes_wire} B total, "
        f"{counters.round_trips} round trips, "
        f"{counters.broadcasts_skipped}/{counters.broadcasts_total} "
        f"model broadcasts amortized away",
    )

    if ENFORCE_RATIOS:
        assert warm_speedup >= MIN_DISTRIBUTED_SPEEDUP, (
            f"distributed batch only {warm_speedup:.1f}x the serial "
            f"session (need >= {MIN_DISTRIBUTED_SPEEDUP}x)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        required=True,
        metavar="PATH",
        help="write a distributed-bench record to PATH (CI artifact)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI"
    )
    args = parser.parse_args(argv)

    metrics = measure_distributed(args.smoke or SMOKE)
    record = {
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(time.time())
        ),
        "smoke": args.smoke or SMOKE,
        "python": platform.python_version(),
        "cpus": CPUS,
        "distributed": metrics,
    }
    Path(args.json).write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"distributed-bench record written to {args.json} "
        f"(tcp x{metrics['workers']}: warm scan "
        f"{metrics['scan_speedup']:.2f}x / batch query "
        f"{metrics['query_speedup']:.2f}x on {CPUS} cpus, "
        f"{metrics['wire_bytes_per_scan']} B on the wire per warm scan, "
        f"bit-identical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
