"""Parallel execution subsystem: sharded scans + concurrent batch serving.

Two workloads from ``_parallel_scenario`` (the wide order-3 world — see
that module for why the paper-sized survey is below process-pool
round-trip cost):

- **sharded discovery scans**: a serial
  :class:`~repro.significance.kernels.OrderScanKernel` whole-order scan
  vs a :class:`~repro.parallel.scan.ShardedScanExecutor` at 4 workers,
  cold (data-side statistics built per shard) and warm (the engine
  loop's steady state).  Part of the parallel win is structural: workers
  ship columnar payloads and the shard-merged argmax, so the master
  never materializes the full CellTest list on the hot path — the audit
  trail decodes lazily on first read.
- **concurrent batch queries**: a serial
  :class:`~repro.api.session.QuerySession.batch` vs the same batch
  sharded over 4 worker sessions, on cold plan caches (distinct query
  strings — the compile-heavy serving shape).

Shape criteria: the sharded scan's merged output — every CellTest float
and the greedy argmax — equals the serial scan exactly, a 4-worker
discovery run on the medical-survey scenario equals the serial run
exactly (adopted constraints, fitted marginals), and parallel batch
results equal serial results exactly, in input order.  At full size on a
machine with >= 4 CPUs, sharded scans and parallel batches are both at
least 2x the serial path; under ``REPRO_BENCH_SMOKE=1`` (or fewer
cores) the equivalences stay enforced and the ratios are reported only.
"""

import argparse
import json
import multiprocessing
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from _parallel_scenario import (
    MIN_PARALLEL_COLD_SPEEDUP,
    MIN_PARALLEL_SPEEDUP,
    ORDER,
    WORKERS,
    best_of,
    build_world,
    measure_parallel,
    num_queries,
    query_traffic,
    timing_repeats,
)
from repro.api.session import QuerySession
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.eval.tables import format_table
from repro.parallel.scan import ShardedScanExecutor
from repro.significance.kernels import OrderScanKernel
from repro.significance.mml import most_significant

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPEATS = timing_repeats(SMOKE)
CPUS = os.cpu_count() or 1
#: WorkerPool runs under fork or spawn alike (module:function task
#: addressing survives a spawn re-import); only a platform with no start
#: method at all skips.
HAS_PROCESSES = bool(multiprocessing.get_all_start_methods())
#: Wall-clock floors are only meaningful with real cores to shard onto.
ENFORCE_RATIOS = not SMOKE and CPUS >= WORKERS

pytestmark = pytest.mark.skipif(
    not HAS_PROCESSES, reason="no multiprocessing start method available"
)


@pytest.fixture(scope="module")
def world():
    return build_world(SMOKE)


def test_bench_sharded_scan_speedup(world, write_report):
    table, constraints, model = world

    serial_kernel = OrderScanKernel(table, ORDER, constraints)
    serial_tests = serial_kernel.scan(model)
    serial_best = most_significant(serial_tests)

    with ShardedScanExecutor(max_workers=WORKERS) as executor:
        executor.begin_order(table, ORDER, constraints, None)
        parallel_tests, parallel_best = executor.scan(model)

        # Bit-identity: the lazy merged list equals the serial list —
        # every m1/m2/moment float — and the shard-merged argmax is the
        # same cell min() picks.
        assert parallel_tests == serial_tests
        assert parallel_best == serial_best

        # Timings.  Cold = data-side statistics rebuilt (the state after
        # an adoption invalidates a shard's subsets); warm = steady state.
        def serial_cold():
            OrderScanKernel(table, ORDER, constraints).scan(model)

        def parallel_cold():
            executor.begin_order(table, ORDER, constraints, None)
            executor.scan(model)

        serial_cold_s = best_of(serial_cold, REPEATS)
        serial_warm_s = best_of(lambda: serial_kernel.scan(model), REPEATS)
        parallel_cold_s = best_of(parallel_cold, REPEATS)
        # Re-prime, then measure the warm path.
        executor.begin_order(table, ORDER, constraints, None)
        executor.scan(model)
        parallel_warm_s = best_of(lambda: executor.scan(model), REPEATS)
        executor.end_order()

    cold_speedup = serial_cold_s / parallel_cold_s
    warm_speedup = serial_warm_s / parallel_warm_s
    counters = executor.counters
    rows = [
        ["serial kernel, cold", f"{1e3 * serial_cold_s:.2f}", "1.0x"],
        [
            f"sharded x{WORKERS}, cold",
            f"{1e3 * parallel_cold_s:.2f}",
            f"{cold_speedup:.1f}x",
        ],
        ["serial kernel, warm", f"{1e3 * serial_warm_s:.2f}", "1.0x"],
        [
            f"sharded x{WORKERS}, warm",
            f"{1e3 * parallel_warm_s:.2f}",
            f"{warm_speedup:.1f}x",
        ],
    ]
    write_report(
        "parallel_scan.txt",
        f"SHARDED ORDER-{ORDER} SCAN ({len(serial_tests)} candidate "
        f"cells, {WORKERS} workers, {CPUS} cpus, best of {REPEATS})\n\n"
        + format_table(["scan path", "per-order scan (ms)", "speedup"], rows)
        + f"\n\ntransport {executor.transport}: "
        f"{counters.bytes_shared} B shared, "
        f"{counters.bytes_pickled} B pickled, "
        f"{counters.broadcasts_skipped}/{counters.broadcasts_total} "
        f"broadcasts amortized away",
    )

    if ENFORCE_RATIOS:
        assert warm_speedup >= MIN_PARALLEL_SPEEDUP, (
            f"sharded warm scan only {warm_speedup:.1f}x the serial "
            f"kernel (need >= {MIN_PARALLEL_SPEEDUP}x)"
        )
        assert cold_speedup >= MIN_PARALLEL_COLD_SPEEDUP, (
            f"sharded cold scan only {cold_speedup:.2f}x the serial "
            f"kernel (need >= {MIN_PARALLEL_COLD_SPEEDUP}x: the shm "
            f"transport exists to keep the cold path from losing)"
        )


def test_bench_parallel_discovery_equivalence(write_report):
    """A 4-worker discovery run is indistinguishable from a serial run
    on the order-3 medical-survey scenario: same adopted constraints,
    same trace tests, same fitted marginals."""
    from _discovery_scenario import build_table

    table = build_table(smoke=True)
    config = DiscoveryConfig(max_order=3)
    serial = DiscoveryEngine(config).run(table)
    with DiscoveryEngine(
        DiscoveryConfig(max_order=3, max_workers=WORKERS)
    ) as engine:
        parallel = engine.run(table)

    assert [c.key for c in parallel.found] == [c.key for c in serial.found]
    assert [c.probability for c in parallel.found] == [
        c.probability for c in serial.found
    ]
    assert len(parallel.scans) == len(serial.scans)
    for ours, theirs in zip(parallel.scans, serial.scans):
        assert ours.tests == theirs.tests
        assert ours.chosen == theirs.chosen
    assert np.array_equal(parallel.model.joint(), serial.model.joint())
    write_report(
        "parallel_discovery_equivalence.txt",
        f"PARALLEL DISCOVERY EQUIVALENCE: {WORKERS}-worker run == serial "
        f"run on the order-3 survey scenario "
        f"({len(serial.found)} constraints, {len(serial.scans)} scans, "
        f"bit-identical traces and marginals)",
    )


def test_bench_parallel_batch_query_speedup(world, write_report):
    _table, _constraints, model = world
    queries = query_traffic(model.schema, num_queries(SMOKE))

    serial_values = QuerySession(model).batch(queries)

    # Cold plan caches on both sides: fresh sessions per measurement —
    # the first-contact serving shape where compilation dominates.
    serial_s = best_of(
        lambda: QuerySession(model).batch(queries), REPEATS
    )
    with QuerySession(model, max_workers=WORKERS) as session:
        parallel_values = session.batch(queries)
        assert parallel_values == serial_values  # exact, in input order

        def parallel_cold():
            session._parallel.reset()  # rebuild worker sessions
            session.batch(queries)

        parallel_cold_s = best_of(parallel_cold, REPEATS)
        parallel_warm_s = best_of(lambda: session.batch(queries), REPEATS)
        transport = session._parallel.transport
        counters = session._parallel.counters.snapshot()

    cold_speedup = serial_s / parallel_cold_s
    n = len(queries)
    rows = [
        [
            "serial session (cold plans)",
            f"{serial_s:.4f}",
            f"{n / serial_s:.0f}",
            "1.0x",
        ],
        [
            f"parallel x{WORKERS} (cold plans)",
            f"{parallel_cold_s:.4f}",
            f"{n / parallel_cold_s:.0f}",
            f"{cold_speedup:.1f}x",
        ],
        [
            f"parallel x{WORKERS} (warm workers)",
            f"{parallel_warm_s:.4f}",
            f"{n / parallel_warm_s:.0f}",
            f"{serial_s / parallel_warm_s:.1f}x",
        ],
    ]
    write_report(
        "parallel_batch_query.txt",
        f"CONCURRENT BATCH QUERIES ({n} conditional queries, "
        f"{WORKERS} workers, {CPUS} cpus, best of {REPEATS})\n\n"
        + format_table(
            ["path", "seconds", "queries/sec", "speedup"], rows
        )
        + f"\n\ntransport {transport}: "
        f"{counters.bytes_shared} B shared, "
        f"{counters.bytes_pickled} B pickled, "
        f"{counters.broadcasts_skipped}/{counters.broadcasts_total} "
        f"broadcasts amortized away",
    )

    if ENFORCE_RATIOS:
        assert cold_speedup >= MIN_PARALLEL_SPEEDUP, (
            f"parallel batch only {cold_speedup:.1f}x the serial session "
            f"(need >= {MIN_PARALLEL_SPEEDUP}x)"
        )
        warm_speedup = serial_s / parallel_warm_s
        assert warm_speedup >= MIN_PARALLEL_COLD_SPEEDUP, (
            f"parallel warm batch only {warm_speedup:.2f}x the serial "
            f"session (need >= {MIN_PARALLEL_COLD_SPEEDUP}x)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        required=True,
        metavar="PATH",
        help="write a parallel-bench record to PATH (CI artifact)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI"
    )
    args = parser.parse_args(argv)

    metrics = measure_parallel(args.smoke or SMOKE)
    record = {
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(time.time())
        ),
        "smoke": args.smoke or SMOKE,
        "python": platform.python_version(),
        "cpus": CPUS,
        "parallel": metrics,
    }
    Path(args.json).write_text(json.dumps(record, indent=2) + "\n")
    shared = metrics["scan_bytes_shared"] + metrics["query_bytes_shared"]
    pickled = metrics["scan_bytes_pickled"] + metrics["query_bytes_pickled"]
    print(
        f"parallel-bench record written to {args.json} "
        f"(transport {metrics['transport']}: cold scan "
        f"{metrics['scan_speedup_cold']:.2f}x / warm "
        f"{metrics['scan_speedup_warm']:.2f}x on {CPUS} cpus, "
        f"{shared} B shared vs {pickled} B pickled, bit-identical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
