"""E4 — Table 2: iterative a-value calculation for the N^AC constraint.

Benchmarks the paper's Gauss–Seidel fit of the first-order margins plus
the cell (SMOKING=smoker, FAMILY_HISTORY=no) with target b = .219.
Shape criteria: convergence, the fitted cell hits the target, and the new
``a`` factor ends above 1 (the cell is in excess) — matching the paper's
trace direction.
"""

import pytest

from repro.eval.harness import reproduce_table2
from repro.maxent.constraints import ConstraintSet
from repro.maxent.gevarter import fit_gevarter


def test_bench_table2_gevarter_fit(benchmark, table, write_report):
    constraints = ConstraintSet.first_order(table)
    constraints.add_cell(
        constraints.cell_from_table(
            table, ["SMOKING", "FAMILY_HISTORY"], [0, 1]
        )
    )

    fit = benchmark(fit_gevarter, constraints, record_trace=False)

    assert fit.converged
    pair = fit.model.marginal(["SMOKING", "FAMILY_HISTORY"])
    assert pair[0, 1] == pytest.approx(750 / 3428, abs=1e-8)
    assert fit.model.cell_factors[
        (("SMOKING", "FAMILY_HISTORY"), (0, 1))
    ] > 1.0
    _fit, text = reproduce_table2()
    write_report("table2.txt", text)
