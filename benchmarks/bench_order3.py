"""A6 — third-order discovery: the procedure's recursion to higher orders.

The paper's loop "is then repeated for the third-order N's and so on";
its example data carry no 3-way effect, so this bench exercises the
recursion on the medical-survey world, whose planted structure includes a
genuine three-way excess (sedentary∧poor diet∧heart disease).

Shape criteria: a constraint over exactly that attribute triple is
adopted at order 3, and the fitted model reproduces the elevated
conditional risk the triple encodes.
"""

import numpy as np
import pytest

from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.eval.tables import format_table
from repro.synth.surveys import medical_survey_population

TRIPLE = ("EXERCISE", "DIET", "HEART_DISEASE")


@pytest.fixture(scope="module")
def table():
    population = medical_survey_population()
    rng = np.random.default_rng(19)
    return population.sample_table(80000, rng)


def test_bench_order3_discovery(benchmark, table, write_report):
    result = benchmark(discover, table, DiscoveryConfig(max_order=3))

    third_order = result.constraints.cells_of_order(3)
    assert third_order, "no third-order constraint adopted"
    assert TRIPLE in {c.attributes for c in third_order}

    model = result.model
    risky = model.conditional(
        {"HEART_DISEASE": "yes"},
        {"EXERCISE": "sedentary", "DIET": "poor"},
    )
    safe = model.conditional(
        {"HEART_DISEASE": "yes"},
        {"EXERCISE": "active", "DIET": "balanced"},
    )
    assert risky > 1.5 * safe

    rows = [
        ["order-2 constraints", len(result.constraints.cells_of_order(2))],
        ["order-3 constraints", len(third_order)],
        ["P(HD=yes | sedentary, poor diet)", f"{risky:.4f}"],
        ["P(HD=yes | active, balanced)", f"{safe:.4f}"],
    ]
    text = "A6: THIRD-ORDER DISCOVERY (medical survey)\n\n" + format_table(
        ["quantity", "value"], rows
    )
    write_report("a6_order3.txt", text)


def test_bench_order3_vs_order2_holdout(benchmark, write_report):
    """Allowing order 3 must not hurt held-out likelihood."""
    from repro.baselines.bic_selector import log_likelihood

    population = medical_survey_population()
    rng = np.random.default_rng(37)
    train = population.sample(40000, rng).to_contingency()
    holdout = population.sample(40000, rng).to_contingency()

    order3 = benchmark(discover, train, DiscoveryConfig(max_order=3))

    order2 = discover(train, DiscoveryConfig(max_order=2))
    score2 = log_likelihood(holdout, order2.model)
    score3 = log_likelihood(holdout, order3.model)
    assert score3 >= score2 - 5.0  # never meaningfully worse
    rows = [
        ["max_order=2 holdout log-likelihood", f"{score2:.1f}"],
        ["max_order=3 holdout log-likelihood", f"{score3:.1f}"],
    ]
    write_report(
        "a6_order3_holdout.txt",
        "A6: ORDER-3 VS ORDER-2 HOLDOUT\n\n"
        + format_table(["model", "value"], rows),
    )
