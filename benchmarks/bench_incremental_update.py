"""Incremental update throughput: warm-started kb.update() vs cold refit.

The order-3 scaling scenario (medical-survey world, planted two- and
three-way structure, ``max_order=3``): fit a base window, then absorb
delta batches of increasing size two ways —

- ``kb.update(delta)``: warm-started rediscovery (re-verify + re-impose
  the adopted constraints, refit from the previous ``a`` values, one
  verification scan per order);
- a cold ``from_data`` refit of the merged table (the pre-lifecycle
  answer to new data).

Shape criteria: both paths adopt identical constraints and agree on the
joint to solver tolerance, every warm revision actually reports
``mode="warm"``, and for streaming-sized batches (up to ~1/8 of the base
window) the warm path is at least 1.5x faster.  (The threshold was 3x
when the cold baseline paid a full scalar candidate scan per adoption;
the vectorized scan kernels roughly halved cold discovery, so the warm
path's remaining edge — skipping candidate scans entirely — is honestly
worth ~2x now.  Absolute warm latency is unchanged-or-better; only the
ratio's denominator improved.)

Set ``REPRO_BENCH_SMOKE=1`` to run the same assertions at tiny sizes in
CI: equivalence and the warm-path mode are still enforced — so the
incremental path cannot silently regress — but the wall-clock ratio is
not, since timings at toy sizes are noise.
"""

import os
import time

import numpy as np
import pytest

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.discovery.config import DiscoveryConfig
from repro.eval.tables import format_table
from repro.synth.surveys import medical_survey_population

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

N_BASE = 4000 if SMOKE else 60000
# Batch sizes to absorb; the speedup criterion applies to streaming-sized
# batches (<= SPEEDUP_BATCH_LIMIT).  Very large batches shift the fit
# targets far enough that the warm solve itself dominates, and the
# advantage honestly shrinks — the table reports that too.
BATCHES = (200, 500) if SMOKE else (2000, 8000, 20000)
SPEEDUP_BATCH_LIMIT = N_BASE // 8
MIN_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def population():
    return medical_survey_population()


def test_bench_incremental_update(population, write_report):
    config = DiscoveryConfig(max_order=3)
    rng = np.random.default_rng(19)
    base = population.sample_table(N_BASE, rng)

    rows = []
    speedups = {}
    for batch in BATCHES:
        delta = population.sample_table(batch, rng)
        merged = base + delta

        kb = ProbabilisticKnowledgeBase.from_data(base, config)
        start = time.perf_counter()
        revision = kb.update(delta)
        warm_seconds = time.perf_counter() - start

        start = time.perf_counter()
        cold = ProbabilisticKnowledgeBase.from_data(merged, config)
        cold_seconds = time.perf_counter() - start

        # The incremental path must not silently diverge from a cold refit.
        assert revision.mode == "warm", (
            f"update of a same-population batch fell back to "
            f"{revision.mode!r}"
        )
        assert kb.sample_size == merged.total
        assert {c.key for c in kb.constraints} == {
            c.key for c in cold.constraints
        }
        np.testing.assert_allclose(
            kb.model.joint(), cold.model.joint(), atol=1e-8
        )

        speedup = cold_seconds / warm_seconds
        speedups[batch] = speedup
        rows.append(
            [
                batch,
                f"{warm_seconds:.4f}",
                f"{cold_seconds:.4f}",
                f"{speedup:.1f}x",
                revision.mode,
            ]
        )

    text = (
        f"INCREMENTAL UPDATE VS COLD REFIT "
        f"(order-3 scaling scenario, base N={N_BASE})\n\n"
        + format_table(
            ["batch", "warm update (s)", "cold refit (s)", "speedup", "mode"],
            rows,
        )
    )
    write_report("incremental_update.txt", text)

    if not SMOKE:
        streaming = {
            batch: speedup
            for batch, speedup in speedups.items()
            if batch <= SPEEDUP_BATCH_LIMIT
        }
        assert streaming, "no streaming-sized batches were benchmarked"
        worst = min(streaming.values())
        assert worst >= MIN_SPEEDUP, (
            f"warm-started update only {worst:.1f}x faster than a cold "
            f"refit for streaming-sized batches (need >= {MIN_SPEEDUP}x)"
        )


def test_bench_repeated_updates_stream(population, write_report):
    """A stream of updates mostly rides the warm path, and open sessions
    serve every refreshed model without being rebuilt.

    Structure hovering exactly at the significance threshold may cross it
    as N grows and dip back on a later batch — the re-verification then
    correctly falls back to a cold rediscovery that drops it — so the
    stream is allowed occasional ``cold`` revisions; the incremental path
    must carry the majority.
    """
    config = DiscoveryConfig(max_order=3)
    rng = np.random.default_rng(23)
    n_batches = 3 if SMOKE else 8
    batch = 200 if SMOKE else 4000

    kb = ProbabilisticKnowledgeBase.from_data(
        population.sample_table(N_BASE, rng), config
    )
    session = kb.session()
    query = "HEART_DISEASE=yes | EXERCISE=sedentary, DIET=poor"
    session.ask(query)

    rows = []
    modes = []
    for number in range(1, n_batches + 1):
        start = time.perf_counter()
        revision = kb.update(population.sample_table(batch, rng))
        seconds = time.perf_counter() - start
        answer = session.ask(query)
        rows.append(
            [number, revision.mode, f"{seconds:.4f}", f"{answer:.4f}"]
        )
        modes.append(revision.mode)
        # The open session always serves the just-refreshed model ...
        assert session.model is kb.model
        assert 0.0 <= answer <= 1.0
        # ... which always matches what a fresh session would answer.
        assert answer == pytest.approx(kb.session().ask(query), rel=1e-12)

    assert modes.count("warm") >= (len(modes) + 1) // 2, (
        f"incremental path fell back cold too often: {modes}"
    )

    write_report(
        "incremental_update_stream.txt",
        f"REPEATED UPDATES, LIVE SESSION (batch={batch})\n\n"
        + format_table(
            ["revision", "mode", "update (s)", "live session answer"], rows
        ),
    )
