"""A7 — validation: calibration and k-fold stability of discovery.

Benchmarks the diagnostics a user runs before trusting an acquired
knowledge base.  Shape criteria: a model fitted on half the paper's
population is calibrated on the other half (every reliability bin within
6 points), and k-fold discovery finds a stable constraint set
(Jaccard > 0.5 across folds).
"""

import pytest

from repro.core.validation import (
    calibration_table,
    cross_validate,
    holdout_log_loss,
)
from repro.data.dataset import Dataset
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.eval.tables import format_table


@pytest.fixture(scope="module")
def population():
    from repro.eval.paper import paper_table

    return paper_table()


def test_bench_calibration(benchmark, population, rng, write_report):
    schema = population.schema
    train = Dataset.from_joint(
        schema, population.probabilities(), 10000, rng
    ).to_contingency()
    holdout = Dataset.from_joint(
        schema, population.probabilities(), 10000, rng
    ).to_contingency()
    model = discover(train).model

    bins = benchmark(
        calibration_table, model, holdout, "CANCER", "yes", 4
    )

    assert bins
    for bin_ in bins:
        assert abs(bin_.predicted_mean - bin_.observed_rate) < 0.06
    rows = [
        [f"[{b.lower:.2f},{b.upper:.2f})", b.predicted_mean, b.observed_rate, b.weight]
        for b in bins
    ]
    text = (
        "A7: CALIBRATION OF P(CANCER=yes | rest)\n\n"
        + format_table(["bin", "predicted", "observed", "weight"], rows)
        + f"\n\nholdout log loss: {holdout_log_loss(model, holdout):.4f}"
    )
    write_report("a7_calibration.txt", text)


def test_bench_cross_validation(benchmark, population, rng, write_report):
    schema = population.schema
    dataset = Dataset.from_joint(
        schema, population.probabilities(), 12000, rng
    )

    result = benchmark(
        cross_validate, dataset, 3, DiscoveryConfig(max_order=2), rng
    )

    assert len(result.folds) == 3
    assert result.constraint_stability() > 0.5
    rows = [
        ["mean holdout log loss", f"{result.mean_log_loss:.4f}"],
        ["mean constraints per fold", f"{result.mean_constraints:.1f}"],
        ["constraint stability (Jaccard)", f"{result.constraint_stability():.2f}"],
    ]
    write_report(
        "a7_cross_validation.txt",
        "A7: 3-FOLD DISCOVERY STABILITY\n\n"
        + format_table(["quantity", "value"], rows),
    )
