"""A3 — ablation: query-engine throughput, dense vs elimination.

Benchmarks conditional queries on the discovered paper model through both
evaluation paths.  Shape criteria: the two paths agree to 1e-9; dense wins
on the 12-cell paper schema (as expected — elimination pays overhead that
only amortizes on wide schemas, cf. E8's 16-attribute chain).
"""

import pytest

from repro.core.query import QueryEngine
from repro.discovery.engine import discover

QUERIES = [
    ({"CANCER": "yes"}, {"SMOKING": "smoker"}),
    ({"CANCER": "yes"}, {"SMOKING": "smoker", "FAMILY_HISTORY": "yes"}),
    ({"SMOKING": "smoker"}, {"CANCER": "yes"}),
    ({"FAMILY_HISTORY": "yes"}, {}),
]


@pytest.fixture(scope="module")
def model(request):
    from repro.eval.paper import paper_table

    return discover(paper_table()).model


def test_bench_query_dense(benchmark, model):
    engine = QueryEngine(model, method="dense")

    def run_all():
        return [engine.probability(t, g or None) for t, g in QUERIES]

    results = benchmark(run_all)
    assert all(0.0 <= p <= 1.0 for p in results)


def test_bench_query_elimination(benchmark, model):
    dense = QueryEngine(model, method="dense")
    engine = QueryEngine(model, method="elimination")

    def run_all():
        return [engine.probability(t, g or None) for t, g in QUERIES]

    results = benchmark(run_all)
    expected = [dense.probability(t, g or None) for t, g in QUERIES]
    assert results == pytest.approx(expected, rel=1e-9)


def test_bench_rule_generation(benchmark, model):
    from repro.core.rules import RuleGenerator

    generator = RuleGenerator(model)
    rules = benchmark(generator.exhaustive, 2)
    assert len(rules) > 50
