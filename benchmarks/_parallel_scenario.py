"""The wide order-3 scan scenario shared between ``bench_parallel.py``
and the ``run_all.py`` trajectory emitter — one definition of the
workload, so recorded parallel speedups always measure exactly what CI
asserts.

Why a *wide* scenario: the paper-sized medical survey's whole order-3
candidate pool is ~100 cells, which the vectorized kernel scans in under
a millisecond — below process-pool round-trip cost, so parallelism
cannot (and should not) win there.  Sharding pays on the production
shape the ROADMAP aims at: many attributes and higher cardinalities,
where a single order's pool is thousands of cells and the Eq-41
data-side tables dominate.  This module plants that world: a seeded
random table over ``ATTRS`` five-valued attributes with a batch of
adopted order-2 constraints, reproducing the state discovery reaches
when it enters order 3.
"""

import time

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.schema import Attribute, Schema
from repro.exceptions import ConstraintError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.model import MaxEntModel

SEED = 71
ORDER = 3
#: Enforced floors (full size, >= 4 CPUs): sharded scan and parallel
#: batch-query speedup at 4 workers.
MIN_PARALLEL_SPEEDUP = 2.0
WORKERS = 4


def dimensions(smoke: bool) -> tuple[int, int]:
    """(attribute count, cardinality): order-3 pool of ~4400 cells at
    full size, ~360 at smoke size."""
    return (5, 4) if smoke else (7, 5)


def timing_repeats(smoke: bool) -> int:
    return 3 if smoke else 5


def build_world(smoke: bool):
    """(table, constraints, model) at the entry of the order-3 scan.

    The adopted order-2 cells make the Eq-41 feasible-range tables do
    realistic sibling/sharing work, exactly like mid-discovery state.
    """
    attribute_count, cardinality = dimensions(smoke)
    rng = np.random.default_rng(SEED)
    attributes = [
        Attribute(
            f"A{index}", tuple(f"v{v}" for v in range(cardinality))
        )
        for index in range(attribute_count)
    ]
    schema = Schema(attributes)
    table = ContingencyTable(
        schema,
        rng.integers(1, 60, size=schema.shape).astype(np.int64),
    )
    constraints = ConstraintSet.first_order(table)
    adopted = 0
    for subset in table.subsets_of_order(2):
        for values in ((0, 0), (1, 2), (3, 3)):
            values = tuple(
                min(v, cardinality - 1) for v in values
            )
            try:
                constraints.add_cell(
                    constraints.cell_from_table(table, subset, values)
                )
                adopted += 1
            except ConstraintError:
                continue
        if adopted >= 18:
            break
    model = MaxEntModel.independent(
        schema,
        {
            name: table.first_order_probabilities(name)
            for name in schema.names
        },
    )
    return table, constraints, model


def query_traffic(schema: Schema, n_queries: int) -> list[str]:
    """Distinct conditional query strings over many marginal subsets —
    the cold-cache serving shape (every query compiles a fresh plan)."""
    names = schema.names
    queries = []
    index = 0
    while len(queries) < n_queries:
        target = names[index % len(names)]
        given = names[(index + 1 + index // len(names)) % len(names)]
        if given == target:
            given = names[(index + 2) % len(names)]
        target_attr = schema.attribute(target)
        given_attr = schema.attribute(given)
        target_value = target_attr.values[index % len(target_attr.values)]
        given_value = given_attr.values[
            (index // 3) % len(given_attr.values)
        ]
        queries.append(
            f"{target}={target_value} | {given}={given_value}"
        )
        index += 1
    return queries


def num_queries(smoke: bool) -> int:
    return 400 if smoke else 4000


def best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
