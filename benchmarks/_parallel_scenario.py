"""The wide order-3 scan scenario shared between ``bench_parallel.py``
and the ``run_all.py`` trajectory emitter — one definition of the
workload, so recorded parallel speedups always measure exactly what CI
asserts.

Why a *wide* scenario: the paper-sized medical survey's whole order-3
candidate pool is ~100 cells, which the vectorized kernel scans in under
a millisecond — below process-pool round-trip cost, so parallelism
cannot (and should not) win there.  Sharding pays on the production
shape the ROADMAP aims at: many attributes and higher cardinalities,
where a single order's pool is thousands of cells and the Eq-41
data-side tables dominate.  This module plants that world: a seeded
random table over ``ATTRS`` five-valued attributes with a batch of
adopted order-2 constraints, reproducing the state discovery reaches
when it enters order 3.
"""

import time

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.schema import Attribute, Schema
from repro.exceptions import ConstraintError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.model import MaxEntModel

SEED = 71
ORDER = 3
#: Enforced floors (full size, >= 4 CPUs): sharded scan and parallel
#: batch-query speedup at 4 workers.
MIN_PARALLEL_SPEEDUP = 2.0
#: Cold-path floor (full size, >= 4 CPUs): with the shm transport the
#: first scan/batch after a rebuild must no longer lose to serial —
#: the cold pessimization the zero-copy transport exists to kill.
MIN_PARALLEL_COLD_SPEEDUP = 1.0
WORKERS = 4


def dimensions(smoke: bool) -> tuple[int, int]:
    """(attribute count, cardinality): order-3 pool of ~4400 cells at
    full size, ~360 at smoke size."""
    return (5, 4) if smoke else (7, 5)


def timing_repeats(smoke: bool) -> int:
    return 3 if smoke else 5


def build_world(smoke: bool):
    """(table, constraints, model) at the entry of the order-3 scan.

    The adopted order-2 cells make the Eq-41 feasible-range tables do
    realistic sibling/sharing work, exactly like mid-discovery state.
    """
    attribute_count, cardinality = dimensions(smoke)
    rng = np.random.default_rng(SEED)
    attributes = [
        Attribute(
            f"A{index}", tuple(f"v{v}" for v in range(cardinality))
        )
        for index in range(attribute_count)
    ]
    schema = Schema(attributes)
    table = ContingencyTable(
        schema,
        rng.integers(1, 60, size=schema.shape).astype(np.int64),
    )
    constraints = ConstraintSet.first_order(table)
    adopted = 0
    for subset in table.subsets_of_order(2):
        for values in ((0, 0), (1, 2), (3, 3)):
            values = tuple(
                min(v, cardinality - 1) for v in values
            )
            try:
                constraints.add_cell(
                    constraints.cell_from_table(table, subset, values)
                )
                adopted += 1
            except ConstraintError:
                continue
        if adopted >= 18:
            break
    model = MaxEntModel.independent(
        schema,
        {
            name: table.first_order_probabilities(name)
            for name in schema.names
        },
    )
    return table, constraints, model


def query_traffic(schema: Schema, n_queries: int) -> list[str]:
    """Distinct conditional query strings over many marginal subsets —
    the cold-cache serving shape (every query compiles a fresh plan)."""
    names = schema.names
    queries = []
    index = 0
    while len(queries) < n_queries:
        target = names[index % len(names)]
        given = names[(index + 1 + index // len(names)) % len(names)]
        if given == target:
            given = names[(index + 2) % len(names)]
        target_attr = schema.attribute(target)
        given_attr = schema.attribute(given)
        target_value = target_attr.values[index % len(target_attr.values)]
        given_value = given_attr.values[
            (index // 3) % len(given_attr.values)
        ]
        queries.append(
            f"{target}={target_value} | {given}={given_value}"
        )
        index += 1
    return queries


def num_queries(smoke: bool) -> int:
    return 400 if smoke else 4000


def best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_parallel(smoke: bool) -> dict:
    """Parallel-subsystem trajectory metrics (equivalence always checked).

    One definition for ``run_all.py --json`` and the standalone
    ``bench_parallel.py --json`` emitter: serial-vs-sharded scan timings
    (cold and warm), serial-vs-parallel batch query timings, and the
    transport ledger — payload bytes moved through shared memory vs
    pickling, broadcasts amortized away by the model fingerprint, worker
    attach time.  Speedup ratios are recorded, not asserted — they depend
    on the machine's core count (present in the record); the benchmark
    asserts them under its own CPU gate, and ``check_regression.py``
    gates the recorded ratios against the baseline trajectory.
    """
    import os

    from repro.api.session import QuerySession
    from repro.parallel.scan import ShardedScanExecutor
    from repro.significance.kernels import OrderScanKernel
    from repro.significance.mml import most_significant

    repeats = timing_repeats(smoke)
    table, constraints, model = build_world(smoke)

    serial_kernel = OrderScanKernel(table, ORDER, constraints)
    serial_tests = serial_kernel.scan(model)
    with ShardedScanExecutor(max_workers=WORKERS) as executor:
        executor.begin_order(table, ORDER, constraints, None)
        parallel_tests, parallel_best = executor.scan(model)
        if parallel_tests != serial_tests or parallel_best != (
            most_significant(serial_tests)
        ):
            raise AssertionError(
                "sharded scan diverged from the serial kernel"
            )

        def parallel_cold():
            executor.begin_order(table, ORDER, constraints, None)
            executor.scan(model)

        scan_serial_cold = best_of(
            lambda: OrderScanKernel(table, ORDER, constraints).scan(model),
            repeats,
        )
        scan_serial_warm = best_of(
            lambda: serial_kernel.scan(model), repeats
        )
        scan_parallel_cold = best_of(parallel_cold, repeats)
        executor.begin_order(table, ORDER, constraints, None)
        executor.scan(model)
        scan_parallel_warm = best_of(lambda: executor.scan(model), repeats)
        executor.end_order()
        transport = executor.transport
        scan_counters = executor.counters.to_dict()

    queries = query_traffic(model.schema, num_queries(smoke))
    serial_values = QuerySession(model).batch(queries)
    query_serial = best_of(
        lambda: QuerySession(model).batch(queries), repeats
    )
    with QuerySession(model, max_workers=WORKERS) as session:
        if session.batch(queries) != serial_values:
            raise AssertionError(
                "parallel batch evaluation diverged from the serial session"
            )

        def query_cold():
            session._parallel.reset()
            session.batch(queries)

        query_parallel_cold = best_of(query_cold, repeats)
        query_parallel_warm = best_of(
            lambda: session.batch(queries), repeats
        )
        query_counters = session._parallel.counters.to_dict()

    return {
        "workers": WORKERS,
        "cpus": os.cpu_count() or 1,
        "transport": transport,
        "candidate_cells": len(serial_tests),
        "n_queries": len(queries),
        "scan_serial_cold_ms": 1e3 * scan_serial_cold,
        "scan_sharded_cold_ms": 1e3 * scan_parallel_cold,
        "scan_speedup_cold": scan_serial_cold / scan_parallel_cold,
        "scan_serial_warm_ms": 1e3 * scan_serial_warm,
        "scan_sharded_warm_ms": 1e3 * scan_parallel_warm,
        "scan_speedup_warm": scan_serial_warm / scan_parallel_warm,
        "scan_bytes_shared": scan_counters["bytes_shared"],
        "scan_bytes_pickled": scan_counters["bytes_pickled"],
        "scan_broadcasts_total": scan_counters["broadcasts_total"],
        "scan_broadcasts_skipped": scan_counters["broadcasts_skipped"],
        "scan_attach_ns": scan_counters["attach_ns"],
        "query_serial_s": query_serial,
        "query_parallel_cold_s": query_parallel_cold,
        "query_parallel_warm_s": query_parallel_warm,
        "query_speedup_cold": query_serial / query_parallel_cold,
        "query_speedup_warm": query_serial / query_parallel_warm,
        "query_bytes_shared": query_counters["bytes_shared"],
        "query_bytes_pickled": query_counters["bytes_pickled"],
        "query_broadcasts_total": query_counters["broadcasts_total"],
        "query_broadcasts_skipped": query_counters["broadcasts_skipped"],
        "query_attach_ns": query_counters["attach_ns"],
    }
