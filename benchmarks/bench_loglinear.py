"""A4 — ablation: cell constraints (the paper) vs whole-margin log-linear.

Benchmarks the paper's cell-based discovery against the classical
hierarchical log-linear forward selection (Cheeseman-style whole-marginal
constraints) on the paper data and on a planted population.  Shape
criteria: both capture the smoker-cancer conditional; the cell-based
model spends one parameter per adopted constraint while the log-linear
model spends ``(I-1)(J-1)`` per adopted pair; both beat independence on
held-out likelihood.
"""

import numpy as np
import pytest

from repro.baselines.bic_selector import log_likelihood
from repro.baselines.independence import independence_model
from repro.baselines.loglinear import LogLinearConfig, discover_loglinear
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.eval.tables import format_table
from repro.synth.surveys import medical_survey_population


def test_bench_loglinear_paper_data(benchmark, table, write_report):
    result = benchmark(
        discover_loglinear, table, LogLinearConfig(max_order=2)
    )

    cell_based = discover(table, DiscoveryConfig(max_order=2))
    empirical = 240 / 1290
    for model in (result.model, cell_based.model):
        fitted = model.conditional({"CANCER": "yes"}, {"SMOKING": "smoker"})
        assert fitted == pytest.approx(empirical, abs=0.01)
    assert result.num_interaction_parameters() > len(
        cell_based.model.cell_factors
    ) / 2  # comparable scale; exact counts reported below

    rows = [
        [
            "cell-based (paper)",
            len(cell_based.model.cell_factors),
            len(cell_based.model.cell_factors),
        ],
        [
            "log-linear margins",
            len(result.found_subsets),
            result.num_interaction_parameters(),
        ],
    ]
    text = "A4: MODEL FAMILY COMPARISON (paper data)\n\n" + format_table(
        ["model", "terms adopted", "interaction parameters"], rows
    )
    write_report("a4_loglinear.txt", text)


def test_bench_loglinear_holdout(benchmark, write_report):
    population = medical_survey_population()
    rng = np.random.default_rng(29)
    train = population.sample(30000, rng).to_contingency()
    holdout = population.sample(30000, rng).to_contingency()

    loglinear = benchmark(
        discover_loglinear, train, LogLinearConfig(max_order=2)
    )

    cell_based = discover(train, DiscoveryConfig(max_order=2))
    independent = independence_model(train)
    scores = {
        "independence": log_likelihood(holdout, independent),
        "cell-based (paper)": log_likelihood(holdout, cell_based.model),
        "log-linear margins": log_likelihood(holdout, loglinear.model),
    }
    # Both structured models beat independence out of sample.
    assert scores["cell-based (paper)"] > scores["independence"]
    assert scores["log-linear margins"] > scores["independence"]
    rows = [[name, score] for name, score in scores.items()]
    text = (
        "A4: HELD-OUT LOG-LIKELIHOOD (medical survey, 30k train / 30k test)\n\n"
        + format_table(["model", "holdout log-likelihood"], rows, floatfmt=".1f")
    )
    write_report("a4_loglinear_holdout.txt", text)
