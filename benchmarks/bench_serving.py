#!/usr/bin/env python
"""Serving-layer benchmark: network round-trip throughput and latency.

The workload comes from ``_serving_scenario`` — the paper's knowledge
base behind the full :mod:`repro.serve` stack (sockets, HTTP framing,
the coalescing batcher, the session pool).  Measured shapes:

- **closed loop, 1 client**: the per-request floor — every request pays
  a full network round trip with no coalescing opportunity.
- **closed loop, 4 clients**: concurrent independent clients; the
  micro-batcher folds overlapping singles into shared batch
  evaluations, so throughput should scale *better* than connection
  count alone explains.
- **open loop**: a fixed arrival schedule at half the measured
  closed-loop capacity; latency is measured from the scheduled send
  time, so queueing delay is visible.

Shape criteria: every served answer equals in-process ``kb.query()``
bit-for-bit (the scenario raises otherwise), the batcher reports zero
evaluation errors, and — on a machine with at least as many CPUs as
clients, outside smoke mode — multi-client throughput is at least
``MIN_THROUGHPUT_RATIO`` times the single-client floor.  The ratio is
recorded in the trajectory (``serving.throughput_ratio``) and gated by
``check_regression.py``.

Standalone (the CI serving artifact)::

    python benchmarks/bench_serving.py --json serving-bench.json --smoke
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from _serving_scenario import CLIENTS, measure_serving
from repro.eval.tables import format_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CPUS = os.cpu_count() or 1
#: Multi-client closed-loop RPS over single-client RPS.  With 4 clients
#: and coalescing the observed ratio is ~3x; the floor is deliberately
#: loose — it asserts "concurrency helps", not a specific machine.
MIN_THROUGHPUT_RATIO = 1.3
ENFORCE_RATIOS = not SMOKE and CPUS >= CLIENTS


@pytest.fixture(scope="module")
def serving_metrics():
    return measure_serving(SMOKE)


def test_bench_serving_throughput(serving_metrics, write_report):
    metrics = serving_metrics
    open_stats = metrics["open_loop"]
    rows = [
        [
            "closed loop x1",
            f"{metrics['single_client_rps']:.0f}",
            f"{metrics['single_client_p50_ms']:.2f}",
            "-",
            "1.0x",
        ],
        [
            f"closed loop x{metrics['clients']}",
            f"{metrics['rps']:.0f}",
            f"{metrics['p50_ms']:.2f}",
            f"{metrics['p99_ms']:.2f}",
            f"{metrics['throughput_ratio']:.1f}x",
        ],
        [
            f"open loop @{open_stats['target_rps']:.0f}/s",
            f"{open_stats['achieved_rps']:.0f}",
            f"{open_stats['p50_ms']:.2f}",
            f"{open_stats['p99_ms']:.2f}",
            "-",
        ],
    ]
    coalescing = metrics["coalescing"]
    write_report(
        "serving.txt",
        f"SERVED QUERY THROUGHPUT ({metrics['query_mix']}-query mix, "
        f"{metrics['requests_per_client']} requests/client, {CPUS} cpus)\n\n"
        + format_table(
            ["load shape", "rps", "p50 (ms)", "p99 (ms)", "vs x1"], rows
        )
        + (
            f"\n\ncoalescing: {coalescing['submitted']} submissions in "
            f"{coalescing['flushes']} flushes "
            f"(mean batch {coalescing['mean_batch']:.2f}, "
            f"max {coalescing['max_batch']})\n"
            f"in-process warm session: {metrics['inprocess_qps']:.0f} "
            f"queries/sec (served = "
            f"{100 * metrics['served_vs_inprocess']:.1f}% of in-process)"
        ),
    )

    # The scenario itself raised if any served float diverged from the
    # in-process answer; assert the flag so the contract is visible here.
    assert metrics["bit_identical"]
    assert coalescing["errors"] == 0
    assert metrics["p99_ms"] >= metrics["p50_ms"]
    if ENFORCE_RATIOS:
        assert metrics["throughput_ratio"] >= MIN_THROUGHPUT_RATIO, (
            f"{metrics['clients']} concurrent clients only reached "
            f"{metrics['throughput_ratio']:.2f}x the single-client "
            f"throughput (need >= {MIN_THROUGHPUT_RATIO}x)"
        )


def test_bench_serving_open_loop_keeps_schedule(serving_metrics):
    """Open-loop dispatch at half capacity must not fall behind its own
    schedule — achieved RPS within 20% of the target arrival rate."""
    open_stats = serving_metrics["open_loop"]
    assert open_stats["achieved_rps"] >= 0.8 * open_stats["target_rps"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        required=True,
        metavar="PATH",
        help="write a serving-bench record to PATH (CI artifact)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI"
    )
    args = parser.parse_args(argv)

    metrics = measure_serving(args.smoke or SMOKE)
    record = {
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(time.time())
        ),
        "smoke": args.smoke or SMOKE,
        "python": platform.python_version(),
        "cpus": CPUS,
        "serving": metrics,
    }
    Path(args.json).write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"serving-bench record written to {args.json} "
        f"({metrics['rps']:.0f} rps at x{metrics['clients']}, "
        f"{metrics['throughput_ratio']:.1f}x the single-client floor, "
        f"bit-identical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
