"""E5 — Figure 3: the complete discovery procedure on the paper's data.

Benchmarks the full loop (scan → adopt → refit, orders 2..3).  Shape
criteria: the first adopted constraint is the smoker∧cancer cell (Table
1's most significant), the fitted model satisfies every adopted
constraint, and the motivating association (smoking raises cancer
probability) holds in the acquired knowledge.
"""

import pytest

from repro.discovery.engine import discover
from repro.eval.harness import reproduce_discovery


def test_bench_figure3_discovery(benchmark, table, write_report):
    result = benchmark(discover, table)

    assert result.found[0].attributes == ("SMOKING", "CANCER")
    assert result.found[0].values == (0, 0)
    for cell in result.found:
        marginal = result.model.marginal(list(cell.attributes))
        assert marginal[cell.values] == pytest.approx(
            cell.probability, abs=1e-7
        )
    smoker = result.model.conditional(
        {"CANCER": "yes"}, {"SMOKING": "smoker"}
    )
    non_smoker = result.model.conditional(
        {"CANCER": "yes"}, {"SMOKING": "non-smoker"}
    )
    assert smoker > non_smoker
    _result, text = reproduce_discovery()
    write_report("figure3_discovery.txt", text)
