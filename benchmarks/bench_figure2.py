"""E2 — Figure 2: marginal sums (Eqs 1-6).

Benchmarks computing every first- and second-order marginal of the paper
table.  Shape criterion: all Figure-2 marginals match exactly.
"""

from repro.eval.harness import reproduce_figure2
from repro.eval.paper import FIGURE2_MARGINALS


def test_bench_figure2_marginals(benchmark, table, write_report):
    def all_marginals():
        return {
            subset: table.marginal(list(subset))
            for subset in list(FIGURE2_MARGINALS)
        }

    marginals = benchmark(all_marginals)

    for subset, expected in FIGURE2_MARGINALS.items():
        assert marginals[subset].tolist() == expected
    write_report("figure2.txt", reproduce_figure2())
