"""E1 — Figure 1: contingency tables from raw samples.

Benchmarks the Appendix-A ingestion path (raw records → tallied tensor)
and regenerates the two Figure-1 slices.  Shape criterion: the rebuilt
table equals the paper's counts cell for cell.
"""

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.eval.harness import reproduce_figure1


def test_bench_figure1_ingestion(benchmark, table, rng, write_report):
    schema = table.schema
    # Materialize a raw dataset with exactly the paper's counts.
    rows = []
    for index in np.ndindex(schema.shape):
        rows.extend([list(index)] * int(table.counts[index]))
    rows = np.array(rows, dtype=np.int64)
    rng.shuffle(rows)
    dataset = Dataset(schema, rows)

    rebuilt = benchmark(dataset.to_contingency)

    assert isinstance(rebuilt, ContingencyTable)
    assert rebuilt == table
    write_report("figure1.txt", reproduce_figure1())
