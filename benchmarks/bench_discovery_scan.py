"""Discovery scan kernels: vectorized whole-order scan vs scalar reference.

The order-3 scenario (medical-survey world, planted two- and three-way
structure): the benchmark reproduces the state discovery reaches when it
enters order 3 — fitted model, adopted order-2 constraints — and times a
full per-order candidate scan both ways:

- the scalar reference path (one :func:`evaluate_cell` per candidate,
  dict-based counts, per-cell feasible ranges);
- the vectorized :class:`~repro.significance.kernels.OrderScanKernel`,
  cold (building its data-side statistics) and warm (statistics cached,
  the regime the engine's scan-adopt-refit loop actually runs in).

Shape criteria: the kernel's scan output is *bit-identical* to the
reference (every CellTest float, the cell order, the greedy argmax), a
full kernel-backed discovery run equals a reference-backed run exactly
(adopted constraints, scan records, fitted marginals), and the warm
per-order scan is at least 5x faster than the scalar path.

Set ``REPRO_BENCH_SMOKE=1`` to run the same assertions at tiny sizes in
CI: vectorized == reference stays enforced — the kernels cannot silently
diverge — but the wall-clock ratio is not, since timings at toy sizes
are noise.
"""

import os
import time

import numpy as np
import pytest

from _discovery_scenario import (
    MIN_SPEEDUP,
    ORDER,
    best_of,
    build_table,
    order_entry_state,
    sample_size,
    timing_repeats,
)
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.eval.tables import format_table
from repro.significance.kernels import OrderScanKernel
from repro.significance.mml import most_significant, reference_scan_order

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

N_SAMPLES = sample_size(SMOKE)
REPEATS = timing_repeats(SMOKE)


@pytest.fixture(scope="module")
def table():
    return build_table(SMOKE)


@pytest.fixture(scope="module")
def order3_state(table):
    """Model and constraints as discovery leaves them entering order 3."""
    return order_entry_state(table)


def _best_of(fn, repeats=REPEATS) -> float:
    return best_of(fn, repeats)


def test_bench_order3_scan_speedup(table, order3_state, write_report):
    model, constraints = order3_state

    reference = reference_scan_order(table, model, ORDER, constraints)
    warm_kernel = OrderScanKernel(table, ORDER, constraints)
    vectorized = warm_kernel.scan(model)

    # Bit-identity: every CellTest (m1, m2, ranges, determined flags,
    # predicted, moments) and the greedy argmax.
    assert vectorized == reference
    best_ref = most_significant(reference)
    best_vec = most_significant(vectorized)
    assert (best_ref is None) == (best_vec is None)
    if best_ref is not None:
        assert vectorized.index(best_vec) == reference.index(best_ref)

    reference_seconds = _best_of(
        lambda: reference_scan_order(table, model, ORDER, constraints)
    )
    cold_seconds = _best_of(
        lambda: OrderScanKernel(table, ORDER, constraints).scan(model)
    )
    # Warm = data-side statistics cached, the engine loop's steady state.
    warm_seconds = _best_of(lambda: warm_kernel.scan(model))

    cold_speedup = reference_seconds / cold_seconds
    warm_speedup = reference_seconds / warm_seconds
    rows = [
        ["reference (scalar)", f"{1e3 * reference_seconds:.3f}", "1.0x"],
        ["kernel, cold", f"{1e3 * cold_seconds:.3f}", f"{cold_speedup:.1f}x"],
        ["kernel, warm", f"{1e3 * warm_seconds:.3f}", f"{warm_speedup:.1f}x"],
    ]
    text = (
        f"DISCOVERY SCAN KERNELS (order-{ORDER} scenario, N={N_SAMPLES}, "
        f"{len(reference)} candidate cells, best of {REPEATS})\n\n"
        + format_table(["scan path", "per-order scan (ms)", "speedup"], rows)
    )
    write_report("discovery_scan.txt", text)

    if not SMOKE:
        assert warm_speedup >= MIN_SPEEDUP, (
            f"warm kernel scan only {warm_speedup:.1f}x faster than the "
            f"scalar path (need >= {MIN_SPEEDUP}x)"
        )


def test_bench_full_discovery_equivalence(table, write_report):
    """A kernel-backed discovery run is indistinguishable from a
    reference-backed one: same adopted constraints, same scan records
    (bit-identical tests), same fitted marginals."""
    config = DiscoveryConfig(max_order=3)

    start = time.perf_counter()
    kernel_run = DiscoveryEngine(config).run(table)
    kernel_seconds = time.perf_counter() - start

    start = time.perf_counter()
    reference_run = DiscoveryEngine(config, scan_backend="reference").run(
        table
    )
    reference_seconds = time.perf_counter() - start

    assert [c.key for c in kernel_run.found] == [
        c.key for c in reference_run.found
    ]
    assert [c.probability for c in kernel_run.found] == [
        c.probability for c in reference_run.found
    ]
    assert len(kernel_run.scans) == len(reference_run.scans)
    for ours, theirs in zip(kernel_run.scans, reference_run.scans):
        assert ours.order == theirs.order
        assert ours.tests == theirs.tests
        assert ours.chosen == theirs.chosen
        assert ours.readopted == theirs.readopted
    assert np.array_equal(
        kernel_run.model.joint(), reference_run.model.joint()
    )

    profile = kernel_run.profile
    rows = [
        ["reference engine", f"{reference_seconds:.3f}"],
        ["kernel engine", f"{kernel_seconds:.3f}"],
        [
            "kernel stages (scan/fit/verify)",
            f"{profile.scan_seconds:.3f} / {profile.fit_seconds:.3f} / "
            f"{profile.verify_seconds:.3f}",
        ],
    ]
    write_report(
        "discovery_scan_equivalence.txt",
        f"FULL DISCOVERY: KERNEL VS REFERENCE BACKEND (N={N_SAMPLES}, "
        f"{len(kernel_run.found)} constraints, "
        f"{len(kernel_run.scans)} scans, identical results)\n\n"
        + format_table(["engine", "seconds"], rows),
    )
