"""The serving-bench workload shared between ``bench_serving.py`` and
the ``run_all.py`` trajectory emitter — one definition of the traffic,
so recorded serving numbers always measure exactly what CI asserts.

The workload is the paper's knowledge base behind the full network
stack (:mod:`repro.serve`): real sockets, HTTP framing, JSON bodies,
the coalescing batcher, and the session pool.  Two load modes:

- **closed loop** — N client threads, each issuing its next request the
  moment the previous answer lands.  Measures sustainable throughput
  (RPS) and per-request latency under self-limiting load.
- **open loop** — requests dispatched on a fixed schedule regardless of
  completion (the arrival pattern of independent clients), with latency
  measured from the *scheduled* send time, so queueing delay counts.

Every served answer is checked bit-identical to in-process
``kb.query()`` — the throughput run doubles as a conformance sweep.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.knowledge_base import ProbabilisticKnowledgeBase
from repro.eval.paper import paper_table
from repro.scenarios.replay import latency_stats as _latency_stats
from repro.serve import ServeClient, ServeConfig, serve_in_thread

#: Concurrent closed-loop clients (and open-loop dispatch workers).
CLIENTS = 4

#: The query mix: a serving-shaped spread of marginals, conditionals,
#: and multi-evidence conditionals over the paper's attributes.
QUERY_MIX = [
    "CANCER=yes",
    "CANCER=yes | SMOKING=smoker",
    "CANCER=yes | SMOKING=non-smoker",
    "CANCER=yes | FAMILY_HISTORY=yes",
    "SMOKING=smoker | CANCER=yes",
    "FAMILY_HISTORY=yes | CANCER=yes",
    "CANCER=yes | SMOKING=smoker, FAMILY_HISTORY=yes",
    "SMOKING=non-smoker | FAMILY_HISTORY=no",
]


def requests_per_client(smoke: bool) -> int:
    return 60 if smoke else 400


def build_kb() -> ProbabilisticKnowledgeBase:
    return ProbabilisticKnowledgeBase.from_data(paper_table())


def serve_config() -> ServeConfig:
    return ServeConfig(flush_interval=0.002, max_batch=32, pool_size=4)


def expected_answers(kb: ProbabilisticKnowledgeBase) -> dict[str, float]:
    """In-process ground truth for the mix, for exact-equality checks."""
    return {text: kb.query(text) for text in QUERY_MIX}


def closed_loop(
    host: str, port: int, clients: int, requests: int
) -> dict:
    """``clients`` threads, each firing ``requests`` back-to-back queries.

    Returns RPS, latency percentiles, and every (query, answer) pair for
    the bit-identity check.
    """
    barrier = threading.Barrier(clients + 1)
    latencies: list[list[float]] = [[] for _ in range(clients)]
    answers: list[list[tuple[str, float]]] = [[] for _ in range(clients)]

    def worker(slot: int) -> None:
        client = ServeClient(host, port)
        # One warm-up round trip so connection setup is off the clock.
        client.health()
        barrier.wait()
        for index in range(requests):
            text = QUERY_MIX[(slot + index) % len(QUERY_MIX)]
            start = time.perf_counter()
            answer = client.ask(text_kb, text)
            latencies[slot].append(time.perf_counter() - start)
            answers[slot].append((text, answer))
        client.close()

    text_kb = "paper"
    threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    flat_latencies = [value for chunk in latencies for value in chunk]
    total = clients * requests
    return {
        "clients": clients,
        "requests": total,
        "rps": total / elapsed,
        "elapsed_s": elapsed,
        **_latency_stats(flat_latencies),
        "answers": [pair for chunk in answers for pair in chunk],
    }


def open_loop(
    host: str, port: int, target_rps: float, total: int, workers: int
) -> dict:
    """Fixed-schedule dispatch at ``target_rps``; latency includes queue
    wait (measured from each request's scheduled send time)."""
    interval = 1.0 / target_rps
    latencies: list[float] = []
    lock = threading.Lock()
    pool = ThreadPoolExecutor(max_workers=workers)
    # One keep-alive connection per dispatch thread (an HTTP connection
    # is not safe to share between concurrent in-flight requests).
    local = threading.local()
    clients: list[ServeClient] = []

    def client_for_thread() -> ServeClient:
        client = getattr(local, "client", None)
        if client is None:
            client = ServeClient(host, port)
            client.health()
            local.client = client
            with lock:
                clients.append(client)
        return client

    def fire(index: int, scheduled: float) -> None:
        client = client_for_thread()
        text = QUERY_MIX[index % len(QUERY_MIX)]
        client.ask("paper", text)
        with lock:
            latencies.append(time.perf_counter() - scheduled)

    started = time.perf_counter()
    futures = []
    for index in range(total):
        scheduled = started + index * interval
        now = time.perf_counter()
        if scheduled > now:
            time.sleep(scheduled - now)
        futures.append(pool.submit(fire, index, scheduled))
    for future in futures:
        future.result()
    elapsed = time.perf_counter() - started
    pool.shutdown()
    for client in clients:
        client.close()
    return {
        "target_rps": target_rps,
        "achieved_rps": total / elapsed,
        "requests": total,
        **_latency_stats(latencies),
    }


def inprocess_qps(
    kb: ProbabilisticKnowledgeBase, requests: int
) -> float:
    """Sequential warm in-process queries per second, same mix."""
    with kb.session() as session:
        for text in QUERY_MIX:  # warm the plan/marginal caches
            session.ask(text)
        started = time.perf_counter()
        for index in range(requests):
            session.ask(QUERY_MIX[index % len(QUERY_MIX)])
        elapsed = time.perf_counter() - started
    return requests / elapsed


def measure_serving(smoke: bool) -> dict:
    """The serving trajectory metrics (bit-identity always asserted)."""
    kb = build_kb()
    expected = expected_answers(
        ProbabilisticKnowledgeBase.from_dict(kb.to_dict())
    )
    requests = requests_per_client(smoke)

    with serve_in_thread({"paper": kb}, config=serve_config()) as handle:
        single = closed_loop(handle.host, handle.port, 1, requests)
        multi = closed_loop(
            handle.host, handle.port, CLIENTS, requests
        )
        for run in (single, multi):
            for text, answer in run.pop("answers"):
                if answer != expected[text]:
                    raise AssertionError(
                        f"served answer for {text!r} diverged from "
                        f"in-process: {answer!r} != {expected[text]!r}"
                    )
        open_stats = open_loop(
            handle.host,
            handle.port,
            target_rps=max(10.0, 0.5 * multi["rps"]),
            total=CLIENTS * requests,
            workers=CLIENTS,
        )
        control = ServeClient(handle.host, handle.port)
        batcher = control.kb_stats("paper")["batcher"]
        control.close()

    baseline_qps = inprocess_qps(kb, max(200, requests))
    return {
        "clients": CLIENTS,
        "query_mix": len(QUERY_MIX),
        "requests_per_client": requests,
        "single_client_rps": single["rps"],
        "single_client_p50_ms": single["p50_ms"],
        "rps": multi["rps"],
        "p50_ms": multi["p50_ms"],
        "p99_ms": multi["p99_ms"],
        "throughput_ratio": multi["rps"] / single["rps"],
        "open_loop": open_stats,
        "coalescing": batcher,
        "inprocess_qps": baseline_qps,
        "served_vs_inprocess": multi["rps"] / baseline_qps,
        "bit_identical": True,
    }
