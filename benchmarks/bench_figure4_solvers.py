"""E6 — Figure 4 ablation: the a-value fitting loop, IPF vs Gevarter.

Benchmarks both solvers on the same constraint system (margins + the
Table-2 cell).  Shape criteria: both converge to the same joint (max
absolute difference < 1e-8); the vectorized IPF sweep is not slower than
the scalar Gauss–Seidel re-evaluation.
"""

import numpy as np
import pytest

from repro.eval.harness import reproduce_solver_comparison
from repro.maxent.constraints import ConstraintSet
from repro.maxent.gevarter import fit_gevarter
from repro.maxent.ipf import fit_ipf


@pytest.fixture
def constraints(table):
    constraints = ConstraintSet.first_order(table)
    for subset, values in [
        (("SMOKING", "CANCER"), (0, 0)),
        (("SMOKING", "FAMILY_HISTORY"), (0, 1)),
    ]:
        constraints.add_cell(
            constraints.cell_from_table(table, list(subset), list(values))
        )
    return constraints


def test_bench_figure4_ipf(benchmark, constraints, write_report):
    fit = benchmark(fit_ipf, constraints)
    assert fit.converged
    _fits, text = reproduce_solver_comparison()
    write_report("figure4_solvers.txt", text)


def test_bench_figure4_gevarter(benchmark, constraints):
    fit = benchmark(fit_gevarter, constraints, record_trace=False)
    assert fit.converged


def test_bench_figure4_dual(benchmark, constraints):
    from repro.maxent.dual import fit_dual

    fit = benchmark(fit_dual, constraints, tol=1e-8)
    assert fit.converged
    reference = fit_ipf(constraints)
    difference = np.abs(fit.model.joint() - reference.model.joint()).max()
    assert difference < 1e-6


def test_bench_figure4_agreement(benchmark, constraints):
    def both():
        ipf = fit_ipf(constraints)
        gevarter = fit_gevarter(constraints, record_trace=False)
        return ipf, gevarter

    ipf, gevarter = benchmark(both)
    difference = np.abs(ipf.model.joint() - gevarter.model.joint()).max()
    assert difference < 1e-8
