"""The order-3 discovery-scan scenario, shared between the enforced
benchmark (``bench_discovery_scan.py``) and the ``run_all.py`` trajectory
emitter — one definition of the workload, so the recorded trajectory
always measures exactly what CI asserts."""

import time

import numpy as np

from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.synth.surveys import medical_survey_population

SEED = 19
ORDER = 3
MIN_SPEEDUP = 5.0


def sample_size(smoke: bool) -> int:
    return 3000 if smoke else 80000


def timing_repeats(smoke: bool) -> int:
    return 3 if smoke else 5


def build_table(smoke: bool):
    rng = np.random.default_rng(SEED)
    return medical_survey_population().sample_table(sample_size(smoke), rng)


def order_entry_state(table):
    """Model and constraints as discovery leaves them entering ORDER."""
    result = discover(table, DiscoveryConfig(max_order=ORDER - 1))
    return result.model, result.constraints


def best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
