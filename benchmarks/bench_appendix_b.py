"""E8 — Appendix B: factored sum-of-products vs dense evaluation.

Benchmarks partition sums through variable elimination against the dense
tensor, on the discovered paper model and on a wide 16-attribute chain
where the dense path must enumerate 65536 cells.  Shape criteria: exact
agreement on the paper model; elimination handles the wide chain.
"""

import pytest

from repro.data.schema import Attribute, Schema
from repro.discovery.engine import discover
from repro.eval.harness import reproduce_appendix_b
from repro.maxent import elimination
from repro.maxent.model import MaxEntModel


def test_bench_appendix_b_paper_model(benchmark, table, write_report):
    model = discover(table).model
    factored = benchmark(elimination.partition_sum, model)
    dense = float(model.unnormalized().sum())
    assert factored == pytest.approx(dense, rel=1e-10)
    _rows, text = reproduce_appendix_b()
    write_report("appendix_b.txt", text)


@pytest.fixture
def chain_model():
    attributes = [Attribute(f"X{i}", ("a", "b")) for i in range(16)]
    schema = Schema(attributes)
    model = MaxEntModel(schema)
    for i in range(15):
        model.cell_factors[((f"X{i}", f"X{i+1}"), (0, 0))] = 2.0
    return model


def test_bench_appendix_b_wide_chain_factored(benchmark, chain_model):
    factored = benchmark(elimination.partition_sum, chain_model)
    dense = float(chain_model.unnormalized().sum())
    assert factored == pytest.approx(dense, rel=1e-9)


def test_bench_appendix_b_wide_chain_dense(benchmark, chain_model):
    dense = benchmark(lambda: float(chain_model.unnormalized().sum()))
    assert dense > 0
