"""A2 — ablation: pipeline cost vs sample size and attribute count.

Benchmarks discovery across N (the scan cost is N-independent; only the
counts change) and across schema width (the candidate-cell count grows
combinatorially).  Shape criterion: runtime grows with attribute count
but the pipeline stays laptop-scale through 6 attributes.
"""

import numpy as np
import pytest

from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.synth.generators import random_planted_population


@pytest.mark.parametrize("n", [1000, 10000, 100000])
def test_bench_scaling_sample_size(benchmark, n):
    rng = np.random.default_rng(1)
    population = random_planted_population(
        rng, num_attributes=3, num_planted=1, strength=3.0
    )
    table = population.sample_table(n, rng)
    result = benchmark(discover, table, DiscoveryConfig(max_order=2))
    assert result.table.total == n


@pytest.mark.parametrize("num_attributes", [3, 4, 5, 6])
def test_bench_scaling_attributes(benchmark, num_attributes):
    rng = np.random.default_rng(2)
    population = random_planted_population(
        rng,
        num_attributes=num_attributes,
        num_planted=2,
        strength=3.0,
    )
    table = population.sample_table(20000, rng)
    result = benchmark(discover, table, DiscoveryConfig(max_order=2))
    assert result.num_scans() >= 1
