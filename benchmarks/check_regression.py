#!/usr/bin/env python
"""Perf-regression gate: compare a fresh trajectory record to the baseline.

Usage::

    python benchmarks/run_all.py --json candidate.json --smoke --skip-suite
    python benchmarks/check_regression.py \
        --registry runs.db --candidate candidate.json \
        --output perf-regression-diff.json
    python benchmarks/check_regression.py \
        --baseline BENCH_discovery.json --candidate candidate.json  # legacy

Baselines come from a :class:`repro.store.RunRegistry` (``--registry``):
every ``benchmark`` run recorded with the candidate's ``smoke`` flag.
``--baseline FILE`` is the legacy flat-file path, kept as a thin
compatibility shim — the file is imported into an in-memory registry and
the *same* query answers, so both paths always reach the same verdict.

Checks, against the baseline trajectory records:

- **tracked speedup ratios** (vectorized-scan speedup, sharded-scan and
  parallel-query speedups, multi-client serving throughput): fail when
  the candidate degrades more than
  ``--tolerance`` (default 30%) below the baseline.  Ratios are compared
  only between records with the same ``smoke`` flag (toy-size and
  full-size timings are not comparable), and the baseline value for a
  metric is the *minimum* across matching records — a candidate only
  fails when it is worse than every baseline run, which damps
  single-record timing noise.  Parallel ratios additionally require the
  baseline machine to have had at least as many CPUs as workers; a
  laptop baseline can't set a multicore floor.
- **tracked wire costs** (distributed bytes-on-wire per warm scan):
  the mirror image — fail when the candidate *exceeds* the best
  baseline by more than the tolerance, so re-broadcasting the joint
  every scan can't creep back in.
- **absolute floors**: the sharded-scan and parallel-query *cold*
  speedups, and the warm distributed scan/query speedups, must stay
  above fixed floors (no baseline needed) on full-size candidates
  whose machine has at least as many CPUs as that subsystem's workers
  — the shm transport's break-even contract for the first scan/batch
  after a rebuild, and TCP's steady-state break-even against serial.
- **scenario conformance gates and latency SLOs**: fail when any
  scenario that passed in the baseline fails in the candidate (and when
  the candidate has any gate or SLO failure at all — same contract as
  ``run_all``).

The full comparison is written to ``--output`` as JSON (CI uploads it as
an artifact) and embeds the cross-run scenario scorecard
(:mod:`repro.eval.scorecard`) built from the baseline records plus the
candidate, so the artifact carries per-scenario trends alongside the
verdict.  The exit code is non-zero on any regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Dotted paths of the speedup ratios the gate tracks.  ``cpu_bound``
#: marks ratios that only mean something when the recording machine had
#: at least ``parallel.workers`` CPUs.
TRACKED_RATIOS = (
    ("metrics.scan_speedup_warm", False),
    ("parallel.scan_speedup_cold", True),
    ("parallel.scan_speedup_warm", True),
    ("parallel.query_speedup_cold", True),
    # Multi-client served throughput over the single-client floor.  Not
    # cpu-bound: the win comes from request coalescing and I/O overlap,
    # which survive on small machines.
    ("serving.throughput_ratio", False),
    # Warm distributed scan over localhost TCP worker daemons.
    ("distributed.scan_speedup", True),
)

#: Dotted paths of cost metrics (lower is better): the candidate fails
#: when it exceeds every-comparable-baseline's *minimum* by more than
#: the tolerance.  Wire bytes per warm scan is the broadcast-amortization
#: contract made enforceable — re-shipping the joint every scan would
#: blow straight through it.
TRACKED_COSTS = (
    ("distributed.wire_bytes_per_scan", False),
)

#: Baseline-independent floors on the cold parallel paths, enforced only
#: for full-size candidates recorded on a machine with enough CPUs.  The
#: shm transport's contract is that the *first* scan/batch after a
#: rebuild breaks even against serial (1.0x); 0.95 leaves timing noise
#: below the bar without letting the cold-path pessimization creep back.
ABSOLUTE_FLOORS = (
    ("parallel.scan_speedup_cold", 0.95),
    ("parallel.query_speedup_cold", 0.95),
    # Warm distributed paths must at least break even against serial at
    # full size on a real multicore box — the fingerprint-amortized
    # broadcasts exist to keep TCP round trips off the steady state.
    ("distributed.scan_speedup", 1.0),
    ("distributed.query_speedup", 1.0),
)


def read_records(path: Path) -> list[dict]:
    data = json.loads(path.read_text())
    if not isinstance(data, list):
        data = [data]
    if not data:
        raise SystemExit(f"error: {path} holds no trajectory records")
    return data


def lookup(record: dict, dotted: str):
    value = record
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def has_enough_cpus(record: dict, metric: str = "parallel.") -> bool:
    """Did the recording machine have enough CPUs for ``metric``?

    The gate reads the section the metric lives in (``parallel.*`` or
    ``distributed.*`` — each records its own ``cpus``/``workers``), so a
    laptop baseline can't set a multicore floor for either subsystem.
    """
    section = record.get(metric.split(".", 1)[0]) or {}
    return section.get("cpus", 0) >= section.get("workers", 1)


def compare_ratios(
    baseline_records: list[dict], candidate: dict, tolerance: float
) -> list[dict]:
    rows = []
    for metric, cpu_bound in TRACKED_RATIOS:
        candidate_value = lookup(candidate, metric)
        if candidate_value is None:
            continue
        usable = [
            record
            for record in baseline_records
            if lookup(record, metric) is not None
            and (not cpu_bound or has_enough_cpus(record, metric))
        ]
        if cpu_bound and not has_enough_cpus(candidate, metric):
            status = "skipped (too few cpus on candidate)"
            rows.append(
                {
                    "metric": metric,
                    "baseline": None,
                    "candidate": candidate_value,
                    "status": status,
                }
            )
            continue
        if not usable:
            rows.append(
                {
                    "metric": metric,
                    "baseline": None,
                    "candidate": candidate_value,
                    "status": "no comparable baseline",
                }
            )
            continue
        baseline_value = min(lookup(record, metric) for record in usable)
        floor = (1.0 - tolerance) * baseline_value
        regressed = candidate_value < floor
        rows.append(
            {
                "metric": metric,
                "baseline": baseline_value,
                "candidate": candidate_value,
                "floor": floor,
                "status": "regressed" if regressed else "ok",
            }
        )
    return rows


def compare_costs(
    baseline_records: list[dict], candidate: dict, tolerance: float
) -> list[dict]:
    """Cost metrics (lower is better), mirror-imaged ``compare_ratios``:
    the ceiling is ``(1 + tolerance)`` times the best (minimum)
    comparable baseline, and a candidate above it regressed."""
    rows = []
    for metric, cpu_bound in TRACKED_COSTS:
        candidate_value = lookup(candidate, metric)
        if candidate_value is None:
            continue
        usable = [
            record
            for record in baseline_records
            if lookup(record, metric) is not None
            and (not cpu_bound or has_enough_cpus(record, metric))
        ]
        if not usable:
            rows.append(
                {
                    "metric": metric,
                    "baseline": None,
                    "candidate": candidate_value,
                    "status": "no comparable baseline",
                }
            )
            continue
        baseline_value = min(lookup(record, metric) for record in usable)
        ceiling = (1.0 + tolerance) * baseline_value
        regressed = candidate_value > ceiling
        rows.append(
            {
                "metric": metric,
                "baseline": baseline_value,
                "candidate": candidate_value,
                "ceiling": ceiling,
                "status": "regressed" if regressed else "ok",
            }
        )
    return rows


def check_absolute_floors(candidate: dict) -> list[dict]:
    """Floors that hold regardless of baseline history.

    Skipped for smoke candidates (toy sizes sit below process round-trip
    cost by design) and, per metric, for machines with fewer CPUs than
    that subsystem's workers — the same gate the benchmarks themselves
    apply.  The skip is surfaced as a status row, never silent.
    """
    rows = []
    full_size = not candidate.get("smoke", False)
    for metric, floor in ABSOLUTE_FLOORS:
        value = lookup(candidate, metric)
        if value is None:
            continue
        if not (full_size and has_enough_cpus(candidate, metric)):
            status = "skipped (smoke or too few cpus)"
        elif value < floor:
            status = "regressed"
        else:
            status = "ok"
        rows.append(
            {
                "metric": metric,
                "floor": floor,
                "candidate": value,
                "status": status,
            }
        )
    return rows


def compare_scenarios(
    baseline_records: list[dict], candidate: dict
) -> list[dict]:
    latest_passed: dict[str, bool] = {}
    for record in baseline_records:
        for entry in record.get("scenarios") or []:
            latest_passed[entry["scenario"]] = entry.get("passed", True)
    rows = []
    for entry in candidate.get("scenarios") or []:
        name = entry["scenario"]
        passed = entry.get("passed", True)
        passed_before = latest_passed.get(name)
        if not passed:
            # A gate miss only gets a pass here when the baseline already
            # failed the same scenario (known-bad); new scenarios with no
            # baseline are held to their gates like run_all itself does.
            status = (
                "failing (also in baseline)"
                if passed_before is False
                else "regressed"
            )
        else:
            status = "ok"
        rows.append(
            {
                "scenario": name,
                "baseline_passed": passed_before,
                "candidate_passed": passed,
                "gate_failures": entry.get("gate_failures", []),
                "slo_failures": entry.get("slo_failures", []),
                "status": status,
            }
        )
    return rows


def baseline_registry(args):
    """The run registry that answers the baseline query.

    ``--registry`` opens it directly.  ``--baseline FILE`` is the legacy
    flat-file path: the file is imported into an in-memory registry so
    both paths run the identical ``baseline_records(smoke)`` query — the
    shim cannot drift from the registry-backed verdict.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.store import RunRegistry

    if args.registry:
        return RunRegistry(args.registry)
    print(
        "note: --baseline FILE is deprecated; import the trajectory with "
        "'repro runs import' and pass --registry instead",
        file=sys.stderr,
    )
    registry = RunRegistry(":memory:")
    registry.import_trajectory(args.baseline)
    return registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        help=(
            "legacy: committed trajectory file (BENCH_discovery.json); "
            "imported into an in-memory run registry"
        ),
    )
    parser.add_argument(
        "--registry",
        metavar="PATH",
        help="run registry (SQLite) holding the baseline benchmark runs",
    )
    parser.add_argument(
        "--candidate",
        required=True,
        help="trajectory file from the fresh run_all --json run",
    )
    parser.add_argument(
        "--output",
        help="write the full comparison as JSON here (CI artifact)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup degradation (default 0.30)",
    )
    args = parser.parse_args(argv)
    if bool(args.baseline) == bool(args.registry):
        parser.error("pass exactly one of --baseline FILE or --registry PATH")

    candidate = read_records(Path(args.candidate))[-1]
    smoke = candidate.get("smoke", False)
    # Only same-mode records are comparable: baseline_records(smoke)
    # returns same-flag benchmark runs, so with no matching baseline the
    # ratio rows report "no comparable baseline" rather than judging
    # toy-size timings against full-size ones (or vice versa).
    with baseline_registry(args) as registry:
        baseline = registry.baseline_records(smoke)
    if not baseline and args.registry:
        print(
            f"warning: {args.registry} holds no smoke={smoke} benchmark "
            f"runs; every ratio will report 'no comparable baseline'",
            file=sys.stderr,
        )

    ratios = compare_ratios(baseline, candidate, args.tolerance)
    costs = compare_costs(baseline, candidate, args.tolerance)
    floors = check_absolute_floors(candidate)
    scenarios = compare_scenarios(baseline, candidate)
    regressions = [
        f"{row['metric']}: {row['candidate']:.2f}x < floor "
        f"{row['floor']:.2f}x (baseline {row['baseline']:.2f}x)"
        for row in ratios
        if row["status"] == "regressed"
    ] + [
        f"{row['metric']}: {row['candidate']:.0f} > ceiling "
        f"{row['ceiling']:.0f} (baseline {row['baseline']:.0f})"
        for row in costs
        if row["status"] == "regressed"
    ] + [
        f"{row['metric']}: {row['candidate']:.2f}x < absolute floor "
        f"{row['floor']:.2f}x"
        for row in floors
        if row["status"] == "regressed"
    ] + [
        f"scenario {row['scenario']}: "
        + "; ".join(
            row["gate_failures"]
            + [f"SLO {miss}" for miss in row["slo_failures"]]
        )
        for row in scenarios
        if row["status"] == "regressed"
    ]

    from repro.eval.scorecard import (
        build_scorecard,
        scenario_entries_from_trajectory,
    )

    scorecard = build_scorecard(
        scenario_entries_from_trajectory([*baseline, candidate])
    )
    report = {
        "smoke": smoke,
        "tolerance": args.tolerance,
        "baseline_records_compared": len(baseline),
        "candidate_timestamp": candidate.get("timestamp"),
        "ratios": ratios,
        "costs": costs,
        "absolute_floors": floors,
        "scenarios": scenarios,
        "scorecard": scorecard,
        "regressions": regressions,
        "passed": not regressions,
    }
    if args.output:
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for row in ratios:
        baseline_text = (
            f"{row['baseline']:.2f}x" if row["baseline"] is not None else "-"
        )
        print(
            f"{row['metric']:<32} baseline {baseline_text:>8} "
            f"candidate {row['candidate']:.2f}x  [{row['status']}]"
        )
    for row in costs:
        baseline_text = (
            f"{row['baseline']:.0f}" if row["baseline"] is not None else "-"
        )
        print(
            f"{row['metric']:<32} baseline {baseline_text:>8} "
            f"candidate {row['candidate']:.0f}  [{row['status']}]"
        )
    for row in floors:
        print(
            f"{row['metric']:<32} absolute {row['floor']:.2f}x "
            f"candidate {row['candidate']:.2f}x  [{row['status']}]"
        )
    failing = [row for row in scenarios if not row["candidate_passed"]]
    print(
        f"scenarios: {len(scenarios) - len(failing)}/{len(scenarios)} "
        f"conformant"
    )
    if regressions:
        print("\nperformance regressions detected:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("no performance regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
