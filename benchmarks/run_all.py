#!/usr/bin/env python
"""Run the benchmark suite and record a discovery-performance trajectory.

Usage::

    python benchmarks/run_all.py                 # pytest-run every bench
    python benchmarks/run_all.py --json          # + append BENCH_discovery.json
    python benchmarks/run_all.py --json --smoke  # tiny sizes (CI)
    python benchmarks/run_all.py --json --skip-suite   # metrics only
    python benchmarks/run_all.py --json --smoke --skip-suite \
        --tier stress                            # nightly stress matrix
    python benchmarks/run_all.py --json --smoke --registry runs.db \
        --scorecard scorecard.md                 # + cross-run scorecard

``--json`` measures the discovery hot path directly — per-order scan time
(scalar reference vs vectorized kernel, cold and warm), full kernel- and
reference-backed discovery runs, and the engine's per-stage split — checks
that the vectorized and reference decisions are identical, measures the
parallel subsystem (sharded scans and concurrent batch queries vs the
serial paths, equivalence asserted, ratios recorded with the machine's
CPU count), measures the serving layer (closed/open-loop RPS and latency
through the :mod:`repro.serve` network stack, served answers asserted
bit-identical to in-process queries), runs the scenario conformance
matrix (``repro.scenarios``; ``--tier`` selects registry tiers, so the
nightly job replays the stress fleet with ``--tier stress``) and embeds
its per-scenario precision/recall/KL/stage/latency-SLO metrics, and
appends one record to a trajectory file (default ``BENCH_discovery.json``
at the repo root).  The file is a JSON list, one record per invocation,
so successive runs chart scan performance, parallel speedups, and
conformance quality over time — ``check_regression.py`` gates PRs
against it.  With ``--registry`` the record also lands in the run
registry (SQLite), and ``--scorecard`` renders the cross-run scenario
scorecard (:mod:`repro.eval.scorecard`) from everything recorded there.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TRAJECTORY = REPO_ROOT / "BENCH_discovery.json"


def run_suite(smoke: bool) -> int:
    """Run every benchmark file under pytest; returns the exit code."""
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", str(REPO_ROOT / "src"))
    if smoke:
        env["REPRO_BENCH_SMOKE"] = "1"
    bench_files = sorted(
        str(path) for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    )
    command = [sys.executable, "-m", "pytest", "-q", *bench_files]
    return subprocess.call(command, env=env)


def measure_discovery(smoke: bool) -> dict:
    """The discovery-scan trajectory metrics (and equivalence check).

    The scenario (table, warm-up state, timing policy) comes from
    ``_discovery_scenario``, the same module the enforced benchmark uses,
    so trajectory records stay comparable to the CI-asserted numbers.
    """
    from _discovery_scenario import (
        ORDER,
        best_of,
        build_table,
        order_entry_state,
        sample_size,
        timing_repeats,
    )
    from repro.discovery.config import DiscoveryConfig
    from repro.discovery.engine import DiscoveryEngine
    from repro.significance.kernels import OrderScanKernel
    from repro.significance.mml import reference_scan_order

    n_samples = sample_size(smoke)
    repeats = timing_repeats(smoke)
    order = ORDER
    table = build_table(smoke)
    model, constraints = order_entry_state(table)

    reference_tests = reference_scan_order(table, model, order, constraints)
    warm_kernel = OrderScanKernel(table, order, constraints)
    vectorized_tests = warm_kernel.scan(model)
    if vectorized_tests != reference_tests:
        raise AssertionError(
            "vectorized scan diverged from the scalar reference"
        )

    scan_reference = best_of(
        lambda: reference_scan_order(table, model, order, constraints),
        repeats,
    )
    scan_cold = best_of(
        lambda: OrderScanKernel(table, order, constraints).scan(model),
        repeats,
    )
    scan_warm = best_of(lambda: warm_kernel.scan(model), repeats)

    config = DiscoveryConfig(max_order=3)
    start = time.perf_counter()
    kernel_run = DiscoveryEngine(config).run(table)
    discovery_kernel = time.perf_counter() - start
    start = time.perf_counter()
    reference_run = DiscoveryEngine(config, scan_backend="reference").run(
        table
    )
    discovery_reference = time.perf_counter() - start
    if [c.key for c in kernel_run.found] != [
        c.key for c in reference_run.found
    ]:
        raise AssertionError(
            "kernel-backed discovery adopted different constraints than "
            "the reference backend"
        )

    profile = kernel_run.profile
    return {
        "scenario": "order3-medical-survey",
        "n_samples": n_samples,
        "candidate_cells": len(reference_tests),
        "scan_reference_ms": 1e3 * scan_reference,
        "scan_kernel_cold_ms": 1e3 * scan_cold,
        "scan_kernel_warm_ms": 1e3 * scan_warm,
        "scan_speedup_warm": scan_reference / scan_warm,
        "discovery_kernel_s": discovery_kernel,
        "discovery_reference_s": discovery_reference,
        "constraints_found": len(kernel_run.found),
        "stage_scan_s": profile.scan_seconds,
        "stage_fit_s": profile.fit_seconds,
        "stage_verify_s": profile.verify_seconds,
    }


def measure_parallel(smoke: bool) -> dict:
    """Parallel-subsystem trajectory metrics (equivalence always checked).

    The workload and measurement live in ``_parallel_scenario`` — the
    module the enforced ``bench_parallel.py`` (and its standalone
    ``--json`` emitter) uses — so trajectory records, CI artifacts, and
    the asserted benchmarks always measure exactly the same thing.  The
    record includes the resolved transport and its payload ledger
    (``scan_bytes_shared`` / ``scan_bytes_pickled`` and the query-side
    equivalents) alongside the cold and warm speedups.
    """
    from _parallel_scenario import measure_parallel as _measure

    return _measure(smoke)


def measure_distributed(smoke: bool) -> dict:
    """Distributed-transport trajectory metrics (bit-identity checked).

    The workload and the worker-daemon lifecycle come from
    ``_distributed_scenario`` — the module ``bench_distributed.py``
    uses — so trajectory records and the CI artifact measure the same
    thing.  Environments that cannot spawn localhost daemons (no
    subprocesses, no loopback) record a ``skipped`` reason instead of
    failing the whole emitter: the distributed metrics are additive to
    the trajectory, not a precondition for it.
    """
    try:
        from _distributed_scenario import measure_distributed as _measure

        return _measure(smoke)
    except Exception as error:  # noqa: BLE001 - recorded, not swallowed
        return {"skipped": f"{type(error).__name__}: {error}"}


def measure_serving(smoke: bool) -> dict:
    """Serving-layer trajectory metrics (bit-identity always checked).

    The workload comes from ``_serving_scenario``, the module
    ``bench_serving.py`` uses: the paper's knowledge base behind the
    full :mod:`repro.serve` network stack.  The multi-vs-single-client
    throughput ratio is recorded here and gated by
    ``check_regression.py`` (``serving.throughput_ratio``).
    """
    from _serving_scenario import measure_serving as _measure

    return _measure(smoke)


def measure_scenarios(smoke: bool, tiers=None) -> list[dict]:
    """Per-scenario conformance metrics for the trajectory record.

    Baselines are skipped — the trajectory tracks the paper's own engine;
    the conformance runner's selector comparison lives in the CI
    scenario-matrix job and ``repro scenarios run``.  Gate misses and
    latency-SLO misses are embedded in the records (``gate_failures`` /
    ``slo_failures`` / ``passed``), not raised: the caller appends the
    record *first* and fails after, so a miss still ships the metrics
    that explain it.  ``tiers`` selects registry tiers (default: the
    smoke+full fleet; pass ``["stress"]`` for the nightly stress matrix).
    """
    from repro.scenarios import outcome_to_dict, run_matrix

    outcomes = run_matrix(smoke=smoke, include_baselines=False, tiers=tiers)
    return [outcome_to_dict(outcome) for outcome in outcomes]


def write_scorecard(registry_path: str, scorecard_path: Path) -> None:
    """Render the cross-run scenario scorecard from the run registry.

    Reads every scenario outcome the registry holds (including the ones
    the current invocation just recorded), writes the markdown report to
    ``scorecard_path`` and the JSON document next to it (``.json``).
    """
    from repro.eval.scorecard import (
        build_scorecard,
        render_scorecard_markdown,
        scenario_entries_from_registry,
    )
    from repro.store import RunRegistry

    with RunRegistry(registry_path) as registry:
        entries = scenario_entries_from_registry(registry)
    scorecard = build_scorecard(entries)
    scorecard_path.write_text(render_scorecard_markdown(scorecard))
    json_path = scorecard_path.with_suffix(".json")
    json_path.write_text(json.dumps(scorecard, indent=2) + "\n")
    print(
        f"scorecard written to {scorecard_path} and {json_path} "
        f"({scorecard['total_scenarios']} scenarios, "
        f"{scorecard['total_outcomes']} outcomes)",
        file=sys.stderr,
    )


def append_trajectory(path: Path, record: dict) -> None:
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        nargs="?",
        const=str(DEFAULT_TRAJECTORY),
        default=None,
        metavar="PATH",
        help=(
            "append a discovery trajectory record to PATH "
            f"(default {DEFAULT_TRAJECTORY.name})"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI (sets REPRO_BENCH_SMOKE=1)",
    )
    parser.add_argument(
        "--skip-suite",
        action="store_true",
        help="skip the pytest benchmark suite, only emit metrics",
    )
    parser.add_argument(
        "--registry",
        metavar="PATH",
        help=(
            "also record the trajectory record in this run registry "
            "(SQLite; created if missing) under a content-derived run_id "
            "— the source check_regression.py --registry compares against"
        ),
    )
    parser.add_argument(
        "--tier",
        action="append",
        choices=["smoke", "full", "stress", "all"],
        help=(
            "scenario registry tiers to run (repeatable; default "
            "smoke+full — 'stress' selects the nightly stress matrix)"
        ),
    )
    parser.add_argument(
        "--scorecard",
        metavar="PATH",
        help=(
            "with --registry: write the cross-run scenario scorecard "
            "(markdown at PATH, JSON next to it) after recording the run"
        ),
    )
    args = parser.parse_args(argv)
    if args.registry and args.json is None:
        parser.error("--registry requires --json (it records the metrics)")
    if args.scorecard and not args.registry:
        parser.error("--scorecard requires --registry (it aggregates runs)")

    status = 0
    if not args.skip_suite:
        status = run_suite(args.smoke)
        if status != 0:
            return status

    if args.json is not None:
        if args.smoke:
            os.environ["REPRO_BENCH_SMOKE"] = "1"
        sys.path.insert(0, str(REPO_ROOT / "src"))
        started = time.time()
        metrics = measure_discovery(args.smoke)
        parallel = measure_parallel(args.smoke)
        distributed = measure_distributed(args.smoke)
        serving = measure_serving(args.smoke)
        scenarios = measure_scenarios(args.smoke, tiers=args.tier)
        record = {
            "timestamp": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(started)
            ),
            "smoke": args.smoke,
            "python": platform.python_version(),
            "metrics": metrics,
            "parallel": parallel,
            "distributed": distributed,
            "serving": serving,
            "scenarios": scenarios,
        }
        path = Path(args.json)
        append_trajectory(path, record)
        if args.registry:
            from repro.store import RunRegistry, config_hash, current_git_sha

            with RunRegistry(args.registry) as registry:
                run = registry.record(
                    kind="benchmark",
                    metrics=record,
                    smoke=args.smoke,
                    cpus=parallel["cpus"],
                    config_hash=config_hash(
                        {"suite": "run_all", "smoke": args.smoke}
                    ),
                    git_sha=current_git_sha(),
                    created_at=record["timestamp"],
                )
            print(
                f"run {run.run_id} recorded in {args.registry}",
                file=sys.stderr,
            )
            if args.scorecard:
                write_scorecard(args.registry, Path(args.scorecard))
        failed = [
            f"{entry['scenario']}: {failure}"
            for entry in scenarios
            for failure in entry.get("gate_failures", [])
        ] + [
            f"{entry['scenario']}: SLO {failure}"
            for entry in scenarios
            for failure in entry.get("slo_failures", [])
        ]
        if failed:
            # The record (with the failing metrics embedded) is already
            # on disk — exactly the diagnostic a gate miss needs.
            print(
                f"trajectory record appended to {path}; scenario "
                f"conformance gates or latency SLOs missed:",
                file=sys.stderr,
            )
            for failure in failed:
                print(f"  {failure}", file=sys.stderr)
            return 1
        distributed_note = (
            f"tcp x{distributed['workers']} warm scan "
            f"{distributed['scan_speedup']:.1f}x, "
            if "skipped" not in distributed
            else f"distributed skipped ({distributed['skipped']}), "
        )
        print(
            f"trajectory record appended to {path} "
            f"(warm scan speedup {metrics['scan_speedup_warm']:.1f}x, "
            f"sharded x{parallel['workers']} cold scan "
            f"{parallel['scan_speedup_cold']:.1f}x on "
            f"{parallel['cpus']} cpus, "
            f"{distributed_note}"
            f"served x{serving['clients']} throughput "
            f"{serving['throughput_ratio']:.1f}x the single-client floor, "
            f"{len(scenarios)} scenarios conformant)"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
