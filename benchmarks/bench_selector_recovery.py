"""A1 — ablation: MML vs chi-square vs BIC on planted correlations.

Benchmarks the MML discovery loop on a planted population and regenerates
the recovery comparison.  Shape criteria: MML recall on strong planted
signals is high, and MML stays quiet (precision-preserving) on a null
population — the adaptive-threshold claims of the method.
"""

import numpy as np

from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.eval.harness import selector_recovery_experiment
from repro.synth.generators import (
    independent_population,
    random_planted_population,
    recovery_score,
)


def test_bench_selector_recovery(benchmark, write_report):
    rng = np.random.default_rng(0)
    population = random_planted_population(
        rng, num_attributes=4, num_planted=2, strength=3.0
    )
    table = population.sample_table(20000, rng)

    result = benchmark(discover, table, DiscoveryConfig(max_order=2))

    found = {(c.attributes, c.values) for c in result.found}
    _precision, recall = recovery_score(population, found)
    assert recall >= 0.5
    rows, text = selector_recovery_experiment(seed=0, trials=3, n=20000)
    mml_recall = np.mean([r.recall for r in rows if r.selector == "mml"])
    assert mml_recall >= 0.5
    write_report("a1_selector_recovery.txt", text)


def test_bench_null_population_quiet(benchmark):
    rng = np.random.default_rng(5)
    population = independent_population(rng, num_attributes=4)
    table = population.sample_table(20000, rng)

    result = benchmark(discover, table, DiscoveryConfig(max_order=2))

    assert len(result.found) <= 1  # at most one chance false alarm
