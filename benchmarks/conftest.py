"""Shared benchmark fixtures.

Every bench regenerates its paper artifact, asserts the shape criteria
(who wins / sign / ranking — see DESIGN.md §3), and writes the rendered
table to ``benchmarks/output/`` so the reproduced artifacts can be read
side by side with the paper.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.eval.paper import paper_table

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def write_report(output_dir):
    def _write(name: str, text: str) -> None:
        (output_dir / name).write_text(text + "\n")

    return _write


@pytest.fixture
def table():
    return paper_table()


@pytest.fixture
def rng():
    return np.random.default_rng(2026)
