"""Batch query throughput: compiled sessions vs seed-style sequential calls.

Measures queries/sec for 1k mixed conditional queries on the paper model
under each inference backend, against the seed baseline (a plain
:class:`QueryEngine` that re-derives marginals — and re-materializes the
joint — on every call, which is exactly what ``kb.query`` did before the
session API).  Shape criteria: batched dense evaluation is at least 5x the
sequential seed path, and both backends agree to machine precision.
"""

import time

import pytest

from repro.api.session import QuerySession
from repro.core.query import QueryEngine
from repro.discovery.engine import discover

N_QUERIES = 1000


@pytest.fixture(scope="module")
def model():
    from repro.eval.paper import paper_table

    return discover(paper_table()).model


@pytest.fixture(scope="module")
def queries(model):
    """1k mixed conditional queries cycling over realistic traffic shapes."""
    schema = model.schema
    pool = []
    for attribute in schema:
        for value in attribute.values:
            target = f"{attribute.name}={value}"
            pool.append(target)
            for other in schema:
                if other.name == attribute.name:
                    continue
                for evidence_value in other.values:
                    pool.append(
                        f"{target} | {other.name}={evidence_value}"
                    )
    return [pool[i % len(pool)] for i in range(N_QUERIES)]


def test_bench_batch_dense(benchmark, model, queries):
    session = QuerySession(model, backend="dense")
    results = benchmark(session.batch, queries)
    assert len(results) == N_QUERIES
    assert all(0.0 <= p <= 1.0 for p in results)


def test_bench_batch_elimination(benchmark, model, queries):
    session = QuerySession(model, backend="elimination")
    results = benchmark(session.batch, queries)
    dense = QuerySession(model, backend="dense").batch(queries)
    assert results == pytest.approx(dense, abs=1e-12)


def test_bench_sequential_seed_baseline(benchmark, model, queries):
    """The pre-session query path: parse + dense joint per call."""
    engine = QueryEngine(model, method="dense")

    def run_all():
        return [engine.ask(text) for text in queries]

    results = benchmark(run_all)
    assert len(results) == N_QUERIES


def test_batch_speedup_over_sequential(model, queries, write_report):
    """Acceptance: batched sessions beat the seed path by >= 5x."""
    engine = QueryEngine(model, method="dense")
    start = time.perf_counter()
    sequential = [engine.ask(text) for text in queries]
    sequential_seconds = time.perf_counter() - start

    rows = [
        (
            "sequential QueryEngine (seed)",
            sequential_seconds,
            N_QUERIES / sequential_seconds,
        )
    ]
    batch_seconds = {}
    for backend in ("dense", "elimination"):
        session = QuerySession(model, backend=backend)
        start = time.perf_counter()
        batched = session.batch(queries)
        batch_seconds[backend] = time.perf_counter() - start
        assert batched == pytest.approx(sequential, rel=1e-9)
        rows.append(
            (
                f"QuerySession.batch ({backend})",
                batch_seconds[backend],
                N_QUERIES / batch_seconds[backend],
            )
        )

    speedup = sequential_seconds / batch_seconds["dense"]
    lines = [
        f"BATCH QUERY THROUGHPUT ({N_QUERIES} mixed conditional queries)",
        "",
        f"{'path':<36} {'seconds':>9} {'queries/sec':>12}",
    ]
    for label, seconds, rate in rows:
        lines.append(f"{label:<36} {seconds:>9.4f} {rate:>12.0f}")
    lines.append("")
    lines.append(f"dense batch speedup over sequential: {speedup:.1f}x")
    write_report("batch_query.txt", "\n".join(lines))

    assert speedup >= 5.0, (
        f"batched dense evaluation only {speedup:.1f}x faster than the "
        f"sequential seed path (need >= 5x)"
    )
