"""E3 — Table 1: the second-order MML significance scan.

Benchmarks scanning all 16 second-order cells at the independence model.
Shape criteria: every sign of m2 − m1 matches the paper, the top-3 ranking
matches, and the numeric deltas land within ±0.08 of the printed values.
"""

from repro.baselines.independence import independence_model
from repro.eval.harness import reproduce_table1
from repro.maxent.constraints import ConstraintSet
from repro.significance.mml import scan_order


def test_bench_table1_scan(benchmark, table, write_report):
    model = independence_model(table)
    constraints = ConstraintSet.first_order(table)

    tests = benchmark(scan_order, table, model, 2, constraints)

    assert len(tests) == 16
    comparisons, text = reproduce_table1()
    assert all(c.sign_match for c in comparisons)
    for c in comparisons:
        assert abs(c.ours_delta - c.paper_delta) < 0.08
    top3 = sorted(comparisons, key=lambda c: c.ours_delta)[:3]
    assert {(c.subset, c.values) for c in top3} == {
        (("SMOKING", "CANCER"), (0, 0)),
        (("SMOKING", "FAMILY_HISTORY"), (0, 0)),
        (("SMOKING", "FAMILY_HISTORY"), (0, 1)),
    }
    write_report("table1.txt", text)
