"""E7 — Figures 5/6 (Appendix A): original form → triples → cell sums.

Benchmarks the full conversion chain on a sample drawn from the paper's
distribution.  Shape criterion: the triples' column sums reproduce the
contingency cells ("the summations of the triples are the values of the
cells in Figure 1"), and both representations round-trip.
"""

import numpy as np

from repro.data.conversion import (
    dataset_to_indicator_matrix,
    dataset_to_tuple_matrix,
    indicator_matrix_to_dataset,
    tuple_column_labels,
    tuple_matrix_to_contingency,
)
from repro.data.dataset import Dataset
from repro.eval.tables import format_table


def test_bench_appendix_a_conversion(benchmark, table, rng, write_report):
    schema = table.schema
    dataset = Dataset.from_joint(schema, table.probabilities(), 3428, rng)

    def chain():
        indicator = dataset_to_indicator_matrix(dataset)
        recovered = indicator_matrix_to_dataset(schema, indicator)
        tuples = dataset_to_tuple_matrix(recovered)
        return tuple_matrix_to_contingency(schema, tuples)

    rebuilt = benchmark(chain)

    assert rebuilt == dataset.to_contingency()
    labels = tuple_column_labels(schema)
    sums = rebuilt.counts.ravel()
    text = "FIGURE 6: SAMPLE DATA IN TRIPLES FORM (column sums)\n\n" + (
        format_table(["column", "sum"], list(zip(labels, sums.tolist())))
    )
    write_report("appendix_a.txt", text)


def test_bench_appendix_a_indicator_only(benchmark, table, rng):
    dataset = Dataset.from_joint(
        table.schema, table.probabilities(), 3428, rng
    )
    matrix = benchmark(dataset_to_indicator_matrix, dataset)
    assert matrix.shape == (3428, 7)
    assert np.array_equal(
        matrix.sum(axis=1), np.full(3428, 3)
    )  # one mark per attribute
