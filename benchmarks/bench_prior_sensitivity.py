"""A8 — sensitivity to the hypothesis prior p(H2').

The paper (Eq 63 discussion): p(H2') = .6 shifts m2 − m1 by −.40 and
p(H2') = .8 by −1.39 — stronger prior belief in remaining constraints
makes the test more eager.  Shape criteria: the adopted-constraint count
is non-decreasing in p(H2'), the first adoption at the default prior is
the smoker∧cancel cell, and the printed shifts match the paper's numbers.
"""

import pytest

from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.eval.harness import prior_sensitivity_experiment
from repro.significance.mml import MMLPriors


def test_bench_prior_sensitivity(benchmark, table, write_report):
    rows, text = benchmark(prior_sensitivity_experiment)

    counts = [row.num_constraints for row in rows]
    assert counts == sorted(counts)  # monotone in p(H2')
    default = rows[0]
    assert default.p_h2_prime == 0.5
    assert default.first_key == (("SMOKING", "CANCER"), (0, 0))
    # The paper's printed shifts.
    assert rows[1].prior_shift == pytest.approx(-0.405, abs=0.01)
    assert rows[2].prior_shift == pytest.approx(-1.386, abs=0.01)
    write_report("a8_prior_sensitivity.txt", text)


def test_bench_prior_eager_tail(benchmark, table):
    """At p(H2') = .8 every borderline Table-1 cell flips significant
    (the paper: 'only changes the sign ... for one of the values' at the
    first scan — over the whole run the eager prior can only add)."""
    eager = DiscoveryConfig(priors=MMLPriors(p_h1=0.2, p_h2_prime=0.8))

    result = benchmark(discover, table, eager)

    baseline = discover(table)
    assert len(result.found) >= len(baseline.found)
