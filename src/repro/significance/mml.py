"""Minimum-message-length significance test (Eqs 35-47).

For every not-yet-constrained marginal cell the paper compares two
hypotheses:

- **H1**: the current maxent model already predicts the cell; message
  length ``m1 = -ln p(H1) - ln Binomial(N_obs; N, p_model)`` (Eq 46).
- **H2**: this cell is the next significant constraint; message length
  ``m2 = -ln p(H2') + ln(cells at this order - M) + ln(range + 1)``
  (Eq 45), where the final term encodes the observed value as uniform over
  its feasible integer range 0..range (Eq 41).  When the cell's value is
  already *determined* by marginals and previously found significant cells,
  ``p(D|H2) = 1`` and the term vanishes.

The cell is significant iff ``m2 - m1 < 0`` (Eq 47), and
``exp(m2 - m1)`` is the posterior likelihood ratio ``p(H1|D)/p(H2|D)``
reported in Table 1's last column.

The feasible range of a cell (Eq 41) is the minimum, over every known
marginal containing the cell, of that marginal's count minus the counts of
already-significant same-subset cells sharing the marginal.  "Known"
marginals are all first-order margins plus any lower-order cells previously
found significant.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import log

from repro.data.contingency import ContingencyTable
from repro.exceptions import DataError
from repro.maxent.constraints import ConstraintSet
from repro.maxent.model import MaxEntModel
from repro.significance.binomial import (
    binomial_mean,
    binomial_sd,
    log_binomial_pmf,
    standard_score,
)
from repro.significance.result import CellTest


@dataclass(frozen=True)
class MMLPriors:
    """Hypothesis priors (Eqs 38-39, 63).

    The paper's default takes ``p(H2') = p(H1)`` so the prior terms cancel
    in ``m2 - m1``; it also discusses 0.6 and 0.8 (which shift the
    difference by -0.40 and -1.39 respectively).
    """

    p_h1: float = 0.5
    p_h2_prime: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.p_h1 < 1.0:
            raise DataError(f"p_h1 must be in (0, 1), got {self.p_h1}")
        if not 0.0 < self.p_h2_prime < 1.0:
            raise DataError(
                f"p_h2_prime must be in (0, 1), got {self.p_h2_prime}"
            )

    @classmethod
    def equal(cls) -> "MMLPriors":
        return cls(0.5, 0.5)

    @property
    def prior_shift(self) -> float:
        """``ln p(H1) - ln p(H2')`` — the prior contribution to m2 - m1."""
        return log(self.p_h1) - log(self.p_h2_prime)


def feasible_range(
    table: ContingencyTable,
    attributes: tuple[str, ...],
    values: tuple[int, ...],
    constraints: ConstraintSet,
) -> tuple[int, bool]:
    """Eq 41: the cell's available integer range and determination flag.

    Returns ``(range, determined)``.  Under H2 the cell's chance value is
    uniform over ``0..range``; when ``determined`` is True every sibling
    cell along some containing marginal is already significant, so the
    value is forced and ``p(D|H2) = 1``.
    """
    schema = table.schema
    order = len(attributes)
    same_subset = [
        cell
        for cell in constraints.cells
        if cell.attributes == attributes and cell.values != values
    ]
    position = {name: i for i, name in enumerate(attributes)}

    bounds: list[int] = []
    determined = False
    for size in range(1, order):
        for combo in combinations(range(order), size):
            t_names = tuple(attributes[i] for i in combo)
            t_values = tuple(values[i] for i in combo)
            if size == 1:
                base = table.count({t_names[0]: t_values[0]})
            elif constraints.has_cell((t_names, t_values)):
                base = table.count(dict(zip(t_names, t_values)))
            else:
                continue
            sharing = [
                cell
                for cell in same_subset
                if all(
                    cell.values[position[name]] == value
                    for name, value in zip(t_names, t_values)
                )
            ]
            shared_count = sum(
                table.count(dict(zip(cell.attributes, cell.values)))
                for cell in sharing
            )
            bounds.append(base - shared_count)
            siblings = 1
            for i in range(order):
                if i not in combo:
                    siblings *= schema.attribute(attributes[i]).cardinality
            siblings -= 1
            if len(sharing) >= siblings:
                determined = True

    cell_range = max(0, min(bounds)) if bounds else table.total
    return cell_range, determined


def evaluate_cell(
    table: ContingencyTable,
    model: MaxEntModel,
    attributes: tuple[str, ...],
    values: tuple[int, ...],
    constraints: ConstraintSet,
    priors: MMLPriors | None = None,
    candidate_pool: int | None = None,
    predicted: float | None = None,
) -> CellTest:
    """Run the MML test on one marginal cell; returns one Table-1 row.

    Parameters
    ----------
    candidate_pool:
        The ``(number of cells at this order − M)`` count of Eq 40/45; when
        omitted it is computed from the table and the constraints found at
        this cell's order.
    predicted:
        The cell's probability under ``model``; when omitted it is computed
        via :meth:`~repro.maxent.model.MaxEntModel.probability`.  Callers
        scanning many cells pass it from a shared marginal so the dense
        joint is materialized once per scan, not once per cell.
    """
    priors = priors or MMLPriors.equal()
    order = len(attributes)
    if candidate_pool is None:
        found_at_order = len(constraints.cells_of_order(order))
        candidate_pool = table.num_cells_of_order(order) - found_at_order
    if candidate_pool < 1:
        raise DataError(
            f"candidate pool at order {order} is {candidate_pool}; "
            f"no cells remain to choose from"
        )

    total = table.total
    observed = table.count(dict(zip(attributes, values)))
    if predicted is None:
        predicted = model.probability(dict(zip(attributes, values)))
    predicted = min(max(predicted, 0.0), 1.0)

    m1 = -log(priors.p_h1) - log_binomial_pmf(observed, total, predicted)
    cell_range, determined = feasible_range(
        table, attributes, values, constraints
    )
    m2 = -log(priors.p_h2_prime) + log(candidate_pool)
    if not determined:
        m2 += log(cell_range + 1)

    return CellTest(
        attributes=attributes,
        values=values,
        observed=observed,
        predicted_probability=predicted,
        mean=binomial_mean(total, predicted),
        sd=binomial_sd(total, predicted),
        num_sd=standard_score(observed, total, predicted),
        m1=m1,
        m2=m2,
        determined=determined,
        feasible_range=cell_range,
    )


def scan_order(
    table: ContingencyTable,
    model: MaxEntModel,
    order: int,
    constraints: ConstraintSet,
    priors: MMLPriors | None = None,
) -> list[CellTest]:
    """Evaluate every not-yet-constrained cell at the given order.

    The returned list covers all attribute subsets of the order (the
    paper's "16 second order cells" for the smoking example), excluding
    cells already adopted as constraints.  Since the kernel layer landed
    this delegates to the vectorized
    :class:`~repro.significance.kernels.OrderScanKernel`, whose output is
    bit-identical to the scalar reference
    (:func:`reference_scan_order`); callers that scan repeatedly between
    adoptions (the discovery engine) hold a kernel directly so data-side
    statistics survive across rounds.
    """
    from repro.significance.kernels import OrderScanKernel

    return OrderScanKernel(table, order, constraints, priors).scan(model)


def reference_scan_order(
    table: ContingencyTable,
    model: MaxEntModel,
    order: int,
    constraints: ConstraintSet,
    priors: MMLPriors | None = None,
) -> list[CellTest]:
    """The scalar oracle scan: one :func:`evaluate_cell` per candidate.

    This is the original cell-by-cell implementation, kept as the
    reference the vectorized kernel is property-tested against (and as
    the baseline the scan benchmark measures).  The model's dense joint
    is still materialized once for the whole scan and marginalized per
    subset — the same numbers
    :meth:`~repro.maxent.model.MaxEntModel.probability` would produce
    cell by cell, at a fraction of the cost.
    """
    priors = priors or MMLPriors.equal()
    found_at_order = len(constraints.cells_of_order(order))
    pool = table.num_cells_of_order(order) - found_at_order
    schema = table.schema
    joint = model.joint()
    marginals: dict[tuple[str, ...], object] = {}
    tests = []
    for subset, values, _count in table.cells_of_order(order):
        if constraints.has_cell((subset, values)):
            continue
        marginal = marginals.get(subset)
        if marginal is None:
            drop = schema.drop_axes(subset)
            marginal = joint.sum(axis=drop) if drop else joint
            marginals[subset] = marginal
        tests.append(
            evaluate_cell(
                table,
                model,
                subset,
                values,
                constraints,
                priors,
                pool,
                predicted=float(marginal[values]),
            )
        )
    return tests


def most_significant(tests: list[CellTest]) -> CellTest | None:
    """The significant test with the most negative ``m2 - m1``, if any."""
    significant = [t for t in tests if t.significant]
    if not significant:
        return None
    return min(significant, key=lambda t: t.delta)
