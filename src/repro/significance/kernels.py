"""Vectorized discovery-scan kernels: whole-order MML evaluation.

The discovery loop (Figure 3) rescans every candidate cell after every
adoption, which makes the scan the system's hottest path.  The scalar
reference (:func:`repro.significance.mml.evaluate_cell` /
:func:`repro.significance.mml.reference_scan_order`) walks cells one by
one through dict-based counts and an O(constraints × subsets) feasible
range; :class:`OrderScanKernel` evaluates an entire order's candidate pool
with numpy array ops instead, splitting each test into

- **data-side statistics** — observed marginal counts (from
  :meth:`~repro.data.contingency.ContingencyTable.marginal_counts`'s cached
  count tensors), ``ln C(N, k)`` coefficient arrays, and the Eq-41
  feasible-range / determined tables built from lower-order count tensors
  with constraint masks.  These depend only on the table and the constraint
  set, so they are cached across adoptions within an order and selectively
  invalidated when a constraint lands in a sharing subset
  (:meth:`OrderScanKernel.notify_adopted`);
- **model-side statistics** — predicted probabilities from one joint
  marginalization per subset and the H1 message lengths, recomputed per
  scan.

**Bit-identity contract.**  The kernel's decisions are bit-identical to
the scalar reference: every float in every emitted
:class:`~repro.significance.result.CellTest` equals the scalar path's
value exactly, so the greedy argmax can never flip on a near-tie.  This
works because all transcendentals go through the same ``math.log`` /
``math.lgamma`` libm calls the scalar path uses (numpy's SIMD ``log``
differs in the last ulp), evaluated once per distinct integer count or
range, while products, sums, ``sqrt`` and comparisons — which IEEE-754
fixes exactly — run as array ops.  Benchmarks and property tests enforce
the contract (``benchmarks/bench_discovery_scan.py``,
``tests/significance/test_kernels.py``).

:class:`DiscoveryProfile` is the instrumentation the kernels expose: the
engine aggregates per-stage wall-clock (scan / fit / verify) into it, and
``repro discover --profile`` renders it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from math import log

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.exceptions import DataError
from repro.maxent.constraints import CellKey, ConstraintSet
from repro.maxent.model import MaxEntModel
from repro.significance.binomial import (
    log_binomial_coefficients,
    log_binomial_pmf_array,
)
from repro.significance.result import CellTest

__all__ = [
    "DiscoveryProfile",
    "OrderScanKernel",
    "SubsetStats",
    "tests_from_columns",
]

#: One subset's scan output in columnar form: ``(names, candidate_values,
#: observed, predicted, mean, sd, num_sd, m1, m2, determined,
#: feasible_range)`` — plain tuples and lists of primitives, so shipping a
#: scan across a process boundary costs a fraction of pickling CellTest
#: objects.  :func:`tests_from_columns` rebuilds the exact CellTest list.
SubsetColumns = tuple


def tests_from_columns(columns: list[SubsetColumns]) -> list[CellTest]:
    """Materialize the :class:`CellTest` list a columnar scan encodes.

    This is the same construction loop :meth:`OrderScanKernel.scan` runs,
    applied to the same lists — bit-identity holds by construction.
    Float columns may arrive as ndarrays (the shared-memory transport
    keeps them in array form); ``tolist()`` is an exact float64 → float
    conversion, so the emitted values are bit-identical either way.
    """
    tests: list[CellTest] = []
    for (
        names,
        candidate_values,
        observed,
        predicted,
        mean,
        sd,
        num_sd,
        m1,
        m2,
        determined,
        feasible,
    ) in columns:
        if isinstance(predicted, np.ndarray):
            predicted = predicted.tolist()
            mean = mean.tolist()
            sd = sd.tolist()
            num_sd = num_sd.tolist()
            m1 = m1.tolist()
            m2 = m2.tolist()
        for i, values in enumerate(candidate_values):
            tests.append(
                CellTest(
                    attributes=names,
                    values=values,
                    observed=observed[i],
                    predicted_probability=predicted[i],
                    mean=mean[i],
                    sd=sd[i],
                    num_sd=num_sd[i],
                    m1=m1[i],
                    m2=m2[i],
                    determined=determined[i],
                    feasible_range=feasible[i],
                )
            )
    return tests


@dataclass
class SubsetStats:
    """Data-side statistics of one attribute subset's candidate cells.

    All arrays are compressed to the candidate cells (not-yet-constrained),
    in the same C-order the scalar scan visits them, so model-side work is
    a fancy-index away.  Valid until a constraint lands in this subset or
    in a contained lower-order subset.
    """

    names: tuple[str, ...]
    shape: tuple[int, ...]
    #: Joint-tensor axes summed away to marginalize onto this subset.
    drop_axes: tuple[int, ...]
    #: Candidate value tuples, in ``np.ndindex`` (C) order.
    candidate_values: list[tuple[int, ...]]
    #: Positions of the candidates in the raveled subset marginal.
    flat_positions: np.ndarray
    observed: np.ndarray
    observed_float: np.ndarray
    observed_list: list[int]
    #: ``ln C(N, k)`` per candidate (the data term's constant part).
    log_coeff: np.ndarray
    #: Eq-41 feasible range per candidate.
    feasible_list: list[int]
    determined_list: list[bool]
    #: H2's uniform-encoding term per candidate: ``ln(range + 1)``, or 0
    #: where the cell is determined (Eq 41's ELSE branch).
    h2_range_term: np.ndarray
    #: Monotonic per-kernel build counter.  Identifies this exact build of
    #: the data-side columns, so a transport can skip re-shipping them
    #: when the receiver already holds this version (they change only on
    #: invalidation, not per scan).
    version: int = 0


@dataclass
class DiscoveryProfile:
    """Per-stage wall-clock of a discovery run (scan / fit / verify).

    ``scan`` covers candidate-pool evaluations that adopted a constraint;
    ``verify`` covers the terminating scan of each order (the one that
    confirmed nothing significant) and a rerun's per-constraint
    re-verification tests; ``fit`` covers the solver.  Rendered by
    ``repro discover --profile``.

    Alongside the stage totals, ``*_call_seconds`` keep the individual
    call durations (one entry per scan/fit/verify call, in call order) so
    per-stage latency percentiles are computable —
    :meth:`stage_percentile_ms` is what the scenario fleet's latency SLOs
    read.

    ``scan_paths`` records, per scanned order, which scan implementation
    the engine chose (``"serial"`` kernel, ``"sharded"`` executor, or the
    ``"reference"`` oracle) and the candidate-pool size that drove the
    choice — the audit trail for the serial-vs-sharded auto-selection.

    Sharded orders additionally record what the transport moved:
    ``bytes_pickled`` / ``bytes_shared`` are tensor-payload bytes shipped
    through pipes vs shared-memory segments, ``broadcasts_skipped`` counts
    joint rebroadcasts amortized away by an unchanged model fingerprint,
    and ``attach_ns`` is cumulative worker-side segment attach time.  The
    run totals live in the flat fields; ``transports`` keeps the same
    counters per sharded order.  Rendered by ``repro discover --profile``.
    """

    scan_seconds: float = 0.0
    scan_calls: int = 0
    scan_cells: int = 0
    verify_seconds: float = 0.0
    verify_calls: int = 0
    verify_cells: int = 0
    fit_seconds: float = 0.0
    fit_calls: int = 0
    fit_sweeps: int = 0
    scan_paths: list[dict] = field(default_factory=list)
    scan_call_seconds: list[float] = field(default_factory=list)
    verify_call_seconds: list[float] = field(default_factory=list)
    fit_call_seconds: list[float] = field(default_factory=list)
    bytes_pickled: int = 0
    bytes_shared: int = 0
    broadcasts_total: int = 0
    broadcasts_skipped: int = 0
    attach_ns: int = 0
    transports: list[dict] = field(default_factory=list)

    def record_scan_path(self, order: int, path: str, cells: int) -> None:
        self.scan_paths.append(
            {"order": order, "path": path, "cells": cells}
        )

    def add_transport(
        self, order: int, transport: str, counters: dict
    ) -> None:
        """Fold one sharded order's transport counters into the profile."""
        self.bytes_pickled += counters.get("bytes_pickled", 0)
        self.bytes_shared += counters.get("bytes_shared", 0)
        self.broadcasts_total += counters.get("broadcasts_total", 0)
        self.broadcasts_skipped += counters.get("broadcasts_skipped", 0)
        self.attach_ns += counters.get("attach_ns", 0)
        self.transports.append(
            {"order": order, "transport": transport, **counters}
        )

    def add_scan(self, seconds: float, cells: int) -> None:
        self.scan_seconds += seconds
        self.scan_calls += 1
        self.scan_cells += cells
        self.scan_call_seconds.append(seconds)

    def add_verify(self, seconds: float, cells: int) -> None:
        self.verify_seconds += seconds
        self.verify_calls += 1
        self.verify_cells += cells
        self.verify_call_seconds.append(seconds)

    def add_fit(self, seconds: float, sweeps: int) -> None:
        self.fit_seconds += seconds
        self.fit_calls += 1
        self.fit_sweeps += sweeps
        self.fit_call_seconds.append(seconds)

    @property
    def total_seconds(self) -> float:
        return self.scan_seconds + self.verify_seconds + self.fit_seconds

    def stage_samples(self, stage: str) -> list[float]:
        """Per-call wall-clock samples (seconds) for one stage.

        ``stage`` is ``"scan"``, ``"fit"``, or ``"verify"``; the samples
        are the individual call durations folded into the stage totals,
        in call order — the population the latency-SLO percentiles are
        computed over.
        """
        try:
            return {
                "scan": self.scan_call_seconds,
                "fit": self.fit_call_seconds,
                "verify": self.verify_call_seconds,
            }[stage]
        except KeyError:
            raise ValueError(
                f"unknown profile stage {stage!r}; "
                f"expected scan, fit, or verify"
            ) from None

    def stage_percentile_ms(self, stage: str, q: float) -> float:
        """Nearest-rank percentile of one stage's call latencies, in ms.

        Returns 0.0 when the stage recorded no calls (an order-0 run or a
        loaded result), so SLO checks treat an idle stage as trivially
        within budget.
        """
        ordered = sorted(self.stage_samples(stage))
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return 1e3 * ordered[rank]

    def rows(self) -> list[list[str]]:
        """Table rows (stage, calls, work, seconds, share) for rendering."""
        total = self.total_seconds or 1.0
        rows = []
        for stage, seconds, calls, work in (
            ("scan", self.scan_seconds, self.scan_calls,
             f"{self.scan_cells} cells"),
            ("fit", self.fit_seconds, self.fit_calls,
             f"{self.fit_sweeps} sweeps"),
            ("verify", self.verify_seconds, self.verify_calls,
             f"{self.verify_cells} cells"),
        ):
            rows.append(
                [stage, str(calls), work, f"{seconds:.4f}",
                 f"{100.0 * seconds / total:.1f}%"]
            )
        return rows


class OrderScanKernel:
    """Array-native evaluation of one order's whole candidate pool.

    One kernel serves one ``(table, order, constraints)`` triple across the
    scan-adopt-refit loop: the engine calls :meth:`scan` once per
    adoption round and :meth:`notify_adopted` after each adoption, so
    data-side statistics survive across rounds for every subset the new
    constraint does not touch.

    The emitted :class:`~repro.significance.result.CellTest` list is
    bit-identical to
    :func:`repro.significance.mml.reference_scan_order` — same cells, same
    order, same floats (see the module docstring).
    """

    def __init__(
        self,
        table: ContingencyTable,
        order: int,
        constraints: ConstraintSet,
        priors=None,
        subsets=None,
    ):
        from repro.significance.mml import MMLPriors

        self.table = table
        self.order = order
        self.constraints = constraints
        self.priors = priors or MMLPriors.equal()
        self.schema = table.schema
        self.total = table.total
        all_subsets = table.subsets_of_order(order)
        if subsets is None:
            self.subsets = all_subsets
        else:
            # A shard of the order's subsets (the parallel executor's unit
            # of work).  Candidate-pool accounting below stays GLOBAL —
            # Eq 45's ln(cells at order − M) counts the whole order, not
            # the shard — which is what keeps a sharded scan's m2 values
            # bit-identical to the serial path's.
            subsets = [tuple(subset) for subset in subsets]
            known = set(all_subsets)
            unknown = [subset for subset in subsets if subset not in known]
            if unknown:
                raise DataError(
                    f"subsets {unknown} are not order-{order} subsets of "
                    f"the table schema"
                )
            self.subsets = subsets
        self._num_cells_at_order = table.num_cells_of_order(order)
        self._stats: dict[tuple[str, ...], SubsetStats] = {}
        self._stats_builds = 0
        # Exposed instrumentation (aggregated into DiscoveryProfile by the
        # engine; also readable directly after standalone scans).
        self.scan_calls = 0
        self.cells_evaluated = 0
        self.last_scan_seconds = 0.0
        self.total_scan_seconds = 0.0

    # -- cache management ---------------------------------------------------------

    def invalidate(self) -> None:
        """Drop all cached data-side statistics."""
        self._stats.clear()

    def notify_adopted(self, key: CellKey) -> None:
        """Selectively invalidate after ``key`` joined the constraint set.

        A new constraint changes the candidate mask and the Eq-41 sibling
        terms of its own subset; a new *lower-order* constraint changes the
        feasible bounds of every scanned subset containing it.  Subsets
        sharing no attributes with the constraint keep their statistics.
        """
        names = key[0]
        if len(names) > self.order:
            return
        if len(names) == self.order:
            self._stats.pop(names, None)
            return
        contained = set(names)
        for subset in list(self._stats):
            if contained <= set(subset):
                self._stats.pop(subset, None)

    def stats_version(self, names: tuple[str, ...]) -> int:
        """Version of the cached data-side statistics for ``names`` (0 when
        not built).  Bumps exactly when the columns' data-side content can
        have changed, so transports key re-ship decisions on it."""
        stats = self._stats.get(names)
        return 0 if stats is None else stats.version

    # -- scanning -----------------------------------------------------------------

    def scan(
        self, model: MaxEntModel | None, joint: np.ndarray | None = None
    ) -> list[CellTest]:
        """Evaluate every candidate cell at this order against ``model``.

        Equivalent to the scalar reference scan: one joint
        materialization, one marginalization per subset, then pure array
        arithmetic over the cached data-side statistics.

        ``joint`` lets a caller that already materialized the model's
        joint (the sharded executor broadcasts it once per scan instead
        of shipping — and re-normalizing — the model in every worker)
        hand it in directly; ``model`` may then be None.
        """
        columns = self.scan_columns(model, joint)
        start = time.perf_counter()
        tests = tests_from_columns(columns)
        construction = time.perf_counter() - start
        self.last_scan_seconds += construction
        self.total_scan_seconds += construction
        return tests

    def scan_columns(
        self,
        model: MaxEntModel | None,
        joint: np.ndarray | None = None,
        float_arrays: bool = False,
    ) -> list[SubsetColumns]:
        """The scan in columnar form: one tuple of lists per subset.

        Everything :meth:`scan` computes, minus the
        :class:`~repro.significance.result.CellTest` construction — the
        shape the sharded executor ships across process boundaries
        (pickling lists of primitives is several times cheaper than
        pickling dataclass instances) and materializes lazily via
        :func:`tests_from_columns`.

        ``float_arrays=True`` keeps the six float columns as float64
        ndarrays instead of converting them to lists — the form the
        shared-memory transport writes into output slabs without ever
        constructing per-cell Python floats.  ``tolist()`` is exact, so
        both forms decode to bit-identical CellTests.
        """
        start = time.perf_counter()
        constraints = self.constraints
        order = self.order
        n = self.total
        found_at_order = len(constraints.cells_of_order(order))
        pool = self._num_cells_at_order - found_at_order
        m1_base = -log(self.priors.p_h1)
        m2_base: float | None = None
        if joint is None:
            if model is None:
                raise DataError("scan needs a model or a precomputed joint")
            joint = model.joint()
        columns: list[SubsetColumns] = []
        cells = 0
        for names in self.subsets:
            stats = self._stats.get(names)
            if stats is None:
                stats = self._build_stats(names)
                self._stats_builds += 1
                stats.version = self._stats_builds
                self._stats[names] = stats
            if not stats.candidate_values:
                continue
            if pool < 1:
                raise DataError(
                    f"candidate pool at order {order} is {pool}; "
                    f"no cells remain to choose from"
                )
            if m2_base is None:
                m2_base = -log(self.priors.p_h2_prime) + log(pool)

            # Model-side: one marginalization per subset, then arrays.
            drop = stats.drop_axes
            marginal = joint.sum(axis=drop) if drop else joint
            predicted = marginal.ravel()[stats.flat_positions]
            np.minimum(
                np.maximum(predicted, 0.0, out=predicted), 1.0, out=predicted
            )
            lbp = log_binomial_pmf_array(
                stats.observed, n, predicted, log_coefficients=stats.log_coeff
            )
            m1 = m1_base - lbp
            m2 = m2_base + stats.h2_range_term
            observed_float = stats.observed_float
            mean = n * predicted
            sd = np.sqrt(n * predicted * (1.0 - predicted))
            with np.errstate(divide="ignore", invalid="ignore"):
                num_sd = (observed_float - mean) / sd
            zero_sd = sd == 0.0
            if zero_sd.any():
                num_sd[zero_sd] = np.where(
                    observed_float[zero_sd] == mean[zero_sd], 0.0, np.inf
                )

            cells += len(stats.candidate_values)
            if float_arrays:
                floats = (predicted, mean, sd, num_sd, m1, m2)
            else:
                floats = (
                    predicted.tolist(),
                    mean.tolist(),
                    sd.tolist(),
                    num_sd.tolist(),
                    m1.tolist(),
                    m2.tolist(),
                )
            columns.append(
                (
                    names,
                    stats.candidate_values,
                    stats.observed_list,
                    *floats,
                    stats.determined_list,
                    stats.feasible_list,
                )
            )
        elapsed = time.perf_counter() - start
        self.scan_calls += 1
        self.cells_evaluated += cells
        self.last_scan_seconds = elapsed
        self.total_scan_seconds += elapsed
        return columns

    # -- data-side construction ---------------------------------------------------

    def _build_stats(self, names: tuple[str, ...]) -> SubsetStats:
        schema = self.schema
        shape = tuple(schema.attribute(n).cardinality for n in names)
        drop_axes = schema.drop_axes(names)
        observed_full = self.table.marginal_counts(names)
        mask = np.ones(shape, dtype=bool)
        for cell in self.constraints.cells_of_order(self.order):
            if cell.attributes == names:
                mask[cell.values] = False
        feasible_full, determined_full = self._feasible_tables(
            names, shape, observed_full
        )
        flat_positions = np.flatnonzero(mask.ravel())
        candidate_values = [
            tuple(int(v) for v in index) for index in np.argwhere(mask)
        ]
        observed = observed_full.ravel()[flat_positions]
        feasible = feasible_full.ravel()[flat_positions]
        determined = determined_full.ravel()[flat_positions]
        feasible_list = feasible.tolist()
        # One math.log per distinct range keeps bit-identity with the
        # scalar ``log(cell_range + 1)`` at O(distinct) cost.
        log_by_range = {
            value: log(value + 1) for value in np.unique(feasible).tolist()
        }
        log_range = np.array(
            [log_by_range[value] for value in feasible_list], dtype=float
        )
        return SubsetStats(
            names=names,
            shape=shape,
            drop_axes=drop_axes,
            candidate_values=candidate_values,
            flat_positions=flat_positions,
            observed=observed,
            observed_float=observed.astype(float),
            observed_list=observed.tolist(),
            log_coeff=log_binomial_coefficients(self.total, observed),
            feasible_list=feasible_list,
            determined_list=determined.tolist(),
            h2_range_term=np.where(determined, 0.0, log_range),
        )

    def _feasible_tables(
        self,
        names: tuple[str, ...],
        shape: tuple[int, ...],
        observed_full: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eq-41 range and determined tables for a whole subset at once.

        Mirrors :func:`repro.significance.mml.feasible_range` for every
        candidate cell of the subset: per contributing lower-order combo,
        the bound is the combo's marginal count minus the counts of
        already-significant same-subset cells sharing the projection, and
        a cell is determined when some combo's sharing cells cover all its
        siblings.  Pure integer arithmetic — exact by construction.
        """
        order = len(names)
        constraints = self.constraints
        same = [c for c in constraints.cells if c.attributes == names]
        bounds = np.full(shape, self.total, dtype=np.int64)
        determined = np.zeros(shape, dtype=bool)
        for size in range(1, order):
            for combo in combinations(range(order), size):
                t_names = tuple(names[i] for i in combo)
                t_shape = tuple(shape[i] for i in combo)
                if size == 1:
                    active = None
                else:
                    cons = [
                        c for c in constraints.cells
                        if c.attributes == t_names
                    ]
                    if not cons:
                        continue
                    active = np.zeros(t_shape, dtype=bool)
                    for c in cons:
                        active[c.values] = True
                base = self.table.marginal_counts(t_names)
                shared = np.zeros(t_shape, dtype=np.int64)
                sharing = np.zeros(t_shape, dtype=np.int64)
                for c in same:
                    projection = tuple(c.values[i] for i in combo)
                    shared[projection] += int(observed_full[c.values])
                    sharing[projection] += 1
                siblings = 1
                for i in range(order):
                    if i not in combo:
                        siblings *= shape[i]
                siblings -= 1
                broadcast_shape = tuple(
                    shape[i] if i in combo else 1 for i in range(order)
                )
                bound = (base - shared).reshape(broadcast_shape)
                det = (sharing >= siblings).reshape(broadcast_shape)
                if active is None:
                    bounds = np.minimum(bounds, bound)
                    determined |= det
                else:
                    active_full = np.broadcast_to(
                        active.reshape(broadcast_shape), shape
                    )
                    bounds = np.where(
                        active_full, np.minimum(bounds, bound), bounds
                    )
                    determined |= active_full & np.broadcast_to(det, shape)
        return np.maximum(bounds, 0), determined
