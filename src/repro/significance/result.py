"""Result records produced by significance tests."""

from __future__ import annotations

from dataclasses import dataclass
from math import exp

from repro.data.schema import Schema


@dataclass(frozen=True)
class CellTest:
    """Significance evaluation of one marginal cell (one Table-1 row).

    Attributes
    ----------
    attributes / values:
        The tested marginal cell, canonical order / value indices.
    observed:
        Observed count ``N`` of the cell.
    predicted_probability:
        Cell probability under the current model (Table 1 col 1).
    mean / sd:
        Binomial mean and standard deviation (Table 1 cols 3-4, Eqs 33-34).
    num_sd:
        ``(observed - mean) / sd`` (Table 1 col 5).
    m1 / m2:
        Message lengths of hypotheses H1 / H2 (Eqs 45-46).
    determined:
        True when the cell value is forced by marginals and previously
        significant cells (Eq 41's ELSE branch, ``p(D|H2) = 1``).
    feasible_range:
        The ``0..range`` span available to the cell under H2 (Eq 41).
    """

    attributes: tuple[str, ...]
    values: tuple[int, ...]
    observed: int
    predicted_probability: float
    mean: float
    sd: float
    num_sd: float
    m1: float
    m2: float
    determined: bool
    feasible_range: int

    @property
    def delta(self) -> float:
        """``m2 - m1``; negative means the cell is significant (Eq 47)."""
        return self.m2 - self.m1

    @property
    def significant(self) -> bool:
        """Eq 47: the observed value is statistically significant."""
        return self.delta < 0.0

    @property
    def likelihood_ratio(self) -> float:
        """``p(H1|D) / p(H2|D) = exp(m2 - m1)`` (Table 1 last column)."""
        try:
            return exp(self.delta)
        except OverflowError:
            return float("inf")

    def describe(self, schema: Schema) -> str:
        """Readable one-liner, e.g. ``N^(A,C)[smoker,no]=750 (m2-m1=-9.9)``."""
        labels = ",".join(
            schema.attribute(name).value_at(value)
            for name, value in zip(self.attributes, self.values)
        )
        names = ",".join(self.attributes)
        return (
            f"N^({names})[{labels}]={self.observed} "
            f"(m2-m1={self.delta:+.2f}{', significant' if self.significant else ''})"
        )
