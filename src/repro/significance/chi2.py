"""Classical significance tests: the baseline criterion the paper replaces.

The paper's MML test competes with the textbook approach of flagging cells
by standardized residuals or whole marginals by Pearson chi-square / G
statistics.  These are implemented here both as comparison baselines
(:mod:`repro.baselines.chi2_selector`) and as sanity cross-checks in the
test suite — a cell the MML test finds wildly significant should also carry
an extreme z-score.
"""

from __future__ import annotations

from math import erfc, sqrt

import numpy as np
from scipy import stats

from repro.data.contingency import ContingencyTable
from repro.exceptions import DataError
from repro.maxent.model import MaxEntModel
from repro.significance.binomial import standard_score


def cell_z_test(observed: int, total: int, probability: float) -> tuple[float, float]:
    """Two-sided z test of one cell count against a model probability.

    Returns ``(z, p_value)`` using the normal approximation to the
    binomial.  This is the per-cell analogue of Table 1's "#sd" column.
    """
    z = standard_score(observed, total, probability)
    if z == float("inf"):
        return z, 0.0
    p_value = erfc(abs(z) / sqrt(2.0))
    return z, p_value


def marginal_chi2(
    table: ContingencyTable, model: MaxEntModel, names: tuple[str, ...]
) -> tuple[float, int, float]:
    """Pearson chi-square of a marginal against the model's prediction.

    Returns ``(statistic, degrees of freedom, p_value)``.  Degrees of
    freedom are ``cells - 1`` (the marginal totals are fixed to N by
    normalization only; the model constraints are not subtracted — this is
    the plain goodness-of-fit comparison a classical analyst would run).
    """
    observed = table.marginal(names).astype(float)
    expected = model.marginal(names) * table.total
    return _goodness_of_fit(observed, expected, statistic="pearson")


def marginal_g2(
    table: ContingencyTable, model: MaxEntModel, names: tuple[str, ...]
) -> tuple[float, int, float]:
    """Likelihood-ratio G-squared of a marginal against the model."""
    observed = table.marginal(names).astype(float)
    expected = model.marginal(names) * table.total
    return _goodness_of_fit(observed, expected, statistic="g")


def _goodness_of_fit(
    observed: np.ndarray, expected: np.ndarray, statistic: str
) -> tuple[float, int, float]:
    observed = observed.ravel()
    expected = expected.ravel()
    if observed.shape != expected.shape:
        raise DataError("observed and expected have different shapes")
    if (expected < 0).any():
        raise DataError("expected counts must be non-negative")
    mask = expected > 0
    if (observed[~mask] > 0).any():
        return float("inf"), int(observed.size - 1), 0.0
    if statistic == "pearson":
        value = float(
            ((observed[mask] - expected[mask]) ** 2 / expected[mask]).sum()
        )
    elif statistic == "g":
        positive = mask & (observed > 0)
        ratio = observed[positive] / expected[positive]
        value = float(2.0 * (observed[positive] * np.log(ratio)).sum())
    else:
        raise DataError(f"unknown statistic {statistic!r}")
    dof = int(observed.size - 1)
    p_value = float(stats.chi2.sf(value, dof)) if dof > 0 else 1.0
    return value, dof, p_value
