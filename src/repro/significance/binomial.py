"""Binomial statistics for observed cell counts (Eqs 32-34).

The probability of observing ``N_ijk`` occurrences of a cell whose model
probability is ``p`` among ``N`` samples is binomial (Eq 32); its mean
``Np`` (Eq 33) and standard deviation ``sqrt(Np(1-p))`` (Eq 34) feed the
"number of sd's" column of Table 1, and the log-pmf is the data term of the
H1 message length (Eq 46).

Log-probabilities are computed exactly with ``lgamma`` — no normal
approximation — because the MML comparison happens deep in the binomial
tail where the approximation error is largest.

Both a scalar and an array form ship.  The array form
(:func:`log_binomial_pmf_array`) evaluates a whole candidate pool at once
for the vectorized scan kernels; it routes every transcendental through the
same ``math.lgamma`` / ``math.log`` calls as the scalar form (memoized over
the integer counts), so the two are *bit-identical* — numpy's SIMD ``log``
differs from libm in the last ulp, which would be enough to flip greedy
argmax decisions on near-ties.  The degenerate edges ``p = 0`` and
``p = 1`` are handled exactly in both forms (probability 1 on the forced
outcome, −inf elsewhere) instead of surfacing math-domain errors or the
``0 * -inf = nan`` a naive vectorization would produce.
"""

from __future__ import annotations

from math import lgamma, log, sqrt

import numpy as np

from repro.exceptions import DataError


def log_binomial_coefficient(n: int, k: int) -> float:
    """``ln C(n, k)`` computed stably via lgamma."""
    if not 0 <= k <= n:
        raise DataError(f"need 0 <= k <= n, got n={n}, k={k}")
    return lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)


def log_binomial_pmf(k: int, n: int, p: float) -> float:
    """``ln P(K = k)`` for ``K ~ Binomial(n, p)`` (log of Eq 32).

    Handles the degenerate edges ``p = 0`` and ``p = 1`` exactly
    (probability 1 on the forced outcome, −inf elsewhere).
    """
    if n < 0:
        raise DataError(f"n must be non-negative, got {n}")
    if not 0 <= k <= n:
        raise DataError(f"need 0 <= k <= n, got n={n}, k={k}")
    if not 0.0 <= p <= 1.0:
        raise DataError(f"p must be in [0, 1], got {p}")
    if p == 0.0:
        return 0.0 if k == 0 else float("-inf")
    if p == 1.0:
        return 0.0 if k == n else float("-inf")
    return (
        log_binomial_coefficient(n, k)
        + k * log(p)
        + (n - k) * log(1.0 - p)
    )


def log_binomial_coefficients(n: int, k: np.ndarray) -> np.ndarray:
    """``ln C(n, k)`` for an integer count array, bit-identical to the scalar.

    ``math.lgamma`` is evaluated once per *distinct* count (memoized), so
    the cost is O(distinct values), not O(cells) — and every entry equals
    :func:`log_binomial_coefficient` exactly, because the identical libm
    calls and the identical subtraction order are used.
    """
    k = np.asarray(k)
    if k.size == 0:
        return np.zeros(k.shape, dtype=float)
    low = int(k.min())
    high = int(k.max())
    if low < 0 or high > n:
        raise DataError(f"need 0 <= k <= n, got n={n}, k range [{low}, {high}]")
    lgn = lgamma(n + 1)
    memo = {
        value: lgn - lgamma(value + 1) - lgamma(n - value + 1)
        for value in np.unique(k).tolist()
    }
    flat = [memo[value] for value in k.ravel().tolist()]
    return np.array(flat, dtype=float).reshape(k.shape)


def log_binomial_pmf_array(
    k: np.ndarray,
    n: int,
    p: np.ndarray,
    log_coefficients: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorized ``ln P(K = k)`` for ``K ~ Binomial(n, p)``, elementwise.

    Bit-identical to calling :func:`log_binomial_pmf` on every element —
    the logs go through ``math.log`` (see the module docstring for why) —
    while the products and sums run as array ops.  ``p = 0`` and ``p = 1``
    entries take the exact degenerate limits; without the masking, numpy
    would turn ``k * log(0)`` into ``0 * -inf = nan`` at ``k = 0``.

    Parameters
    ----------
    log_coefficients:
        Optional precomputed ``ln C(n, k)`` array (the scan kernels cache
        it as a data-side statistic); defaults to
        :func:`log_binomial_coefficients`.
    """
    if n < 0:
        raise DataError(f"n must be non-negative, got {n}")
    k = np.asarray(k)
    p = np.asarray(p, dtype=float)
    if k.shape != p.shape:
        raise DataError(
            f"k shape {k.shape} does not match p shape {p.shape}"
        )
    if p.size and not (0.0 <= float(p.min()) and float(p.max()) <= 1.0):
        raise DataError("p entries must be in [0, 1]")
    if k.size and not (0 <= int(k.min()) and int(k.max()) <= n):
        # Validated here too (not only inside log_binomial_coefficients)
        # so the precomputed-coefficients path rejects out-of-range
        # counts just like the scalar form.
        raise DataError(
            f"need 0 <= k <= n, got n={n}, "
            f"k range [{int(k.min())}, {int(k.max())}]"
        )
    if log_coefficients is None:
        log_coefficients = log_binomial_coefficients(n, k)
    shape = p.shape
    k_flat = k.ravel()
    p_flat = p.ravel()
    at_zero = p_flat == 0.0
    at_one = p_flat == 1.0
    # math.log element by element keeps bit-identity with the scalar path.
    k_float = k_flat.astype(float)
    if not (at_zero.any() or at_one.any()):
        log_p = np.array([log(value) for value in p_flat.tolist()])
        log_q = np.array(
            [log(value) for value in (1.0 - p_flat).tolist()]
        )
        result = (
            log_coefficients.ravel() + k_float * log_p
        ) + (n - k_float) * log_q
        return result.reshape(shape)
    # Edge entries get a placeholder log and are overwritten with the
    # exact degenerate limits below.
    interior = np.flatnonzero(~(at_zero | at_one))
    log_p = np.zeros(p_flat.shape, dtype=float)
    log_q = np.zeros(p_flat.shape, dtype=float)
    values = p_flat[interior]
    log_p[interior] = [log(value) for value in values.tolist()]
    log_q[interior] = [log(value) for value in (1.0 - values).tolist()]
    result = (
        log_coefficients.ravel() + k_float * log_p
    ) + (n - k_float) * log_q
    result[at_zero] = np.where(k_flat[at_zero] == 0, 0.0, -np.inf)
    result[at_one] = np.where(k_flat[at_one] == n, 0.0, -np.inf)
    return result.reshape(shape)


def binomial_mean(n: int, p: float) -> float:
    """Predicted mean count ``m = Np`` (Eq 33)."""
    return n * p


def binomial_sd(n: int, p: float) -> float:
    """Predicted standard deviation ``sd = sqrt(Np(1-p))`` (Eq 34)."""
    if not 0.0 <= p <= 1.0:
        raise DataError(f"p must be in [0, 1], got {p}")
    return sqrt(n * p * (1.0 - p))


def standard_score(k: int, n: int, p: float) -> float:
    """Number of standard deviations of ``k`` from the mean (Table 1 col 5)."""
    sd = binomial_sd(n, p)
    if sd == 0.0:
        return 0.0 if k == binomial_mean(n, p) else float("inf")
    return (k - binomial_mean(n, p)) / sd
