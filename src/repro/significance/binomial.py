"""Binomial statistics for observed cell counts (Eqs 32-34).

The probability of observing ``N_ijk`` occurrences of a cell whose model
probability is ``p`` among ``N`` samples is binomial (Eq 32); its mean
``Np`` (Eq 33) and standard deviation ``sqrt(Np(1-p))`` (Eq 34) feed the
"number of sd's" column of Table 1, and the log-pmf is the data term of the
H1 message length (Eq 46).

Log-probabilities are computed exactly with ``lgamma`` — no normal
approximation — because the MML comparison happens deep in the binomial
tail where the approximation error is largest.
"""

from __future__ import annotations

from math import lgamma, log, sqrt

from repro.exceptions import DataError


def log_binomial_coefficient(n: int, k: int) -> float:
    """``ln C(n, k)`` computed stably via lgamma."""
    if not 0 <= k <= n:
        raise DataError(f"need 0 <= k <= n, got n={n}, k={k}")
    return lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)


def log_binomial_pmf(k: int, n: int, p: float) -> float:
    """``ln P(K = k)`` for ``K ~ Binomial(n, p)`` (log of Eq 32).

    Handles the degenerate edges ``p = 0`` and ``p = 1`` exactly
    (probability 1 on the forced outcome, −inf elsewhere).
    """
    if n < 0:
        raise DataError(f"n must be non-negative, got {n}")
    if not 0 <= k <= n:
        raise DataError(f"need 0 <= k <= n, got n={n}, k={k}")
    if not 0.0 <= p <= 1.0:
        raise DataError(f"p must be in [0, 1], got {p}")
    if p == 0.0:
        return 0.0 if k == 0 else float("-inf")
    if p == 1.0:
        return 0.0 if k == n else float("-inf")
    return (
        log_binomial_coefficient(n, k)
        + k * log(p)
        + (n - k) * log(1.0 - p)
    )


def binomial_mean(n: int, p: float) -> float:
    """Predicted mean count ``m = Np`` (Eq 33)."""
    return n * p


def binomial_sd(n: int, p: float) -> float:
    """Predicted standard deviation ``sd = sqrt(Np(1-p))`` (Eq 34)."""
    if not 0.0 <= p <= 1.0:
        raise DataError(f"p must be in [0, 1], got {p}")
    return sqrt(n * p * (1.0 - p))


def standard_score(k: int, n: int, p: float) -> float:
    """Number of standard deviations of ``k`` from the mean (Table 1 col 5)."""
    sd = binomial_sd(n, p)
    if sd == 0.0:
        return 0.0 if k == binomial_mean(n, p) else float("inf")
    return (k - binomial_mean(n, p)) / sd
