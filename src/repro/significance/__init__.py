"""Significance testing: MML criterion (the paper's) and classical tests."""

from repro.significance.binomial import (
    binomial_mean,
    binomial_sd,
    log_binomial_coefficients,
    log_binomial_pmf,
    log_binomial_pmf_array,
    standard_score,
)
from repro.significance.kernels import DiscoveryProfile, OrderScanKernel
from repro.significance.mml import (
    MMLPriors,
    evaluate_cell,
    feasible_range,
    most_significant,
    reference_scan_order,
    scan_order,
)
from repro.significance.result import CellTest

__all__ = [
    "CellTest",
    "DiscoveryProfile",
    "MMLPriors",
    "OrderScanKernel",
    "binomial_mean",
    "binomial_sd",
    "evaluate_cell",
    "feasible_range",
    "log_binomial_coefficients",
    "log_binomial_pmf",
    "log_binomial_pmf_array",
    "most_significant",
    "reference_scan_order",
    "scan_order",
    "standard_score",
]
