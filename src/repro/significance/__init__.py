"""Significance testing: MML criterion (the paper's) and classical tests."""

from repro.significance.binomial import (
    binomial_mean,
    binomial_sd,
    log_binomial_pmf,
    standard_score,
)
from repro.significance.mml import (
    MMLPriors,
    evaluate_cell,
    feasible_range,
    most_significant,
    scan_order,
)
from repro.significance.result import CellTest

__all__ = [
    "CellTest",
    "MMLPriors",
    "binomial_mean",
    "binomial_sd",
    "evaluate_cell",
    "feasible_range",
    "log_binomial_pmf",
    "most_significant",
    "scan_order",
    "standard_score",
]
