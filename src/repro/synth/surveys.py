"""Named synthetic survey worlds used by the examples and ablations.

Three populations, each standing in for a data source the paper motivates:

- :func:`smoking_cancer_population` — the paper's own questionnaire world
  (§"Problem Definition"), calibrated so that samples of N≈3428 look like
  Figure 1: smoking raises cancer probability, family history raises it
  independently, and passive smoking (non-smoker married to a smoker) sits
  in between.
- :func:`medical_survey_population` — a richer five-attribute health survey
  (age band, exercise, diet, blood pressure, heart disease) with planted
  two- and three-way interactions.
- :func:`telemetry_population` — a spacecraft-telemetry world (subsystem
  temperature, vibration, radiation environment, anomaly flag) standing in
  for NASA's "masses of unevaluated data from its space explorations".
"""

from __future__ import annotations

from repro.data.schema import Attribute, Schema
from repro.synth.generators import (
    PlantedCell,
    PlantedPopulation,
    build_planted_population,
)


def smoking_cancer_population() -> PlantedPopulation:
    """The paper's smoking/cancer questionnaire world.

    Margins match Figure 2 (``p_A ≈ (.38, .33, .29)``, ``p_B ≈ (.13, .87)``,
    ``p_C ≈ (.52, .48)``); planted cells push smoker∧cancer and family
    history∧cancer excesses like the data in Figure 1 exhibit.
    """
    schema = smoking_cancer_schema()
    margins = {
        "SMOKING": [0.376, 0.331, 0.293],
        "CANCER": [0.126, 0.874],
        "FAMILY_HISTORY": [0.519, 0.481],
    }
    planted = [
        PlantedCell(("SMOKING", "CANCER"), (0, 0), 1.9),
        PlantedCell(("CANCER", "FAMILY_HISTORY"), (0, 0), 1.5),
    ]
    import numpy as np

    margin_arrays = {k: np.asarray(v) for k, v in margins.items()}
    return build_planted_population(schema, margin_arrays, planted)


def smoking_cancer_schema() -> Schema:
    """The questionnaire schema of the paper's §"Problem Definition"."""
    return Schema(
        [
            Attribute(
                "SMOKING",
                ("smoker", "non-smoker", "non-smoker married to smoker"),
            ),
            Attribute("CANCER", ("yes", "no")),
            Attribute("FAMILY_HISTORY", ("yes", "no")),
        ]
    )


def medical_survey_population() -> PlantedPopulation:
    """A five-attribute health survey with known interactions.

    Planted structure: sedentary∧high blood pressure excess, older∧heart
    disease excess, and a three-way poor diet∧sedentary∧heart disease
    excess — so order-3 discovery has something real to find.
    """
    import numpy as np

    schema = Schema(
        [
            Attribute("AGE", ("under40", "40to60", "over60")),
            Attribute("EXERCISE", ("active", "sedentary")),
            Attribute("DIET", ("balanced", "poor")),
            Attribute("BLOOD_PRESSURE", ("normal", "high")),
            Attribute("HEART_DISEASE", ("no", "yes")),
        ]
    )
    margins = {
        "AGE": np.array([0.35, 0.40, 0.25]),
        "EXERCISE": np.array([0.55, 0.45]),
        "DIET": np.array([0.60, 0.40]),
        "BLOOD_PRESSURE": np.array([0.70, 0.30]),
        "HEART_DISEASE": np.array([0.85, 0.15]),
    }
    planted = [
        PlantedCell(("EXERCISE", "BLOOD_PRESSURE"), (1, 1), 2.2),
        PlantedCell(("AGE", "HEART_DISEASE"), (2, 1), 2.5),
        PlantedCell(("EXERCISE", "DIET", "HEART_DISEASE"), (1, 1, 1), 2.0),
    ]
    return build_planted_population(schema, margins, planted)


def telemetry_population() -> PlantedPopulation:
    """A spacecraft-telemetry world standing in for NASA archive data.

    Planted structure: anomalies co-occur with high vibration, and the
    high-radiation∧hot∧anomaly triple carries an extra excess — mimicking
    an environment-driven failure mode an analyst would want surfaced.
    """
    import numpy as np

    schema = Schema(
        [
            Attribute("TEMPERATURE", ("nominal", "hot", "cold")),
            Attribute("VIBRATION", ("low", "high")),
            Attribute("RADIATION", ("background", "elevated")),
            Attribute("ANOMALY", ("none", "detected")),
        ]
    )
    margins = {
        "TEMPERATURE": np.array([0.70, 0.18, 0.12]),
        "VIBRATION": np.array([0.80, 0.20]),
        "RADIATION": np.array([0.75, 0.25]),
        "ANOMALY": np.array([0.90, 0.10]),
    }
    planted = [
        PlantedCell(("VIBRATION", "ANOMALY"), (1, 1), 3.0),
        PlantedCell(("TEMPERATURE", "RADIATION", "ANOMALY"), (1, 1, 1), 2.5),
    ]
    return build_planted_population(schema, margins, planted)
