"""Synthetic populations with planted, scoreable structure."""

from repro.synth.generators import (
    PlantedCell,
    PlantedPopulation,
    build_planted_population,
    chained_population,
    drifted_margins,
    independent_population,
    near_deterministic_population,
    random_planted_population,
    recovery_score,
    skewed_population,
)
from repro.synth.surveys import (
    medical_survey_population,
    smoking_cancer_population,
    smoking_cancer_schema,
    telemetry_population,
)

__all__ = [
    "PlantedCell",
    "PlantedPopulation",
    "build_planted_population",
    "chained_population",
    "drifted_margins",
    "independent_population",
    "medical_survey_population",
    "near_deterministic_population",
    "random_planted_population",
    "recovery_score",
    "skewed_population",
    "smoking_cancer_population",
    "smoking_cancer_schema",
    "telemetry_population",
]
