"""Synthetic populations with planted, scoreable structure."""

from repro.synth.adversarial import (
    apply_label_noise,
    correlated_drifted_margins,
    duplicate_rows,
    heavy_tailed_population,
    high_order_population,
    near_singular_population,
    orbit_truth,
    wide_population,
    zipf_cardinalities,
)
from repro.synth.generators import (
    PlantedCell,
    PlantedPopulation,
    build_planted_population,
    chained_population,
    drifted_margins,
    independent_population,
    near_deterministic_population,
    random_planted_population,
    recovery_score,
    skewed_population,
)
from repro.synth.surveys import (
    medical_survey_population,
    smoking_cancer_population,
    smoking_cancer_schema,
    telemetry_population,
)

__all__ = [
    "PlantedCell",
    "PlantedPopulation",
    "apply_label_noise",
    "build_planted_population",
    "chained_population",
    "correlated_drifted_margins",
    "drifted_margins",
    "duplicate_rows",
    "heavy_tailed_population",
    "high_order_population",
    "independent_population",
    "medical_survey_population",
    "near_deterministic_population",
    "near_singular_population",
    "orbit_truth",
    "random_planted_population",
    "recovery_score",
    "skewed_population",
    "smoking_cancer_population",
    "smoking_cancer_schema",
    "telemetry_population",
    "wide_population",
    "zipf_cardinalities",
]
