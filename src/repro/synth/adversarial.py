"""Adversarial and stress-tier population generators.

The friendly generators in :mod:`repro.synth.generators` exercise the
*quality* axes of discovery — can the planted structure be found at all.
This module supplies the *scale and hostility* axes the stress tier of
the scenario fleet is built from:

- **wide worlds** — dozens of (binary) attributes, so candidate pools
  and marginalization costs grow combinatorially while the planted
  signal stays sparse;
- **high-order interactions** — order-4+ planted cells that only appear
  when the scan reaches deep orders;
- **heavy-tailed (Zipf) cardinality** — attribute cardinalities and
  value masses drawn from power laws, so a few cells carry almost all
  counts and most cells are starved;
- **correlated drift** — every attribute's margin shifts along one
  shared latent direction between stream phases, the worst case for
  drift detectors tuned to independent per-attribute movement;
- **near-singular tables** — margins pinned next to zero, producing
  slices whose expected counts vanish and contingency tables that are
  numerically almost rank-deficient;
- **corruptions** — label noise and duplicated rows applied to sampled
  datasets, diluting real associations and inflating spurious
  confidence respectively.

All generators are deterministic given their ``rng`` and return either
:class:`~repro.synth.generators.PlantedPopulation` (so conformance gates
can score recovery) or a corrupted :class:`~repro.data.dataset.Dataset`.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import DataError
from repro.synth.generators import (
    PlantedCell,
    PlantedPopulation,
    build_planted_population,
    random_margins,
    random_planted_population,
    random_schema,
)

__all__ = [
    "apply_label_noise",
    "correlated_drifted_margins",
    "duplicate_rows",
    "heavy_tailed_population",
    "high_order_population",
    "near_singular_population",
    "orbit_truth",
    "wide_population",
    "zipf_cardinalities",
]

#: Hard cap on the dense joint a wide world may materialize.  The planted
#: populations (and ContingencyTable) hold the full tensor, so width is
#: bounded by memory — 2^20 float64 cells is 8 MiB, comfortably inside a
#: CI runner while still being "dozens of attributes" at cardinality 2.
MAX_WIDE_CELLS = 1 << 20


def wide_population(
    rng: np.random.Generator,
    num_attributes: int = 12,
    num_planted: int = 3,
    strength: float = 4.0,
    order: int = 2,
) -> PlantedPopulation:
    """A world that is wide rather than deep: many binary attributes.

    Cardinality is pinned to 2 so the dense joint stays materializable
    (``2**num_attributes`` cells, capped at :data:`MAX_WIDE_CELLS`); the
    pressure lands on the scan, whose candidate pool grows as
    ``C(num_attributes, order)`` subsets, and on every per-subset
    marginalization of the wide joint.
    """
    if num_attributes < 2:
        raise DataError("a wide world needs at least two attributes")
    if 2**num_attributes > MAX_WIDE_CELLS:
        raise DataError(
            f"{num_attributes} binary attributes would materialize "
            f"{2**num_attributes} cells (cap {MAX_WIDE_CELLS})"
        )
    return random_planted_population(
        rng,
        num_attributes=num_attributes,
        num_planted=num_planted,
        strength=strength,
        order=order,
        min_values=2,
        max_values=2,
    )


def high_order_population(
    rng: np.random.Generator,
    num_attributes: int = 6,
    order: int = 4,
    strength: float = 6.0,
    num_planted: int = 1,
) -> PlantedPopulation:
    """A population whose only planted structure sits at ``order`` >= 4.

    Every lower-order margin is (up to the margin-restoring IPF sweeps)
    independent, so a selector that stops scanning early — or that
    hallucinates pairwise shadows of the deep cell — is caught by the
    recovery gates.
    """
    if order < 4:
        raise DataError(
            f"high_order_population plants order-4+ cells, got order {order}"
        )
    if order > num_attributes:
        raise DataError(
            f"cannot plant an order-{order} cell over "
            f"{num_attributes} attributes"
        )
    return random_planted_population(
        rng,
        num_attributes=num_attributes,
        num_planted=num_planted,
        strength=strength,
        order=order,
        min_values=2,
        max_values=2,
    )


def zipf_cardinalities(
    rng: np.random.Generator,
    num_attributes: int,
    max_cardinality: int = 12,
    exponent: float = 1.5,
) -> list[int]:
    """Attribute cardinalities drawn from a truncated Zipf law.

    Cardinality ``k`` (2..``max_cardinality``) is drawn with probability
    proportional to ``k**-exponent``: most attributes stay small, a few
    grow long value lists — the heavy-tailed shape of real categorical
    telemetry.
    """
    if max_cardinality < 2:
        raise DataError(
            f"max_cardinality must be >= 2, got {max_cardinality}"
        )
    support = np.arange(2, max_cardinality + 1, dtype=float)
    weights = support**-exponent
    weights /= weights.sum()
    draws = rng.choice(support.size, size=num_attributes, p=weights)
    return [int(support[index]) for index in draws]


def heavy_tailed_population(
    rng: np.random.Generator,
    num_attributes: int = 4,
    max_cardinality: int = 12,
    exponent: float = 1.2,
    num_planted: int = 2,
    strength: float = 5.0,
) -> PlantedPopulation:
    """Zipf-everything: heavy-tailed cardinalities *and* value masses.

    Each attribute's cardinality comes from :func:`zipf_cardinalities`
    (with the first attribute forced to ``max_cardinality`` so the tail
    is always present) and its margin follows a shuffled Zipf law —
    a few head values soak up the mass while tail values starve.  The
    planted cells pair head values with tail values, so recovery
    requires significance decisions across count scales that differ by
    orders of magnitude.
    """
    if num_attributes < 2:
        raise DataError("need at least two attributes to plant pairs")
    cardinalities = zipf_cardinalities(
        rng, num_attributes, max_cardinality, exponent
    )
    cardinalities[0] = max_cardinality
    attributes = []
    for index, cardinality in enumerate(cardinalities):
        name = chr(ord("A") + index)
        attributes.append(
            Attribute(
                name,
                tuple(f"{name.lower()}{v + 1}" for v in range(cardinality)),
            )
        )
    schema = Schema(attributes)
    margins = {}
    for attribute in schema:
        ranks = np.arange(1, attribute.cardinality + 1, dtype=float)
        vector = ranks**-exponent
        # Small bounded jitter keeps ties broken without flattening the
        # tail; the floor keeps every value samplable.
        vector *= rng.uniform(0.9, 1.1, size=vector.size)
        vector = np.clip(vector / vector.sum(), 0.005, None)
        margins[attribute.name] = vector / vector.sum()
    names = schema.names
    planted = []
    for index in range(min(num_planted, num_attributes - 1)):
        left, right = names[index], names[index + 1]
        # Head value on one side, tail value on the other.
        values = (0, schema.attribute(right).cardinality - 1)
        planted.append(PlantedCell((left, right), values, strength))
    return build_planted_population(schema, margins, planted)


def correlated_drifted_margins(
    rng: np.random.Generator,
    margins: dict[str, np.ndarray],
    drift: float = 0.5,
    correlation: float = 0.9,
) -> dict[str, np.ndarray]:
    """Margins shifted along one shared latent direction.

    Unlike :func:`repro.synth.generators.drifted_margins` (independent
    per-attribute redistribution), every attribute here is tilted by the
    *same* latent scalar: value ``v`` of each margin is reweighted by
    ``exp(shift * loading_v)`` where the per-value loadings are drawn
    once and the scalar ``shift`` is shared, so the whole world moves
    coherently.  ``correlation`` in [0, 1] mixes the shared tilt with an
    independent per-attribute tilt; 1.0 is perfectly correlated drift,
    0.0 degenerates to independent drift.  ``drift`` scales the tilt
    magnitude.  Margins stay bounded away from zero.
    """
    if not 0.0 <= drift <= 1.0:
        raise DataError(f"drift must be in [0, 1], got {drift}")
    if not 0.0 <= correlation <= 1.0:
        raise DataError(
            f"correlation must be in [0, 1], got {correlation}"
        )
    shared_shift = float(rng.normal(0.0, 1.0))
    shifted = {}
    for name, vector in margins.items():
        vector = np.asarray(vector, dtype=float)
        loadings = rng.normal(0.0, 1.0, size=vector.size)
        own_shift = float(rng.normal(0.0, 1.0))
        shift = correlation * shared_shift + (1.0 - correlation) * own_shift
        tilted = vector * np.exp(drift * shift * loadings)
        tilted = np.clip(tilted / tilted.sum(), 0.02, None)
        shifted[name] = tilted / tilted.sum()
    return shifted


def near_singular_population(
    rng: np.random.Generator,
    num_attributes: int = 4,
    epsilon: float = 0.004,
    strength: float = 6.0,
) -> PlantedPopulation:
    """Margins pinned next to zero: an almost-singular contingency table.

    Every attribute's last value carries only ``epsilon`` mass, so the
    joint has whole slices whose expected counts round to zero at
    realistic sample sizes — the table is numerically near-singular and
    the IPF solver must scale through near-empty margins without
    dividing by them.  One ordinary (head-value) pair is planted so the
    recovery gates still have a signal to ask for.
    """
    if not 0.0 < epsilon < 0.1:
        raise DataError(f"epsilon must be in (0, 0.1), got {epsilon}")
    if num_attributes < 2:
        raise DataError("need at least two attributes to plant a pair")
    # Cardinality >= 3 keeps the planted head-value pair off the starved
    # last value: with binary attributes the epsilon pin would leave the
    # association only in the invisible (last, last) corner.
    schema = random_schema(rng, num_attributes, min_values=3, max_values=4)
    margins = {}
    for attribute in schema:
        vector = rng.dirichlet([4.0] * attribute.cardinality)
        vector = np.clip(vector, 0.05, None)
        # Starve the last value: the near-singular corner of the table.
        vector[-1] = epsilon
        margins[attribute.name] = vector / vector.sum()
    names = schema.names
    planted = [PlantedCell((names[0], names[1]), (0, 0), strength)]
    return build_planted_population(schema, margins, planted)


def orbit_truth(
    population: PlantedPopulation, include_subsets: bool = False
) -> set[tuple[tuple[str, ...], tuple[int, ...]]]:
    """Every constraint key informationally equivalent to a planted cell.

    Planting one cell of a low-cardinality subset saturates the whole
    interaction: in a binary 2x2, an excess at ``(0, 0)`` *is* an excess
    at ``(1, 1)`` and a deficit on the off-diagonal, and the engine
    legitimately adopts whichever cell of that orbit the sample makes
    most significant.  This expands each planted cell to all value
    combinations over its attribute subset; with ``include_subsets``
    (for order-3+ plants) it also covers every size->=2 sub-subset,
    whose marginals a deep planted cell genuinely shifts.  Scenarios
    built on such orbits gate on precision ("every adoption lies on
    planted structure") rather than exact-cell recall.
    """
    from itertools import combinations, product

    schema = population.schema
    keys: set[tuple[tuple[str, ...], tuple[int, ...]]] = set()
    for cell in population.planted:
        subsets = [cell.attributes]
        if include_subsets:
            for size in range(2, len(cell.attributes)):
                subsets.extend(combinations(cell.attributes, size))
        for subset in subsets:
            cards = [schema.attribute(name).cardinality for name in subset]
            for values in product(*(range(c) for c in cards)):
                keys.add((tuple(subset), tuple(values)))
    return keys


def apply_label_noise(
    dataset: Dataset, rng: np.random.Generator, rate: float = 0.1
) -> Dataset:
    """Replace a fraction of entries with uniformly random values.

    Classic label noise: each cell of the sample matrix is, with
    probability ``rate``, independently overwritten by a uniform draw
    over its attribute's values (possibly the same value, as in the
    standard noise model).  Associations survive attenuated — the test
    is whether discovery still finds them without inventing structure
    from the noise.
    """
    if not 0.0 <= rate <= 1.0:
        raise DataError(f"noise rate must be in [0, 1], got {rate}")
    rows = np.array(dataset.rows)
    mask = rng.random(rows.shape) < rate
    for axis, attribute in enumerate(dataset.schema):
        noisy = rng.integers(
            attribute.cardinality, size=int(mask[:, axis].sum())
        )
        rows[mask[:, axis], axis] = noisy
    return Dataset(dataset.schema, rows)


def duplicate_rows(
    dataset: Dataset, rng: np.random.Generator, fraction: float = 0.3
) -> Dataset:
    """Append duplicates of randomly chosen rows (an iid violation).

    ``fraction`` of the original row count is re-sampled *with
    replacement* and appended, the way ETL replays and retry storms
    inflate real datasets.  Duplicates overstate the evidence for every
    association they touch; the gates check the significance machinery
    does not let bounded duplication manufacture false alarms.
    """
    if not 0.0 <= fraction <= 1.0:
        raise DataError(
            f"duplicate fraction must be in [0, 1], got {fraction}"
        )
    rows = np.array(dataset.rows)
    extra = int(round(fraction * rows.shape[0]))
    if extra:
        chosen = rng.integers(rows.shape[0], size=extra)
        rows = np.concatenate([rows, rows[chosen]], axis=0)
    return Dataset(dataset.schema, rows)
