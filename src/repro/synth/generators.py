"""Synthetic populations with known, planted structure.

The paper's motivating data (NASA survey / telemetry masses) are not
available; these generators substitute parametric populations whose ground
truth is known, so discovery methods can be *scored*: a planted correlation
either is or is not recovered.  The algorithm only ever sees sampled
counts, so the substitution exercises exactly the same code path as real
data would.

A planted population starts from independent margins and multiplies
selected marginal cells by a strength factor (>1 excess, <1 deficit) —
precisely the paper's model family (Eq 12), so the maxent machinery can in
principle represent the truth exactly.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import DataError


@dataclass(frozen=True)
class PlantedCell:
    """One planted interaction: a marginal cell with a strength multiplier."""

    attributes: tuple[str, ...]
    values: tuple[int, ...]
    strength: float

    def __post_init__(self) -> None:
        if self.strength <= 0:
            raise DataError(f"strength must be positive, got {self.strength}")
        if len(self.attributes) != len(self.values):
            raise DataError("attributes and values must have equal length")


@dataclass
class PlantedPopulation:
    """A ground-truth joint built from margins plus planted cells."""

    schema: Schema
    joint: np.ndarray
    planted: tuple[PlantedCell, ...]

    def sample(self, n: int, rng: np.random.Generator) -> Dataset:
        """Draw n observations from the population."""
        return Dataset.from_joint(self.schema, self.joint, n, rng)

    def sample_table(self, n: int, rng: np.random.Generator) -> ContingencyTable:
        """Draw n observations and tally them."""
        return self.sample(n, rng).to_contingency()

    def planted_keys(self) -> set[tuple[tuple[str, ...], tuple[int, ...]]]:
        """Constraint keys of the planted cells (for recovery scoring)."""
        return {(cell.attributes, cell.values) for cell in self.planted}


def random_schema(
    rng: np.random.Generator,
    num_attributes: int,
    min_values: int = 2,
    max_values: int = 4,
) -> Schema:
    """A schema with random cardinalities and generic names A, B, C, ..."""
    if num_attributes < 1:
        raise DataError("need at least one attribute")
    if num_attributes > 26:
        raise DataError("generic names support at most 26 attributes")
    attributes = []
    for index in range(num_attributes):
        name = chr(ord("A") + index)
        cardinality = int(rng.integers(min_values, max_values + 1))
        values = tuple(f"{name.lower()}{v + 1}" for v in range(cardinality))
        attributes.append(Attribute(name, values))
    return Schema(attributes)


def random_margins(
    rng: np.random.Generator, schema: Schema, concentration: float = 4.0
) -> dict[str, np.ndarray]:
    """Dirichlet-distributed first-order margins, bounded away from zero."""
    margins = {}
    for attribute in schema:
        vector = rng.dirichlet([concentration] * attribute.cardinality)
        vector = np.clip(vector, 0.02, None)
        margins[attribute.name] = vector / vector.sum()
    return margins


def build_planted_population(
    schema: Schema,
    margins: dict[str, np.ndarray],
    planted: Sequence[PlantedCell],
) -> PlantedPopulation:
    """Construct the joint: product of margins times planted multipliers.

    Planted strengths are odds-style multipliers (like the paper's ``a``
    factors).  After planting, IPF margin sweeps restore the requested
    first-order margins exactly; margin-only scaling preserves the planted
    cells' odds-ratio structure, so the associations survive while the
    margins stay the spec's.
    """
    joint = np.ones(schema.shape)
    for axis, attribute in enumerate(schema):
        shape = [1] * len(schema)
        shape[axis] = attribute.cardinality
        joint = joint * np.asarray(margins[attribute.name]).reshape(shape)
    for cell in planted:
        slicer: list[slice | int] = [slice(None)] * len(schema)
        for name, value in zip(cell.attributes, cell.values):
            axis = schema.axis(name)
            if not 0 <= value < schema.attributes[axis].cardinality:
                raise DataError(
                    f"planted value {value} out of range for {name!r}"
                )
            slicer[axis] = value
        joint[tuple(slicer)] *= cell.strength
    joint /= joint.sum()
    joint = _restore_margins(schema, joint, margins)
    return PlantedPopulation(
        schema=schema, joint=joint, planted=tuple(planted)
    )


def _restore_margins(
    schema: Schema,
    joint: np.ndarray,
    margins: dict[str, np.ndarray],
    tol: float = 1e-12,
    max_sweeps: int = 1000,
) -> np.ndarray:
    """IPF margin sweeps: rescale value slices until margins match."""
    for _sweep in range(max_sweeps):
        worst = 0.0
        for axis, attribute in enumerate(schema):
            target = np.asarray(margins[attribute.name], dtype=float)
            other_axes = tuple(a for a in range(len(schema)) if a != axis)
            current = joint.sum(axis=other_axes)
            worst = max(worst, float(np.abs(current - target).max()))
            ratio = np.divide(
                target, current, out=np.zeros_like(target), where=current > 0
            )
            shape = [1] * len(schema)
            shape[axis] = attribute.cardinality
            joint = joint * ratio.reshape(shape)
        if worst < tol:
            break
    return joint / joint.sum()


def random_planted_population(
    rng: np.random.Generator,
    num_attributes: int = 4,
    num_planted: int = 2,
    strength: float = 3.0,
    order: int = 2,
    min_values: int = 2,
    max_values: int = 4,
) -> PlantedPopulation:
    """A random population with ``num_planted`` order-``order`` cells planted.

    Planted cells are distinct and their strength alternates between
    ``strength`` (excess) and ``1/strength`` (deficit) so both directions
    of association occur.  ``min_values`` / ``max_values`` bound the
    attribute cardinalities (high-cardinality workloads raise them).
    """
    schema = random_schema(rng, num_attributes, min_values, max_values)
    margins = random_margins(rng, schema)
    names = schema.names
    chosen: set[tuple[tuple[str, ...], tuple[int, ...]]] = set()
    planted: list[PlantedCell] = []
    attempts = 0
    while len(planted) < num_planted:
        attempts += 1
        if attempts > 1000:
            raise DataError("could not place distinct planted cells")
        subset_idx = sorted(
            rng.choice(len(names), size=order, replace=False).tolist()
        )
        subset = tuple(names[i] for i in subset_idx)
        values = tuple(
            int(rng.integers(schema.attribute(n).cardinality)) for n in subset
        )
        key = (subset, values)
        if key in chosen:
            continue
        chosen.add(key)
        factor = strength if len(planted) % 2 == 0 else 1.0 / strength
        planted.append(PlantedCell(subset, values, factor))
    return build_planted_population(schema, margins, planted)


def independent_population(
    rng: np.random.Generator, num_attributes: int = 4
) -> PlantedPopulation:
    """A population with no planted structure (null model for false alarms)."""
    schema = random_schema(rng, num_attributes)
    margins = random_margins(rng, schema)
    return build_planted_population(schema, margins, [])


def chained_population(
    rng: np.random.Generator,
    num_attributes: int = 5,
    strength: float = 3.0,
) -> PlantedPopulation:
    """A Markov-chain-like population: one planted order-2 cell per
    adjacent attribute pair (A–B, B–C, ...).

    Every attribute participates in some dependency, but no interaction
    exceeds order 2 — the workload that separates "finds pairwise links"
    from "hallucinates higher-order structure".
    """
    if num_attributes < 2:
        raise DataError("a chain needs at least two attributes")
    schema = random_schema(rng, num_attributes)
    margins = random_margins(rng, schema)
    names = schema.names
    planted = []
    for left, right in zip(names, names[1:]):
        values = (
            int(rng.integers(schema.attribute(left).cardinality)),
            int(rng.integers(schema.attribute(right).cardinality)),
        )
        planted.append(PlantedCell((left, right), values, strength))
    return build_planted_population(schema, margins, planted)


def near_deterministic_population(
    rng: np.random.Generator,
    strength: float = 40.0,
    num_attributes: int = 3,
    min_conditional: float = 0.95,
) -> PlantedPopulation:
    """A population where one cell is boosted so hard the pair behaves
    like a near-deterministic rule (IF A=a THEN B=b almost surely).

    Stresses the significance test's p→1 edge and the solver's handling of
    extreme ``a`` values; the feasible-range / determined bookkeeping of
    Eq 41 gets exercised with nearly saturated cells.

    A rule that holds with probability ``min_conditional`` needs
    ``P(B=b) >= min_conditional * P(A=a)`` — no finite boost can beat an
    infeasible margin, because the margin-restoring IPF sweeps cap the
    pair cell at ``min(P(A=a), P(B=b))``.  The consequent's margin is
    therefore lifted to make the rule feasible, and the strength is then
    escalated until ``P(B=b | A=a) >= min_conditional`` actually holds in
    the final joint, keeping the scenario's semantics independent of the
    seed.
    """
    if strength <= 1.0:
        raise DataError("a near-deterministic rule needs strength > 1")
    if not 0.0 < min_conditional < 1.0:
        raise DataError(
            f"min_conditional must be in (0, 1), got {min_conditional}"
        )
    schema = random_schema(rng, num_attributes, min_values=2, max_values=3)
    margins = random_margins(rng, schema)
    names = schema.names
    antecedent_mass = float(margins[names[0]][0])
    consequent = np.asarray(margins[names[1]], dtype=float)
    needed = min(0.9, antecedent_mass + 0.1)
    if consequent[0] < needed:
        scale = (1.0 - needed) / (1.0 - consequent[0])
        consequent = consequent * scale
        consequent[0] = needed
        margins[names[1]] = consequent / consequent.sum()
    rest_axes = tuple(range(2, len(schema)))
    for _attempt in range(12):
        planted = [PlantedCell((names[0], names[1]), (0, 0), strength)]
        population = build_planted_population(schema, margins, planted)
        pair = (
            population.joint.sum(axis=rest_axes)
            if rest_axes
            else population.joint
        )
        if pair[0, 0] / pair[0, :].sum() >= min_conditional:
            return population
        strength *= 4.0
    raise DataError(
        f"could not reach P(rule) >= {min_conditional} by escalating "
        f"strength (margins too adverse)"
    )


def skewed_population(
    rng: np.random.Generator,
    num_attributes: int = 4,
    skew: float = 8.0,
    num_planted: int = 1,
    strength: float = 4.0,
) -> PlantedPopulation:
    """A population whose margins are heavily skewed toward one value.

    Each attribute's first value carries most of the mass (the heavier
    ``skew``, the more extreme), so planted structure must be found from
    cells whose expected counts differ by orders of magnitude.
    """
    if skew <= 1.0:
        raise DataError(f"skew must be > 1, got {skew}")
    schema = random_schema(rng, num_attributes)
    if num_planted > num_attributes // 2:
        # Disjoint schema-ordered pairs keep planted keys distinct and
        # canonical (matching CellConstraint.key), so recovery scoring
        # compares like with like.
        raise DataError(
            f"cannot plant {num_planted} disjoint pairs over "
            f"{num_attributes} attributes"
        )
    margins = {}
    for attribute in schema:
        vector = np.ones(attribute.cardinality)
        vector[0] = skew
        vector += rng.uniform(0.0, 0.2, size=attribute.cardinality)
        margins[attribute.name] = vector / vector.sum()
    names = schema.names
    planted = []
    for index in range(num_planted):
        left, right = names[2 * index], names[2 * index + 1]
        # Plant in the rare corner: both attributes at their last (least
        # likely) value, where counts are thinnest.
        values = (
            schema.attribute(left).cardinality - 1,
            schema.attribute(right).cardinality - 1,
        )
        planted.append(PlantedCell((left, right), values, strength))
    return build_planted_population(schema, margins, planted)


def drifted_margins(
    rng: np.random.Generator,
    margins: dict[str, np.ndarray],
    drift: float = 0.5,
) -> dict[str, np.ndarray]:
    """Margins shifted away from ``margins`` by mixing in a random
    redistribution — the "second phase" of a streaming-drift workload.

    ``drift`` in [0, 1] interpolates between the original margins (0) and
    a fresh Dirichlet draw (1).  The result stays bounded away from zero,
    like :func:`random_margins` output.
    """
    if not 0.0 <= drift <= 1.0:
        raise DataError(f"drift must be in [0, 1], got {drift}")
    shifted = {}
    for name, vector in margins.items():
        vector = np.asarray(vector, dtype=float)
        target = rng.dirichlet([2.0] * vector.size)
        mixed = (1.0 - drift) * vector + drift * target
        mixed = np.clip(mixed, 0.02, None)
        shifted[name] = mixed / mixed.sum()
    return shifted


def recovery_score(
    population: PlantedPopulation,
    found_keys: set[tuple[tuple[str, ...], tuple[int, ...]]],
) -> tuple[float, float]:
    """Precision and recall of discovered constraints vs planted cells.

    A planted cell counts as recovered if its exact key was adopted.
    Precision counts any non-planted adopted key as a false alarm — a
    deliberately strict convention, identical across selectors, so the
    ablation comparison is fair even though adjacent cells of a planted
    marginal legitimately shift too.  The single implementation of the
    convention is :func:`repro.discovery.trace.score_constraint_keys`;
    this is the (precision, recall)-pair view of it.
    """
    from repro.discovery.trace import score_constraint_keys

    score = score_constraint_keys(population.planted_keys(), set(found_keys))
    return score.precision, score.recall
