"""Synthetic populations with known, planted structure.

The paper's motivating data (NASA survey / telemetry masses) are not
available; these generators substitute parametric populations whose ground
truth is known, so discovery methods can be *scored*: a planted correlation
either is or is not recovered.  The algorithm only ever sees sampled
counts, so the substitution exercises exactly the same code path as real
data would.

A planted population starts from independent margins and multiplies
selected marginal cells by a strength factor (>1 excess, <1 deficit) —
precisely the paper's model family (Eq 12), so the maxent machinery can in
principle represent the truth exactly.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import DataError


@dataclass(frozen=True)
class PlantedCell:
    """One planted interaction: a marginal cell with a strength multiplier."""

    attributes: tuple[str, ...]
    values: tuple[int, ...]
    strength: float

    def __post_init__(self) -> None:
        if self.strength <= 0:
            raise DataError(f"strength must be positive, got {self.strength}")
        if len(self.attributes) != len(self.values):
            raise DataError("attributes and values must have equal length")


@dataclass
class PlantedPopulation:
    """A ground-truth joint built from margins plus planted cells."""

    schema: Schema
    joint: np.ndarray
    planted: tuple[PlantedCell, ...]

    def sample(self, n: int, rng: np.random.Generator) -> Dataset:
        """Draw n observations from the population."""
        return Dataset.from_joint(self.schema, self.joint, n, rng)

    def sample_table(self, n: int, rng: np.random.Generator) -> ContingencyTable:
        """Draw n observations and tally them."""
        return self.sample(n, rng).to_contingency()

    def planted_keys(self) -> set[tuple[tuple[str, ...], tuple[int, ...]]]:
        """Constraint keys of the planted cells (for recovery scoring)."""
        return {(cell.attributes, cell.values) for cell in self.planted}


def random_schema(
    rng: np.random.Generator,
    num_attributes: int,
    min_values: int = 2,
    max_values: int = 4,
) -> Schema:
    """A schema with random cardinalities and generic names A, B, C, ..."""
    if num_attributes < 1:
        raise DataError("need at least one attribute")
    if num_attributes > 26:
        raise DataError("generic names support at most 26 attributes")
    attributes = []
    for index in range(num_attributes):
        name = chr(ord("A") + index)
        cardinality = int(rng.integers(min_values, max_values + 1))
        values = tuple(f"{name.lower()}{v + 1}" for v in range(cardinality))
        attributes.append(Attribute(name, values))
    return Schema(attributes)


def random_margins(
    rng: np.random.Generator, schema: Schema, concentration: float = 4.0
) -> dict[str, np.ndarray]:
    """Dirichlet-distributed first-order margins, bounded away from zero."""
    margins = {}
    for attribute in schema:
        vector = rng.dirichlet([concentration] * attribute.cardinality)
        vector = np.clip(vector, 0.02, None)
        margins[attribute.name] = vector / vector.sum()
    return margins


def build_planted_population(
    schema: Schema,
    margins: dict[str, np.ndarray],
    planted: Sequence[PlantedCell],
) -> PlantedPopulation:
    """Construct the joint: product of margins times planted multipliers.

    Planted strengths are odds-style multipliers (like the paper's ``a``
    factors).  After planting, IPF margin sweeps restore the requested
    first-order margins exactly; margin-only scaling preserves the planted
    cells' odds-ratio structure, so the associations survive while the
    margins stay the spec's.
    """
    joint = np.ones(schema.shape)
    for axis, attribute in enumerate(schema):
        shape = [1] * len(schema)
        shape[axis] = attribute.cardinality
        joint = joint * np.asarray(margins[attribute.name]).reshape(shape)
    for cell in planted:
        slicer: list[slice | int] = [slice(None)] * len(schema)
        for name, value in zip(cell.attributes, cell.values):
            axis = schema.axis(name)
            if not 0 <= value < schema.attributes[axis].cardinality:
                raise DataError(
                    f"planted value {value} out of range for {name!r}"
                )
            slicer[axis] = value
        joint[tuple(slicer)] *= cell.strength
    joint /= joint.sum()
    joint = _restore_margins(schema, joint, margins)
    return PlantedPopulation(
        schema=schema, joint=joint, planted=tuple(planted)
    )


def _restore_margins(
    schema: Schema,
    joint: np.ndarray,
    margins: dict[str, np.ndarray],
    tol: float = 1e-12,
    max_sweeps: int = 1000,
) -> np.ndarray:
    """IPF margin sweeps: rescale value slices until margins match."""
    for _sweep in range(max_sweeps):
        worst = 0.0
        for axis, attribute in enumerate(schema):
            target = np.asarray(margins[attribute.name], dtype=float)
            other_axes = tuple(a for a in range(len(schema)) if a != axis)
            current = joint.sum(axis=other_axes)
            worst = max(worst, float(np.abs(current - target).max()))
            ratio = np.divide(
                target, current, out=np.zeros_like(target), where=current > 0
            )
            shape = [1] * len(schema)
            shape[axis] = attribute.cardinality
            joint = joint * ratio.reshape(shape)
        if worst < tol:
            break
    return joint / joint.sum()


def random_planted_population(
    rng: np.random.Generator,
    num_attributes: int = 4,
    num_planted: int = 2,
    strength: float = 3.0,
    order: int = 2,
) -> PlantedPopulation:
    """A random population with ``num_planted`` order-``order`` cells planted.

    Planted cells are distinct and their strength alternates between
    ``strength`` (excess) and ``1/strength`` (deficit) so both directions
    of association occur.
    """
    schema = random_schema(rng, num_attributes)
    margins = random_margins(rng, schema)
    names = schema.names
    chosen: set[tuple[tuple[str, ...], tuple[int, ...]]] = set()
    planted: list[PlantedCell] = []
    attempts = 0
    while len(planted) < num_planted:
        attempts += 1
        if attempts > 1000:
            raise DataError("could not place distinct planted cells")
        subset_idx = sorted(
            rng.choice(len(names), size=order, replace=False).tolist()
        )
        subset = tuple(names[i] for i in subset_idx)
        values = tuple(
            int(rng.integers(schema.attribute(n).cardinality)) for n in subset
        )
        key = (subset, values)
        if key in chosen:
            continue
        chosen.add(key)
        factor = strength if len(planted) % 2 == 0 else 1.0 / strength
        planted.append(PlantedCell(subset, values, factor))
    return build_planted_population(schema, margins, planted)


def independent_population(
    rng: np.random.Generator, num_attributes: int = 4
) -> PlantedPopulation:
    """A population with no planted structure (null model for false alarms)."""
    schema = random_schema(rng, num_attributes)
    margins = random_margins(rng, schema)
    return build_planted_population(schema, margins, [])


def recovery_score(
    population: PlantedPopulation,
    found_keys: set[tuple[tuple[str, ...], tuple[int, ...]]],
) -> tuple[float, float]:
    """Precision and recall of discovered constraints vs planted cells.

    A planted cell counts as recovered if its exact key was adopted.
    Precision counts any non-planted adopted key as a false alarm — a
    deliberately strict convention, identical across selectors, so the
    ablation comparison is fair even though adjacent cells of a planted
    marginal legitimately shift too.
    """
    truth = population.planted_keys()
    if not found_keys:
        return (1.0 if not truth else 0.0, 0.0 if truth else 1.0)
    hits = len(truth & found_keys)
    precision = hits / len(found_keys)
    recall = hits / len(truth) if truth else 1.0
    return precision, recall
