"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """An attribute schema is malformed or an attribute lookup failed."""


class DataError(ReproError):
    """Raw data does not conform to its schema (bad labels, shapes, counts)."""


class ConstraintError(ReproError):
    """A probability constraint is invalid or inconsistent with others."""


class StaleConstraintError(ConstraintError):
    """A previously adopted constraint is no longer supported by the data.

    Raised by the warm-started rediscovery paths (the discovery engine's
    ``rerun``, the log-linear warm selection) when updated data stop
    justifying a constraint the previous revision adopted — the signal
    that incremental strengthening is invalid and the caller should fall
    back to a cold refit (which is free to drop the constraint)."""


class ConvergenceError(ReproError):
    """An iterative solver failed to reach the requested tolerance."""


class ParallelError(ReproError):
    """A worker pool failed: a worker died, a task could not be shipped,
    or a worker raised an error the master could not map back onto the
    library's own exception hierarchy (those it can — any
    :class:`ReproError` subclass — are re-raised as themselves)."""


class StaleWorkerStateError(ParallelError):
    """A remote worker was asked to reuse pinned state it no longer holds.

    The TCP transport pins data-side stats, cached joints, and query
    sessions per connection; a reconnect (or a fresh daemon) starts from
    nothing.  A worker raises this when the master references cached
    state — a table, a joint fingerprint, a session — that the
    connection never received, so the master can re-ship the full
    payload instead of silently serving stale or missing state."""


class QueryError(ReproError):
    """A probability query is malformed or has zero-probability evidence."""
