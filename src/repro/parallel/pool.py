"""Process worker pools with pinned per-worker state.

The parallel subsystem's execution primitive: a :class:`WorkerPool` owns N
long-lived worker processes, each reachable over its own pipe, each holding
a persistent per-process ``state`` dict.  Tasks are module-level functions
addressed as ``"module.path:function"`` strings — resolvable after a plain
import, which is what makes the pool safe under both ``fork`` and ``spawn``
start methods (a spawned child re-imports the task's module; nothing
unpicklable ever crosses the pipe).

Unlike :class:`concurrent.futures.ProcessPoolExecutor`, dispatch is
*pinned*: ``run(task, args_per_worker)`` sends shard ``i`` to worker ``i``,
always.  That is what lets the sharded scan keep worker-side caches (each
worker's :class:`~repro.significance.kernels.OrderScanKernel` owns its
shard's data-side statistics) and the query evaluator keep per-worker
plan/marginal caches warm across batches.

``max_workers=1`` (or ``inline=True``) runs every task in-process against
the same per-worker state dicts — the deterministic fallback for platforms
where process startup is unavailable or not worth it, and the harness the
shard-equivalence property tests drive at shard counts the machine doesn't
have cores for.

Failure contract: a worker exception that is a :class:`ReproError`
subclass is re-raised in the master as that same class; anything else —
including a worker dying mid-task — surfaces as :class:`ParallelError`.
"""

from __future__ import annotations

import atexit
import contextlib
import importlib
import multiprocessing
import traceback
import weakref

from repro.exceptions import ParallelError, ReproError

__all__ = [
    "WorkerPool",
    "default_start_method",
    "resolve_task",
    "shard_bounds",
]


def default_start_method() -> str:
    """``"fork"`` where the platform offers it, else ``"spawn"``.

    Fork shares the parent's already-built tables and models copy-on-write,
    so broadcast cost is near zero; spawn (macOS default, Windows only
    option) re-imports the task modules in the child, which the
    dotted-name task addressing is designed to survive.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def resolve_task(task: str):
    """Resolve a ``"module.path:function"`` task address to the callable."""
    module_name, separator, function_name = task.partition(":")
    if not separator or not module_name or not function_name:
        raise ParallelError(
            f"task address {task!r} is not of the form 'module:function'"
        )
    try:
        module = importlib.import_module(module_name)
        return getattr(module, function_name)
    except (ImportError, AttributeError) as error:
        raise ParallelError(
            f"cannot resolve task {task!r}: {error}"
        ) from None


def shard_bounds(n_items: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` bounds over ``n_items``.

    Earlier shards absorb the remainder, so sizes differ by at most one.
    Contiguity is what keeps a sharded scan's merged output in the exact
    order the serial path emits: concatenating shard results restores the
    canonical sequence.
    """
    if n_shards < 1:
        raise ParallelError(f"n_shards must be >= 1, got {n_shards}")
    if n_items < 0:
        raise ParallelError(f"n_items must be >= 0, got {n_items}")
    base, extra = divmod(n_items, n_shards)
    bounds = []
    start = 0
    for index in range(n_shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


#: Pools not yet closed, shut down from ``atexit`` while the interpreter
#: is still whole.  Registered at import time — i.e. *after* the
#: ``multiprocessing`` machinery this module imports registered its own
#: handlers — so LIFO ordering runs it first, before that machinery (or
#: module globals like ``contextlib``) is torn down.  GC'd pools leave the
#: set by themselves; ``__del__`` stays a shutdown-safe last resort for
#: pools collected *during* interpreter teardown.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


def _close_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass


atexit.register(_close_live_pools)


def _worker_main(connection) -> None:
    """Worker loop: receive ``("call", task, args)``, reply with the result.

    Errors are caught and shipped back as ``("error", module, name,
    message, traceback)`` so the master can re-raise library exceptions as
    themselves; only a hard crash (signal, ``os._exit``) breaks the pipe.
    """
    handlers: dict = {}
    state: dict = {}
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message[0] == "exit":
            break
        _, task, args = message
        try:
            handler = handlers.get(task)
            if handler is None:
                handler = resolve_task(task)
                handlers[task] = handler
            reply = ("ok", handler(state, *args))
        except BaseException as error:  # ship everything back, loop on
            reply = (
                "error",
                type(error).__module__,
                type(error).__name__,
                str(error),
                traceback.format_exc(),
            )
        try:
            connection.send(reply)
        except (BrokenPipeError, OSError):
            break
    with contextlib.suppress(OSError):
        connection.close()


def _raise_remote(module: str, name: str, message: str, trace: str):
    """Re-raise a worker-side exception in the master.

    :class:`ReproError` subclasses come back as themselves (a poisoned
    query raises the same :class:`~repro.exceptions.QueryError` the serial
    path would); anything else is wrapped in :class:`ParallelError` with
    the worker traceback attached for diagnosis.
    """
    exc_class = None
    with contextlib.suppress(ImportError, AttributeError):
        exc_class = getattr(importlib.import_module(module), name)
    if (
        isinstance(exc_class, type)
        and issubclass(exc_class, ReproError)
        and exc_class is not ParallelError
    ):
        raise exc_class(message)
    raise ParallelError(
        f"worker task failed with {name}: {message}\n{trace}"
    )


class WorkerPool:
    """``max_workers`` pinned workers, each with persistent private state.

    Parameters
    ----------
    max_workers:
        Worker (and maximum shard) count.
    inline:
        Run tasks in-process instead of in child processes.  Defaults to
        ``max_workers == 1`` — the deterministic serial fallback.  An
        inline pool still keeps one state dict per worker slot, so the
        sharding logic (and its tests) behave identically with and
        without real processes.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default picks fork
        where available (see :func:`default_start_method`).
    retry:
        A :class:`~repro.distributed.retry.RetryPolicy` — the *same*
        config surface every transport honors.  ``read_timeout`` bounds
        each wait for a worker reply (a hung worker raises
        :class:`ParallelError` instead of blocking forever), and the
        inline fallback retries transient task errors through
        ``retry.call`` exactly as the TCP pool retries connections — so
        error-path tests exercise one retry code path regardless of
        transport.

    Workers start lazily on the first :meth:`run` and live until
    :meth:`close`; the pool is a context manager.
    """

    def __init__(
        self,
        max_workers: int,
        inline: bool | None = None,
        start_method: str | None = None,
        retry=None,
    ):
        if max_workers < 1:
            raise ParallelError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if retry is None:
            from repro.distributed.retry import DEFAULT_RETRY

            retry = DEFAULT_RETRY
        self.retry = retry
        self.max_workers = int(max_workers)
        self.inline = (max_workers == 1) if inline is None else bool(inline)
        self._start_method = start_method or default_start_method()
        if self._start_method not in multiprocessing.get_all_start_methods():
            raise ParallelError(
                f"start method {self._start_method!r} is not available on "
                f"this platform "
                f"(have {multiprocessing.get_all_start_methods()})"
            )
        self._workers: list | None = None
        self._states: list[dict] | None = None
        self._closed = False
        _LIVE_POOLS.add(self)

    # -- lifecycle ----------------------------------------------------------------

    @property
    def running(self) -> bool:
        """True once workers have started (inline pools never 'run')."""
        return self._workers is not None

    @property
    def closed(self) -> bool:
        """True after :meth:`close` — including the self-close a worker
        death triggers.  A closed pool cannot be restarted; owners that
        want to survive worker loss build a fresh pool when they see
        this."""
        return self._closed

    def _ensure_started(self) -> None:
        if self._closed:
            raise ParallelError("worker pool is closed")
        if self.inline:
            if self._states is None:
                self._states = [{} for _ in range(self.max_workers)]
            return
        if self._workers is None:
            context = multiprocessing.get_context(self._start_method)
            workers = []
            for _ in range(self.max_workers):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_worker_main, args=(child_end,), daemon=True
                )
                process.start()
                child_end.close()
                workers.append((process, parent_end))
            self._workers = workers

    def close(self) -> None:
        """Stop every worker; idempotent, safe after worker death.

        Also safe during interpreter shutdown, where finalizers run with
        module globals possibly already ``None``d: only plain
        ``try/except`` below — no ``contextlib``/helper lookups — and
        every pipe/process call is individually guarded, so a half-dead
        worker (or an already-torn-down ``multiprocessing``) can never
        make teardown raise.
        """
        self._closed = True
        self._states = None
        workers, self._workers = self._workers, None
        if not workers:
            return
        for _process, connection in workers:
            try:
                connection.send(("exit",))
            except BaseException:
                pass
        for process, connection in workers:
            try:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
            except BaseException:
                pass
            try:
                connection.close()
            except BaseException:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except BaseException:
            pass

    # -- dispatch -----------------------------------------------------------------

    def run(self, task: str, args_per_worker: list[tuple]) -> list:
        """Run ``task`` on workers ``0..len(args_per_worker)-1``.

        Shard ``i`` always lands on worker ``i`` (pinned dispatch), all
        shards execute concurrently, and results come back in shard
        order.  If any worker errored, every reply is still collected
        (keeping the pipes in sync) before the first error is raised —
        :class:`ReproError` subclasses as themselves, everything else as
        :class:`ParallelError`.
        """
        if len(args_per_worker) > self.max_workers:
            raise ParallelError(
                f"{len(args_per_worker)} shards for {self.max_workers} "
                f"workers; shard count cannot exceed the pool size"
            )
        self._ensure_started()
        if self.inline:
            # Same failure contract as the process path: every shard
            # runs (replies are "collected"), then the first error is
            # raised — library errors as themselves, the rest wrapped.
            # Transient errors go through the shared retry policy, the
            # same one the TCP pool applies to connections.
            handler = resolve_task(task)
            results = []
            failure: Exception | None = None
            for index, args in enumerate(args_per_worker):
                state = self._states[index]
                try:
                    results.append(
                        self.retry.call(lambda: handler(state, *args))
                    )
                except Exception as error:
                    results.append(None)
                    if failure is None:
                        failure = error
            if failure is not None:
                # `type(...) is not ParallelError` (not isinstance):
                # _raise_remote re-raises ParallelError *subclasses* —
                # StaleWorkerStateError in particular — as themselves,
                # and the inline path must agree with the remote one.
                if isinstance(failure, ReproError) and (
                    type(failure) is not ParallelError
                ):
                    raise failure
                raise ParallelError(
                    f"worker task failed with "
                    f"{type(failure).__name__}: {failure}"
                ) from failure
            return results
        active = self._workers[: len(args_per_worker)]
        for (_process, connection), args in zip(active, args_per_worker):
            try:
                connection.send(("call", task, args))
            except (BrokenPipeError, OSError):
                self.close()
                raise ParallelError(
                    f"could not dispatch task {task!r}: a worker died"
                ) from None
        results = []
        failure = None
        read_timeout = self.retry.read_timeout
        for index, (_process, connection) in enumerate(active):
            try:
                # The same read_timeout the TCP pool sets on its
                # sockets: a hung worker raises instead of blocking the
                # master forever.
                if read_timeout is not None and not connection.poll(
                    read_timeout
                ):
                    self.close()
                    raise ParallelError(
                        f"worker {index} did not reply within "
                        f"{read_timeout}s while running task {task!r}"
                    )
                reply = connection.recv()
            except (EOFError, OSError):
                self.close()
                raise ParallelError(
                    f"worker {index} died while running task {task!r}"
                ) from None
            if reply[0] == "ok":
                results.append(reply[1])
            else:
                results.append(None)
                if failure is None:
                    failure = reply[1:]
        if failure is not None:
            _raise_remote(*failure)
        return results

    def broadcast(self, task: str, *args) -> list:
        """Run ``task`` with the same arguments on every worker."""
        return self.run(task, [args] * self.max_workers)

    def __repr__(self) -> str:
        mode = "inline" if self.inline else self._start_method
        return f"WorkerPool(max_workers={self.max_workers}, mode={mode!r})"
