"""Concurrent batch query serving: shards of a batch across worker sessions.

Each worker process holds its own long-lived
:class:`~repro.api.session.QuerySession` — its own compiled-plan cache, its
own marginal LRU, its own backend artifact (dense joint / factor
decomposition) — so a worker's caches stay warm across successive batches
exactly like a serial session's do.  A batch is split into contiguous
shards (worker ``i`` always gets shard ``i``), evaluated concurrently, and
concatenated back, so results come back in input order.

The model is broadcast to workers once, then re-broadcast only when its
:meth:`~repro.maxent.model.MaxEntModel.fingerprint` changes — the same
staleness signal the serial session uses, so a
:meth:`~repro.core.knowledge_base.ProbabilisticKnowledgeBase.update` that
absorbs new data in place invalidates worker sessions on the next batch.

A query that fails inside a worker (bad attribute, zero-probability
evidence) raises the same :class:`~repro.exceptions.QueryError` the serial
path would; a worker that dies raises
:class:`~repro.exceptions.ParallelError`.  Both are
:class:`~repro.exceptions.ReproError` subclasses.
"""

from __future__ import annotations

from repro.exceptions import ParallelError
from repro.maxent.model import MaxEntModel
from repro.parallel.pool import WorkerPool, shard_bounds

__all__ = ["ParallelQueryEvaluator"]

_TASK_INIT = f"{__name__}:_init_session"
_TASK_SET_MODEL = f"{__name__}:_set_model"
_TASK_BATCH = f"{__name__}:_evaluate_shard"


# -- worker-side tasks ------------------------------------------------------------


def _init_session(state, model, backend, cache_size) -> None:
    from repro.api.session import QuerySession

    state["session"] = QuerySession(
        model, backend=backend, cache_size=cache_size
    )


def _set_model(state, model) -> None:
    session = state.get("session")
    if session is None:
        raise ParallelError("query worker has no session")
    session.set_model(model)


def _evaluate_shard(state, queries) -> list[float]:
    session = state.get("session")
    if session is None:
        raise ParallelError("query worker has no session")
    return session.batch(queries)


# -- master side ------------------------------------------------------------------


class ParallelQueryEvaluator:
    """Evaluates query batches across a pool of worker sessions."""

    def __init__(
        self,
        model: MaxEntModel,
        backend: str = "auto",
        cache_size: int = 256,
        max_workers: int | None = None,
        pool: WorkerPool | None = None,
        start_method: str | None = None,
    ):
        if pool is None:
            if max_workers is None:
                raise ParallelError(
                    "ParallelQueryEvaluator needs max_workers or a pool"
                )
            pool = WorkerPool(max_workers, start_method=start_method)
        self.pool = pool
        self.max_workers = pool.max_workers
        self._model = model
        self._backend = backend
        self._cache_size = int(cache_size)
        self._broadcast_fingerprint: int | None = None

    def set_model(self, model: MaxEntModel) -> None:
        """Point workers at a new model (re-broadcast on the next batch)."""
        self._model = model
        self._broadcast_fingerprint = None

    def reset(self) -> None:
        """Force a full worker-session rebuild on the next batch."""
        self._broadcast_fingerprint = None

    def _ensure_current(self) -> None:
        fingerprint = self._model.fingerprint()
        if self._broadcast_fingerprint is None:
            self.pool.broadcast(
                _TASK_INIT, self._model, self._backend, self._cache_size
            )
        elif fingerprint != self._broadcast_fingerprint:
            # In-place mutation (kb.update's absorb): same object, new
            # factors — workers swap the model, dropping their caches.
            self.pool.broadcast(_TASK_SET_MODEL, self._model)
        self._broadcast_fingerprint = fingerprint

    def batch(self, queries) -> list[float]:
        """Evaluate ``queries`` concurrently; results in input order."""
        queries = list(queries)
        if not queries:
            return []
        self._ensure_current()
        shards = max(1, min(self.max_workers, len(queries)))
        bounds = shard_bounds(len(queries), shards)
        results = self.pool.run(
            _TASK_BATCH, [(queries[a:b],) for a, b in bounds]
        )
        return [value for shard in results for value in shard]

    def close(self) -> None:
        self._broadcast_fingerprint = None
        self.pool.close()

    def __enter__(self) -> "ParallelQueryEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ParallelQueryEvaluator(backend={self._backend!r}, "
            f"pool={self.pool!r})"
        )
