"""Concurrent batch query serving: shards of a batch across worker sessions.

Each worker process holds its own long-lived
:class:`~repro.api.session.QuerySession` — its own compiled-plan cache, its
own marginal LRU, its own backend artifact (dense joint / factor
decomposition) — so a worker's caches stay warm across successive batches
exactly like a serial session's do.  A batch is split into contiguous
shards (worker ``i`` always gets shard ``i``), evaluated concurrently, and
concatenated back, so results come back in input order.

The model is broadcast to workers once, then re-broadcast only when its
:meth:`~repro.maxent.model.MaxEntModel.fingerprint` changes — the same
staleness signal the serial session uses, so a
:meth:`~repro.core.knowledge_base.ProbabilisticKnowledgeBase.update` that
absorbs new data in place invalidates worker sessions on the next batch.
Under the default ``shm`` transport (:mod:`repro.parallel.shm`) that
broadcast ships the model's factors as one float64 block through a shared
segment — pickling only a tiny layout description — so a rebroadcast costs
one memcpy instead of serializing the model per worker; the block crosses
bit-exactly, and :class:`~repro.maxent.model.MaxEntModel` copies on
construction, so worker models are byte-identical to the master's.

A query that fails inside a worker (bad attribute, zero-probability
evidence) raises the same :class:`~repro.exceptions.QueryError` the serial
path would; a worker that dies raises
:class:`~repro.exceptions.ParallelError`.  Both are
:class:`~repro.exceptions.ReproError` subclasses.
"""

from __future__ import annotations

from repro.exceptions import ParallelError, StaleWorkerStateError
from repro.maxent.model import MaxEntModel
from repro.parallel.pool import WorkerPool, shard_bounds
from repro.parallel.shm import (
    SegmentAttachments,
    SharedTensorPool,
    TransportCounters,
    model_payload_bytes,
    pack_model,
    resolve_transport,
    unpack_model,
)

__all__ = ["ParallelQueryEvaluator"]

_TASK_INIT = f"{__name__}:_init_session"
_TASK_INIT_SHM = f"{__name__}:_init_session_shm"
_TASK_INIT_PACKED = f"{__name__}:_init_session_packed"
_TASK_SET_MODEL = f"{__name__}:_set_model"
_TASK_SET_MODEL_SHM = f"{__name__}:_set_model_shm"
_TASK_SET_MODEL_PACKED = f"{__name__}:_set_model_packed"
_TASK_BATCH = f"{__name__}:_evaluate_shard"


# -- worker-side tasks ------------------------------------------------------------


def _init_session(state, model, backend, cache_size) -> None:
    from repro.api.session import QuerySession

    state["session"] = QuerySession(
        model, backend=backend, cache_size=cache_size
    )


def _unpack_shared_model(state, schema, layout, handle) -> MaxEntModel:
    attachments = state.get("attachments")
    if attachments is None:
        attachments = state["attachments"] = SegmentAttachments()
    block = attachments.view(handle)
    return unpack_model(schema, layout, block)


def _init_session_shm(state, schema, backend, cache_size, layout, handle):
    from repro.api.session import QuerySession

    model = _unpack_shared_model(state, schema, layout, handle)
    state["schema"] = schema
    state["session"] = QuerySession(
        model, backend=backend, cache_size=cache_size
    )
    return state["attachments"].take_attach_ns()


def _init_session_packed(state, schema, backend, cache_size, layout, block):
    """Build a worker session from the packed wire format (tcp).

    The float64 block crosses the frame bit-exactly (pickled numpy
    array), and :func:`unpack_model` rebuilds the identical model the
    shm path attaches — so served answers cannot differ by transport.
    """
    from repro.api.session import QuerySession

    model = unpack_model(schema, layout, block)
    state["schema"] = schema
    state["session"] = QuerySession(
        model, backend=backend, cache_size=cache_size
    )


def _set_model(state, model) -> None:
    session = state.get("session")
    if session is None:
        raise ParallelError("query worker has no session")
    session.set_model(model)


def _set_model_shm(state, layout, handle):
    session = state.get("session")
    if session is None:
        raise ParallelError("query worker has no session")
    model = _unpack_shared_model(state, state["schema"], layout, handle)
    session.set_model(model)
    return state["attachments"].take_attach_ns()


def _set_model_packed(state, layout, block) -> None:
    session = state.get("session")
    if session is None:
        raise StaleWorkerStateError("query worker has no session")
    model = unpack_model(state["schema"], layout, block)
    session.set_model(model)


def _evaluate_shard(state, queries) -> list[float]:
    session = state.get("session")
    if session is None:
        # StaleWorkerStateError: a reconnected remote worker lost its
        # session; the master rebuilds by re-broadcasting the model.
        raise StaleWorkerStateError("query worker has no session")
    return session.batch(queries)


# -- master side ------------------------------------------------------------------


class ParallelQueryEvaluator:
    """Evaluates query batches across a pool of worker sessions.

    ``transport`` picks how model broadcasts move (``"pipe"`` / ``"shm"``
    / ``"tcp"`` / None = the ``REPRO_PARALLEL_TRANSPORT`` environment
    default); ``counters`` accumulates the payload bytes and amortized
    broadcasts.  ``worker_addresses`` (or ``REPRO_WORKER_ADDRESSES``
    under a tcp transport) shards batches across remote worker daemons,
    each holding a pinned :class:`~repro.api.session.QuerySession`; a
    tcp choice with no addresses degrades to local workers.
    """

    def __init__(
        self,
        model: MaxEntModel,
        backend: str = "auto",
        cache_size: int = 256,
        max_workers: int | None = None,
        pool: WorkerPool | None = None,
        start_method: str | None = None,
        transport: str | None = None,
        worker_addresses=None,
        retry=None,
    ):
        if pool is None:
            from repro.distributed.client import (
                TcpWorkerPool,
                resolve_distribution,
            )

            resolved, addresses = resolve_distribution(
                transport, worker_addresses
            )
            if resolved == "tcp":
                pool = TcpWorkerPool(addresses, retry=retry)
            else:
                if max_workers is None:
                    raise ParallelError(
                        "ParallelQueryEvaluator needs max_workers, a "
                        "pool, or worker addresses"
                    )
                pool = WorkerPool(max_workers, start_method=start_method)
            self.transport = resolved
        else:
            pool_transport = getattr(pool, "transport", None)
            if pool_transport is not None:
                self.transport = pool_transport
            else:
                resolved = resolve_transport(transport)
                if resolved == "tcp":
                    resolved = resolve_transport("auto")
                self.transport = resolved
        self.pool = pool
        self.max_workers = pool.max_workers
        pool_counters = getattr(pool, "counters", None)
        self.counters = (
            pool_counters
            if isinstance(pool_counters, TransportCounters)
            else TransportCounters()
        )
        self._model = model
        self._backend = backend
        self._cache_size = int(cache_size)
        self._broadcast_fingerprint: int | None = None
        self._tensor_pool = (
            SharedTensorPool() if self.transport == "shm" else None
        )
        self._block_handle = None
        self._block_view = None

    def set_model(self, model: MaxEntModel) -> None:
        """Point workers at a new model (re-broadcast on the next batch)."""
        self._model = model
        self._broadcast_fingerprint = None

    def reset(self) -> None:
        """Force a full worker-session rebuild on the next batch."""
        self._broadcast_fingerprint = None

    def _publish_model(self):
        """Write the packed model into the shared block segment.

        Reuses the mapped segment in place when the block size is
        unchanged (workers read it only inside the synchronous broadcast
        that follows, so overwriting here can never race a reader).
        """
        layout, block = pack_model(self._model)
        if (
            self._block_handle is not None
            and self._block_handle.shape == block.shape
        ):
            self._block_view[...] = block
            self._block_handle = self._tensor_pool.restamp(
                self._block_handle
            )
        else:
            if self._block_handle is not None:
                self._tensor_pool.release(self._block_handle)
            self._block_handle, self._block_view = self._tensor_pool.acquire(
                block.shape, block.dtype
            )
            self._block_view[...] = block
        self.counters.bytes_shared += block.nbytes
        return layout, self._block_handle

    def _ensure_current(self) -> None:
        fingerprint = self._model.fingerprint()
        counters = self.counters
        counters.broadcasts_total += 1
        if self._broadcast_fingerprint is None:
            if self.transport == "shm":
                layout, handle = self._publish_model()
                replies = self.pool.broadcast(
                    _TASK_INIT_SHM,
                    self._model.schema,
                    self._backend,
                    self._cache_size,
                    layout,
                    handle,
                )
                counters.attach_ns += sum(replies)
            elif self.transport == "tcp":
                layout, block = pack_model(self._model)
                self.pool.broadcast(
                    _TASK_INIT_PACKED,
                    self._model.schema,
                    self._backend,
                    self._cache_size,
                    layout,
                    block,
                )
                counters.bytes_pickled += block.nbytes * self.max_workers
            else:
                self.pool.broadcast(
                    _TASK_INIT, self._model, self._backend, self._cache_size
                )
                counters.bytes_pickled += (
                    model_payload_bytes(self._model) * self.max_workers
                )
        elif fingerprint != self._broadcast_fingerprint:
            # In-place mutation (kb.update's absorb): same object, new
            # factors — workers swap the model, dropping their caches.
            if self.transport == "shm":
                layout, handle = self._publish_model()
                replies = self.pool.broadcast(
                    _TASK_SET_MODEL_SHM, layout, handle
                )
                counters.attach_ns += sum(replies)
            elif self.transport == "tcp":
                layout, block = pack_model(self._model)
                self.pool.broadcast(_TASK_SET_MODEL_PACKED, layout, block)
                counters.bytes_pickled += block.nbytes * self.max_workers
            else:
                self.pool.broadcast(_TASK_SET_MODEL, self._model)
                counters.bytes_pickled += (
                    model_payload_bytes(self._model) * self.max_workers
                )
        else:
            counters.broadcasts_skipped += 1
        self._broadcast_fingerprint = fingerprint

    def batch(self, queries) -> list[float]:
        """Evaluate ``queries`` concurrently; results in input order.

        A :class:`StaleWorkerStateError` — a reconnected remote worker
        whose pinned session died with its old connection — is recovered
        once by rebroadcasting the model (rebuilding every worker
        session) and retrying the shards; worker sessions are caches
        over the same model, so the retried answers are identical.
        """
        queries = list(queries)
        if not queries:
            return []
        self._ensure_current()
        shards = max(1, min(self.max_workers, len(queries)))
        bounds = shard_bounds(len(queries), shards)
        args = [(queries[a:b],) for a, b in bounds]
        try:
            results = self.pool.run(_TASK_BATCH, args)
        except StaleWorkerStateError:
            self.reset()
            self._ensure_current()
            results = self.pool.run(_TASK_BATCH, args)
        return [value for shard in results for value in shard]

    def close(self) -> None:
        self._broadcast_fingerprint = None
        self._block_handle = None
        self._block_view = None
        if self._tensor_pool is not None:
            self._tensor_pool.close()
        self.pool.close()

    def __enter__(self) -> "ParallelQueryEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ParallelQueryEvaluator(backend={self._backend!r}, "
            f"transport={self.transport!r}, pool={self.pool!r})"
        )
