"""Parallel execution subsystem: worker pools, sharded scans, batch serving.

Three layers:

- :mod:`repro.parallel.pool` — :class:`WorkerPool`, the fork/spawn-safe
  process pool with pinned per-worker state and a deterministic in-process
  fallback (``max_workers=1`` or ``inline=True``);
- :mod:`repro.parallel.scan` — :class:`ShardedScanExecutor`, discovery's
  per-order candidate scans sharded by attribute subset with bit-identical
  merged results (plumbed through ``DiscoveryEngine(executor=...)`` /
  ``DiscoveryConfig.max_workers``);
- :mod:`repro.parallel.query` — :class:`ParallelQueryEvaluator`, batch
  query evaluation across per-worker sessions with their own plan and
  marginal caches (plumbed through ``kb.session(max_workers=...)``).
"""

from repro.exceptions import ParallelError
from repro.parallel.pool import (
    WorkerPool,
    default_start_method,
    shard_bounds,
)
from repro.parallel.query import ParallelQueryEvaluator
from repro.parallel.scan import (
    LazyScanTests,
    ShardedScanExecutor,
    scan_order_sharded,
)

__all__ = [
    "LazyScanTests",
    "ParallelError",
    "ParallelQueryEvaluator",
    "ShardedScanExecutor",
    "WorkerPool",
    "default_start_method",
    "scan_order_sharded",
    "shard_bounds",
]
