"""Zero-copy shared-memory transport for the parallel subsystem.

PR 5's worker pool ships every payload through a pipe: the model joint is
pickled once per worker per scan, the contingency table once per order per
worker, and columnar scan results come back the same way.  That is why the
committed bench trajectory shows the parallel paths *slower* than serial
until warm — the cold path is dominated by serializing ~joint-sized byte
blobs that both sides already hold as dense float64 tensors.

This module is the transport seam that kills that pessimization:

- :class:`SharedTensorPool` (master side) manages
  ``multiprocessing.shared_memory`` segments with a small free list keyed
  by ``(shape, dtype)``, so repeated broadcasts of same-shaped tensors
  reuse one mapped segment instead of allocating (let alone pickling)
  per scan.  Every segment is created — and eventually unlinked — by the
  master, so a worker death can never leak a segment: cleanup runs on
  pool close, on garbage collection, and from an ``atexit`` hook.
- :class:`SharedTensorHandle` is what actually crosses the pipe: a
  ``(name, shape, dtype, generation)`` tuple a few dozen bytes long.
- :class:`SegmentAttachments` (worker side) caches attachments by segment
  name and returns read-only zero-copy numpy views, timing each first
  attach (``attach_ns``) for the transport instrumentation.
- :class:`TransportCounters` is that instrumentation: payload bytes moved
  through pickling vs shared memory, broadcasts skipped by fingerprint
  amortization, attach time.
- :func:`pack_model` / :func:`unpack_model` flatten a
  :class:`~repro.maxent.model.MaxEntModel`'s factors into one float64
  block (plus a tiny layout description) so the query evaluator can ship
  model state through a shared segment instead of pickling the model on
  every rebroadcast.

**Bit-identity.**  Shared views expose the exact float64 bytes the master
wrote — no encode/decode step exists that could perturb a ULP — so kernels
fed from a shared segment compute byte-for-byte the same results as
kernels fed the master's own arrays.  The property suites in
``tests/parallel`` run under both transports to enforce this.

Transport selection: ``REPRO_PARALLEL_TRANSPORT=pipe|shm|auto`` (default
``auto`` = shm where ``multiprocessing.shared_memory`` works — e.g. a
mounted ``/dev/shm`` on Linux — else pipe), overridable per executor via
the ``transport=`` parameter.  The pipe transport remains fully supported
for platforms without usable shared memory.
"""

from __future__ import annotations

import atexit
import os
import time
import weakref
from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import ParallelError
from repro.maxent.model import MaxEntModel

__all__ = [
    "SegmentAttachments",
    "SharedTensorHandle",
    "SharedTensorPool",
    "TRANSPORT_ENV_VAR",
    "TRANSPORTS",
    "TransportCounters",
    "model_payload_bytes",
    "pack_model",
    "resolve_transport",
    "shm_available",
    "unpack_model",
]

#: Transports an executor can run on.  ``auto`` (the selection default,
#: not itself a transport) resolves to shm where available, else pipe —
#: never tcp, which always needs a worker-address list and is only
#: engaged explicitly (argument, env var, or a non-empty address list;
#: see :func:`repro.distributed.resolve_distribution`).
TRANSPORTS = ("pipe", "shm", "tcp")
TRANSPORT_ENV_VAR = "REPRO_PARALLEL_TRANSPORT"

_shm_probe: bool | None = None


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` actually works here.

    Probed once per process by creating (and immediately unlinking) a
    tiny segment — an import alone is not enough: a platform may ship the
    module but lack a usable backing filesystem (no ``/dev/shm``, locked
    down containers), which surfaces as ``OSError`` on create.
    """
    global _shm_probe
    if _shm_probe is None:
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=16)
            segment.close()
            segment.unlink()
            _shm_probe = True
        except Exception:
            _shm_probe = False
    return _shm_probe


def resolve_transport(transport: str | None = None) -> str:
    """Resolve a transport choice to ``"pipe"``, ``"shm"``, or ``"tcp"``.

    Precedence: the explicit ``transport`` argument, then the
    ``REPRO_PARALLEL_TRANSPORT`` environment variable, then ``auto``.
    ``auto`` picks shm when :func:`shm_available`, else pipe — never tcp;
    an explicit ``shm`` on a platform without shared memory is an error
    rather than a silent downgrade.  ``tcp`` resolves to itself here;
    whether it actually engages (it needs worker addresses) is decided by
    :func:`repro.distributed.resolve_distribution`, which degrades an
    address-less tcp choice back to local execution.
    """
    choice = transport or os.environ.get(TRANSPORT_ENV_VAR) or "auto"
    choice = choice.strip().lower()
    if choice not in (*TRANSPORTS, "auto"):
        raise ParallelError(
            f"unknown parallel transport {choice!r}; choose one of "
            f"{(*TRANSPORTS, 'auto')}"
        )
    if choice == "auto":
        return "shm" if shm_available() else "pipe"
    if choice == "shm" and not shm_available():
        raise ParallelError(
            "shm transport requested but multiprocessing.shared_memory is "
            "not usable on this platform; set "
            f"{TRANSPORT_ENV_VAR}=pipe (or auto)"
        )
    return choice


@dataclass(frozen=True)
class SharedTensorHandle:
    """What crosses the pipe instead of a tensor: name, layout, generation.

    ``generation`` is a pool-wide monotonic counter stamped at publish
    time; it distinguishes successive payloads that reuse one segment
    (the whole point of the free list), so receivers and tests can assert
    they are reading the broadcast they were told about.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    generation: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


@dataclass
class TransportCounters:
    """Payload accounting of one transport endpoint.

    ``bytes_pickled`` / ``bytes_shared`` count tensor-payload bytes moved
    through the pipe vs through shared segments (array bytes — the pickle
    framing around them is noise at these sizes).  ``broadcasts_skipped``
    counts rebroadcasts avoided because the model fingerprint had not
    changed; ``attach_ns`` is cumulative worker-side segment attach time.
    ``bytes_wire`` counts every byte a TCP pool put on or read off the
    network (frames *and* headers — on the wire, framing is not noise),
    and ``round_trips`` counts dispatch cycles (one per ``pool.run``),
    the latency-bound quantity a remote deployment actually pays for.
    """

    bytes_pickled: int = 0
    bytes_shared: int = 0
    broadcasts_total: int = 0
    broadcasts_skipped: int = 0
    attach_ns: int = 0
    bytes_wire: int = 0
    round_trips: int = 0

    def snapshot(self) -> "TransportCounters":
        return replace(self)

    def delta(self, earlier: "TransportCounters") -> "TransportCounters":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return TransportCounters(
            bytes_pickled=self.bytes_pickled - earlier.bytes_pickled,
            bytes_shared=self.bytes_shared - earlier.bytes_shared,
            broadcasts_total=self.broadcasts_total - earlier.broadcasts_total,
            broadcasts_skipped=(
                self.broadcasts_skipped - earlier.broadcasts_skipped
            ),
            attach_ns=self.attach_ns - earlier.attach_ns,
            bytes_wire=self.bytes_wire - earlier.bytes_wire,
            round_trips=self.round_trips - earlier.round_trips,
        )

    def to_dict(self) -> dict:
        return {
            "bytes_pickled": self.bytes_pickled,
            "bytes_shared": self.bytes_shared,
            "broadcasts_total": self.broadcasts_total,
            "broadcasts_skipped": self.broadcasts_skipped,
            "attach_ns": self.attach_ns,
            "bytes_wire": self.bytes_wire,
            "round_trips": self.round_trips,
        }


#: Pools still alive, closed as a last resort from ``atexit`` so an
#: interpreter exit can never leave named segments behind (the POSIX
#: names outlive the process; the mappings do not).
_LIVE_POOLS: "weakref.WeakSet[SharedTensorPool]" = weakref.WeakSet()


def _close_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass


atexit.register(_close_live_pools)


class SharedTensorPool:
    """Master-side shared-memory segments with a ``(shape, dtype)`` free list.

    All segments are created here and unlinked here — workers only ever
    attach — which is what makes cleanup guaranteeable: :meth:`close`
    (idempotent; also run by ``__del__`` and the module ``atexit`` hook)
    unlinks every segment the pool ever created, whether currently free
    or in use, so no combination of worker death, executor abandonment,
    or interpreter shutdown leaks a ``/dev/shm`` entry.

    :meth:`acquire` hands out an uninitialized segment (reusing an exact
    ``(shape, dtype)`` match from the free list when one exists) together
    with a writable master-side view; :meth:`publish` is acquire + copy.
    :meth:`release` returns a segment to the free list for the next
    same-shaped broadcast — the reuse that amortizes repeated joint
    publishes down to one mapped segment per shape.
    """

    def __init__(self):
        self._segments: dict = {}  # name -> SharedMemory (everything owned)
        self._free: dict[tuple, list[str]] = {}
        self._in_use: dict[str, tuple] = {}
        self._generation = 0
        self._closed = False
        _LIVE_POOLS.add(self)

    # -- lifecycle ----------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Names of every live segment (free or in use) — for leak tests."""
        return tuple(self._segments)

    def next_generation(self) -> int:
        self._generation += 1
        return self._generation

    def acquire(
        self, shape, dtype
    ) -> tuple[SharedTensorHandle, np.ndarray]:
        """An owned segment for ``(shape, dtype)`` plus a writable view.

        Reuses a free exact-match segment when one exists; otherwise maps
        a new one.  The returned view aliases the shared bytes — writes
        through it are what attached workers read.
        """
        if self._closed:
            raise ParallelError("shared tensor pool is closed")
        key = (tuple(int(d) for d in shape), np.dtype(dtype).str)
        free = self._free.get(key)
        if free:
            name = free.pop()
        else:
            from multiprocessing import shared_memory

            nbytes = max(1, int(np.prod(key[0])) * np.dtype(dtype).itemsize)
            segment = shared_memory.SharedMemory(create=True, size=nbytes)
            name = segment.name
            self._segments[name] = segment
        self._in_use[name] = key
        handle = SharedTensorHandle(
            name=name,
            shape=key[0],
            dtype=key[1],
            generation=self.next_generation(),
        )
        view = np.ndarray(
            key[0], dtype=key[1], buffer=self._segments[name].buf
        )
        return handle, view

    def publish(self, array: np.ndarray) -> SharedTensorHandle:
        """Copy ``array`` into an owned segment; returns the handle."""
        array = np.ascontiguousarray(array)
        handle, view = self.acquire(array.shape, array.dtype)
        view[...] = array
        return handle

    def restamp(self, handle: SharedTensorHandle) -> SharedTensorHandle:
        """A fresh-generation handle for a segment rewritten in place."""
        return replace(handle, generation=self.next_generation())

    def release(self, handle: SharedTensorHandle) -> None:
        """Return a segment to the free list for same-shape reuse.

        Callers must only release once no worker will read the previous
        payload again (the executors release at order end / after a
        synchronous broadcast has returned).
        """
        key = self._in_use.pop(handle.name, None)
        if key is None or self._closed:
            return
        self._free.setdefault(key, []).append(handle.name)

    def close(self) -> None:
        """Close and unlink every owned segment; idempotent.

        Uses plain ``try/except`` throughout (no module-global helpers)
        so it stays safe when invoked during interpreter shutdown, where
        other modules may already be torn down.  A ``BufferError`` on
        ``close`` (a numpy view of the buffer still alive somewhere) does
        not stop the unlink: the name is removed either way and the
        mapping itself dies with the process.
        """
        self._closed = True
        segments, self._segments = self._segments, {}
        self._free = {}
        self._in_use = {}
        for segment in segments.values():
            try:
                segment.close()
            except BaseException:
                pass
            try:
                segment.unlink()
            except BaseException:
                pass

    def __enter__(self) -> "SharedTensorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except BaseException:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            f"{len(self._in_use)} in use, "
            f"{sum(len(v) for v in self._free.values())} free"
        )
        return f"SharedTensorPool({state})"


class SegmentAttachments:
    """Worker-side attach cache: one mapping per segment name.

    :meth:`view` returns a read-only zero-copy numpy view of the handle's
    segment, attaching (and timing the attach) only on first contact with
    a name — subsequent broadcasts that reuse the segment cost nothing
    but the ndarray construction.  Reads are ordered by the pool's pipe
    messages: the master writes the payload *before* dispatching the task
    that names it, so the view's contents are exactly that generation's.

    Views alias this object's mappings without pinning them (numpy
    releases its buffer export after construction), so the attachments
    object must outlive every view it handed out — workers keep theirs
    in per-worker state for exactly this reason.
    """

    def __init__(self):
        self._segments: dict = {}
        self._attach_ns = 0

    def view(
        self, handle: SharedTensorHandle, writable: bool = False
    ) -> np.ndarray:
        segment = self._segments.get(handle.name)
        if segment is None:
            from multiprocessing import shared_memory

            start = time.perf_counter_ns()
            try:
                segment = shared_memory.SharedMemory(name=handle.name)
            except (FileNotFoundError, OSError) as error:
                raise ParallelError(
                    f"cannot attach shared segment {handle.name!r}: {error}"
                ) from None
            self._attach_ns += time.perf_counter_ns() - start
            self._segments[handle.name] = segment
        array = np.ndarray(handle.shape, dtype=handle.dtype, buffer=segment.buf)
        if not writable:
            array.flags.writeable = False
        return array

    def take_attach_ns(self) -> int:
        """Attach time accumulated since the last take (and reset it)."""
        elapsed, self._attach_ns = self._attach_ns, 0
        return elapsed

    def close(self) -> None:
        """Drop every attachment (mappings close; names are the master's)."""
        segments, self._segments = self._segments, {}
        for segment in segments.values():
            try:
                segment.close()
            except BaseException:
                pass

    def __del__(self) -> None:
        try:
            self.close()
        except BaseException:
            pass


# -- model packing ----------------------------------------------------------------


def _model_layout(model: MaxEntModel) -> dict:
    """The packing order of a model's factors.

    Cell and table factors keep the model's dict *insertion* order — not a
    canonical sort — because
    :meth:`~repro.maxent.model.MaxEntModel.unnormalized` multiplies them
    in that order and float multiplication does not reassociate: an
    unpacked model must rebuild its dicts in the master's order or its
    joint drifts by an ulp.
    """
    return {
        "margins": [
            (name, int(model.margin_factors[name].shape[0]))
            for name in model.schema.names
        ],
        "cells": list(model.cell_factors),
        "tables": [
            (names, tuple(model.table_factors[names].shape))
            for names in model.table_factors
        ],
    }


def pack_model(model: MaxEntModel) -> tuple[dict, np.ndarray]:
    """Flatten a model's factors into ``(layout, float64 block)``.

    The block holds ``a0``, then every margin vector in schema order,
    then cell factors, then table factor tensors (raveled) — the latter
    two in the model's own dict order (see :func:`_model_layout`).  The
    layout is the tiny structural description that crosses the pipe; the
    block crosses shared memory.  Bit-exact: every float lands in the
    block unchanged and dict order is preserved, so
    :func:`unpack_model` rebuilds a model whose joint — not just its
    :meth:`~repro.maxent.model.MaxEntModel.fingerprint` — is
    byte-identical to the packed one's.
    """
    layout = _model_layout(model)
    parts: list[np.ndarray] = [np.array([model.a0], dtype=np.float64)]
    parts.extend(
        np.asarray(model.margin_factors[name], dtype=np.float64)
        for name, _length in layout["margins"]
    )
    if layout["cells"]:
        parts.append(
            np.array(
                [model.cell_factors[key] for key in layout["cells"]],
                dtype=np.float64,
            )
        )
    parts.extend(
        np.asarray(model.table_factors[names], dtype=np.float64).ravel()
        for names, _shape in layout["tables"]
    )
    return layout, np.concatenate(parts)


def unpack_model(schema, layout: dict, block: np.ndarray) -> MaxEntModel:
    """Rebuild the :func:`pack_model` model from a (shared) float block.

    Slices of ``block`` are views; :class:`~repro.maxent.model.MaxEntModel`
    copies them on construction, so the result owns its memory and stays
    valid after the segment is rewritten or unlinked.
    """
    offset = 1
    a0 = float(block[0])
    margin_factors = {}
    for name, length in layout["margins"]:
        margin_factors[name] = block[offset : offset + length]
        offset += length
    cell_factors = {}
    for key in layout["cells"]:
        key = (tuple(key[0]), tuple(key[1]))
        cell_factors[key] = float(block[offset])
        offset += 1
    table_factors = {}
    for names, shape in layout["tables"]:
        size = 1
        for dim in shape:
            size *= int(dim)
        table_factors[tuple(names)] = np.asarray(
            block[offset : offset + size]
        ).reshape(tuple(shape))
        offset += size
    if offset != len(block):
        raise ParallelError(
            f"model block holds {len(block)} floats but the layout "
            f"describes {offset}"
        )
    return MaxEntModel(
        schema, margin_factors, cell_factors, a0, table_factors
    )


def model_payload_bytes(model: MaxEntModel) -> int:
    """Tensor-payload bytes a model broadcast moves (either transport)."""
    total = 8  # a0
    for vector in model.margin_factors.values():
        total += vector.nbytes
    total += 8 * len(model.cell_factors)
    for array in model.table_factors.values():
        total += array.nbytes
    return total
