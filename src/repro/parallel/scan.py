"""Sharded discovery scans: one order's candidate pool across workers.

The discovery loop's hot path is the per-order candidate scan; PR 3
vectorized it, this module spreads it over cores.  The unit of sharding is
the attribute *subset*: each worker builds an
:class:`~repro.significance.kernels.OrderScanKernel` restricted to a
contiguous slice of the order's canonical subset list, so its data-side
statistics (counts, coefficient arrays, Eq-41 range tables) are built once
per order per worker and survive across the scan-adopt-refit rounds
exactly as the serial kernel's do.

Per scan the master publishes the model's joint once — per adoption it
broadcasts the adopted constraint so every worker's constraint-set copy
(and kernel cache invalidation) tracks the master's.  *How* the joint and
the scan results move is the transport's business
(:mod:`repro.parallel.shm`):

- under the default ``shm`` transport the joint is written into one
  shared-memory segment (republished only when ``model.fingerprint()``
  changes) and workers attach zero-copy read-only views; shard result
  float columns above ``result_threshold_bytes`` come back through
  per-worker shared output slabs, and data-side columns (candidate
  values, observed counts, determined/feasible tables) are shipped once
  per kernel-cache build and referenced by version afterwards;
- under ``pipe`` everything crosses the worker pipes by pickle — PR 5's
  behavior, kept selectable (``REPRO_PARALLEL_TRANSPORT``) for platforms
  without usable shared memory.

Three things keep the parallel path fast where a naive port would not be:

- workers ship scans in **columnar** form (primitive columns — several
  times cheaper to move than CellTest objects) and compute their
  shard-local greedy argmax themselves, so the master's per-scan serial
  work is a cheap decode of a few columns plus a max over shard bests;
- under shm those columns stay float64 *arrays* end to end — slab write,
  slab read, one memcpy each — never expanding into per-cell Python
  floats on the hot path;
- the full :class:`~repro.significance.result.CellTest` list the audit
  trail wants is wrapped in :class:`LazyScanTests` and only materialized
  when something actually reads it (trace serialization, summaries,
  equality checks) — never on the scan-adopt-refit hot path.

**Bit-identity.**  Candidate-pool accounting inside each shard kernel is
global (Eq 45 counts the whole order), every float is produced by the same
kernel code on the same inputs, shards are contiguous slices of the
canonical subset order, and the shard-best merge reproduces ``min()``'s
first-of-equals tie-breaking — so decisions, traces, and fitted models are
bit-identical to the serial path.  ``tests/parallel/`` enforces this
across shard counts and uneven splits.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.exceptions import ParallelError, StaleWorkerStateError
from repro.maxent.constraints import CellConstraint, ConstraintSet
from repro.maxent.model import MaxEntModel
from repro.parallel.pool import WorkerPool, shard_bounds
from repro.parallel.shm import (
    SegmentAttachments,
    SharedTensorPool,
    TransportCounters,
    resolve_transport,
)
from repro.significance.kernels import OrderScanKernel, tests_from_columns
from repro.significance.result import CellTest

__all__ = ["LazyScanTests", "ShardedScanExecutor", "scan_order_sharded"]

_TASK_INIT = f"{__name__}:_init_order"
_TASK_SCAN = f"{__name__}:_scan_shard"
_TASK_SCAN_SHM = f"{__name__}:_scan_shard_shm"
_TASK_SCAN_TCP = f"{__name__}:_scan_shard_tcp"
_TASK_ADOPT = f"{__name__}:_adopt"
_TASK_END = f"{__name__}:_end_order"

#: Shard float columns smaller than this return through the pipe even
#: under shm — below it the slab bookkeeping costs more than the copy.
DEFAULT_RESULT_THRESHOLD_BYTES = 32 * 1024


def _best_in_columns(columns) -> tuple[int, float] | None:
    """Shard-local greedy argmax: ``(flat index, m2 - m1)`` of the most
    significant cell, or None.  Mirrors
    :func:`repro.significance.mml.most_significant` exactly:
    ``np.argmin`` keeps the first of equal minima — the same cell a
    strict-``<`` scalar sweep (and ``min()``) lands on — and float64
    subtraction is IEEE-identical whether the columns arrive as lists or
    as arrays, so the pick cannot flip across transports."""
    best_index = None
    best_delta = 0.0
    offset = 0
    for subset_columns in columns:
        delta = np.asarray(subset_columns[8]) - np.asarray(subset_columns[7])
        if delta.size:
            position = int(np.argmin(delta))
            candidate = float(delta[position])
            if candidate < 0.0 and (
                best_index is None or candidate < best_delta
            ):
                best_index = offset + position
                best_delta = candidate
        offset += delta.size
    if best_index is None:
        return None
    return best_index, best_delta


def _test_at(columns, index: int) -> CellTest:
    """Materialize the single CellTest at a flat position in a shard.

    Slices a one-row view of the owning subset's columns and reuses
    :func:`~repro.significance.kernels.tests_from_columns` — one
    construction site for the columnar-to-CellTest mapping.
    """
    for subset_columns in columns:
        count = len(subset_columns[1])
        if index < count:
            row = (
                subset_columns[0],
                *(
                    # .item() exactly unwraps np scalars the array-backed
                    # columns yield, so the CellTest holds plain floats.
                    [
                        column[index].item()
                        if isinstance(column[index], np.generic)
                        else column[index]
                    ]
                    for column in subset_columns[1:]
                ),
            )
            return tests_from_columns([row])[0]
        index -= count
    raise ParallelError(f"flat index {index} beyond the shard's cells")


class LazyScanTests(Sequence):
    """The scan's CellTest list, materialized only when read.

    Behaves as the list the serial path produces — same length, items,
    order, equality — but the decode from columnar shard payloads runs on
    first access, keeping it off the scan-adopt-refit hot path.  The
    engine stores these in :class:`~repro.discovery.trace.ScanRecord`;
    trace serialization, summaries and equality checks materialize them
    transparently.
    """

    def __init__(self, shard_columns: list):
        self._shards = shard_columns
        self._count = sum(
            len(subset_columns[1])
            for columns in shard_columns
            for subset_columns in columns
        )
        self._tests: list[CellTest] | None = None
        self._lock = threading.Lock()

    def _materialize(self) -> list[CellTest]:
        # Serving reads traces from multiple threads; the lock makes the
        # decode happen exactly once, and every reader sees one list.
        if self._tests is None:
            with self._lock:
                if self._tests is None:
                    tests: list[CellTest] = []
                    for columns in self._shards:
                        tests.extend(tests_from_columns(columns))
                    self._tests = tests
                    self._shards = None  # the columns are no longer needed
        return self._tests

    @property
    def materialized(self) -> bool:
        return self._tests is not None

    def __getstate__(self) -> dict:
        # Locks don't pickle; a serialized instance carries the decoded
        # CellTests (they're being read anyway — this IS a read).
        return {"count": self._count, "tests": self._materialize()}

    def __setstate__(self, state: dict) -> None:
        self._count = state["count"]
        self._tests = state["tests"]
        self._shards = None
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self):
        return iter(self._materialize())

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyScanTests):
            return self._materialize() == other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        state = "materialized" if self.materialized else "lazy"
        return f"LazyScanTests({self._count} tests, {state})"


# -- worker-side tasks ------------------------------------------------------------


def _init_order(state, table_ref, order, constraints, priors, subsets) -> None:
    # Each worker owns a private constraint copy that evolves via _adopt
    # broadcasts.  Process workers get one implicitly from pickling; the
    # explicit copy keeps the inline fallback identical (adopting into
    # the master's set through a shared reference would double-add).
    #
    # The table is a broadcast-amortized reference: ("table", table) ships
    # it (pickled — once per executor lifetime for a given table object),
    # ("cached",) reuses the one from a previous order.
    kind = table_ref[0]
    if kind == "table":
        state["table"] = table_ref[1]
    elif "table" not in state:
        # StaleWorkerStateError so a master talking to a reconnected (or
        # fresh) remote worker can recover by re-shipping the full table.
        raise StaleWorkerStateError(
            "worker was told to reuse a cached table it never received"
        )
    state["kernel"] = OrderScanKernel(
        state["table"], order, constraints.copy(), priors, subsets=subsets
    )
    state["sent_versions"] = {}


def _scan_shard(state, joint):
    kernel = state.get("kernel")
    if kernel is None:
        raise ParallelError("scan worker has no active order")
    columns = kernel.scan_columns(None, joint=joint)
    return columns, _best_in_columns(columns)


def _scan_shard_tcp(state, joint_ref):
    """One shard scan under the tcp transport.

    The joint arrives fingerprint-amortized: ``("joint", fp, array)``
    ships it (cached worker-side, surviving order boundaries exactly as
    the master's ``_published_fingerprint`` does), ``("cached", fp)``
    reuses the cached copy.  A fingerprint mismatch — a reconnected
    worker whose cache died with its old connection, or a master that
    rebuilt its model — raises :class:`StaleWorkerStateError` rather
    than scanning against a stale joint; the master recovers by
    replaying the order with full payloads.
    """
    kernel = state.get("kernel")
    if kernel is None:
        raise StaleWorkerStateError(
            "scan worker has no active order (fresh connection?)"
        )
    kind = joint_ref[0]
    if kind == "joint":
        _kind, fingerprint, joint = joint_ref
        state["joint"] = joint
        state["joint_fingerprint"] = fingerprint
    else:
        _kind, fingerprint = joint_ref
        if "joint" not in state or state.get("joint_fingerprint") != (
            fingerprint
        ):
            raise StaleWorkerStateError(
                "worker was told to reuse a cached joint it does not "
                "hold (or holds for a different model fingerprint)"
            )
    columns = kernel.scan_columns(None, joint=state["joint"])
    return columns, _best_in_columns(columns)


def _scan_shard_shm(state, joint_handle, slab_handle):
    """One shard scan under the shm transport.

    Reads the joint through a zero-copy view of the master's segment,
    keeps the float columns as arrays, and returns
    ``(meta, block, best, attach_ns)``: per-subset metadata (data-side
    columns, or a version reference when the master already holds them),
    the concatenated float columns — written into the shared ``slab`` and
    ``None`` here when a slab was provided, else returned through the
    pipe as one array — the shard-local argmax, and segment attach time.
    """
    kernel = state.get("kernel")
    if kernel is None:
        raise ParallelError("scan worker has no active order")
    attachments = state.get("attachments")
    if attachments is None:
        attachments = state["attachments"] = SegmentAttachments()
    joint = attachments.view(joint_handle)
    columns = kernel.scan_columns(None, joint=joint, float_arrays=True)
    best = _best_in_columns(columns)
    sent_versions = state.setdefault("sent_versions", {})
    meta = []
    float_groups = []
    for subset_columns in columns:
        names = subset_columns[0]
        count = len(subset_columns[1])
        version = kernel.stats_version(names)
        if sent_versions.get(names) == version:
            meta.append(("cached", names, version, count))
        else:
            sent_versions[names] = version
            meta.append(
                (
                    "data",
                    names,
                    subset_columns[1],  # candidate_values
                    subset_columns[2],  # observed
                    subset_columns[9],  # determined
                    subset_columns[10],  # feasible_range
                    version,
                    count,
                )
            )
        float_groups.append((count, subset_columns[3:9]))
    if slab_handle is not None:
        slab = attachments.view(slab_handle, writable=True)
        offset = 0
        for count, group in float_groups:
            for column in group:
                slab[offset : offset + count] = column
                offset += count
        block = None
    else:
        parts = [column for _count, group in float_groups for column in group]
        block = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        )
    return meta, block, best, attachments.take_attach_ns()


def _adopt(state, constraint) -> None:
    kernel = state.get("kernel")
    if kernel is None:
        raise ParallelError("scan worker has no active order")
    kernel.constraints.add_cell(constraint)
    kernel.notify_adopted(constraint.key)


def _end_order(state) -> None:
    state.pop("kernel", None)
    state.pop("sent_versions", None)


# -- master side ------------------------------------------------------------------


class ShardedScanExecutor:
    """Runs per-order candidate scans sharded across a worker pool.

    The executor mirrors the engine's use of a single
    :class:`~repro.significance.kernels.OrderScanKernel`:
    :meth:`begin_order` distributes the order's subsets,
    :meth:`scan` evaluates the whole candidate pool (lazy tests plus the
    globally most significant cell, merged from shard bests),
    :meth:`notify_adopted` keeps worker constraint copies in sync after
    each adoption, :meth:`end_order` drops worker state.

    One executor (and its pool) serves a whole discovery run — workers
    persist across orders, only their per-order kernels are rebuilt.

    ``transport`` picks how tensors move (``"pipe"`` / ``"shm"`` /
    ``"tcp"`` / None = the ``REPRO_PARALLEL_TRANSPORT`` environment
    default, auto-selecting shm where available); ``counters``
    accumulates what it moved.  Under shm, shard result float columns
    whose upper-bound size reaches ``result_threshold_bytes`` return
    through per-worker shared slabs.  ``worker_addresses`` (or
    ``REPRO_WORKER_ADDRESSES`` under a tcp transport) names remote
    worker daemons — one pool slot per entry, shards running over TCP;
    a tcp choice with no addresses degrades to local execution (see
    :func:`repro.distributed.resolve_distribution`), and ``retry``
    bounds remote connect/read behavior.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        pool: WorkerPool | None = None,
        start_method: str | None = None,
        transport: str | None = None,
        result_threshold_bytes: int = DEFAULT_RESULT_THRESHOLD_BYTES,
        worker_addresses=None,
        retry=None,
    ):
        if pool is None:
            from repro.distributed.client import (
                TcpWorkerPool,
                resolve_distribution,
            )

            resolved, addresses = resolve_distribution(
                transport, worker_addresses
            )
            if resolved == "tcp":
                pool = TcpWorkerPool(addresses, retry=retry)
            else:
                if max_workers is None:
                    raise ParallelError(
                        "ShardedScanExecutor needs max_workers, a pool, "
                        "or worker addresses"
                    )
                pool = WorkerPool(max_workers, start_method=start_method)
            self.transport = resolved
        else:
            # A provided pool decides its own transport: a TcpWorkerPool
            # is tcp; a local pool resolves the local choice (an env-set
            # tcp cannot apply to it, so it falls back to auto).
            pool_transport = getattr(pool, "transport", None)
            if pool_transport is not None:
                self.transport = pool_transport
            else:
                resolved = resolve_transport(transport)
                if resolved == "tcp":
                    resolved = resolve_transport("auto")
                self.transport = resolved
        self.pool = pool
        self.max_workers = pool.max_workers
        self.result_threshold_bytes = int(result_threshold_bytes)
        # A tcp pool charges wire traffic to its own counters object;
        # adopting it makes --profile and bench records see bytes_wire /
        # round_trips without a second accounting site.
        pool_counters = getattr(pool, "counters", None)
        self.counters = (
            pool_counters
            if isinstance(pool_counters, TransportCounters)
            else TransportCounters()
        )
        self._active_shards = 0
        self._tensor_pool = (
            SharedTensorPool() if self.transport == "shm" else None
        )
        self._joint_handle = None
        self._joint_view: np.ndarray | None = None
        self._published_fingerprint: int | None = None
        # Strong reference on purpose: `is` against a live object is the
        # only safe identity test (an id() can be recycled after GC).
        self._last_table: ContingencyTable | None = None
        # What begin_order was last called with, kept so the tcp path can
        # replay the whole order after a worker reports stale state.
        self._order_args: tuple | None = None
        self._slab_handles: list = []
        self._slab_views: list = []
        self._data_cache: list[dict] = []

    def begin_order(
        self,
        table: ContingencyTable,
        order: int,
        constraints: ConstraintSet,
        priors=None,
    ) -> None:
        """Broadcast the order's state; shard its subsets over workers."""
        subsets = table.subsets_of_order(order)
        shards = max(1, min(self.max_workers, len(subsets)))
        bounds = shard_bounds(len(subsets), shards)
        self._active_shards = shards
        if table is self._last_table:
            table_ref = ("cached",)
        else:
            table_ref = ("table", table)
        try:
            self.pool.run(
                _TASK_INIT,
                [
                    (table_ref, order, constraints, priors,
                     tuple(subsets[a:b]))
                    for a, b in bounds
                ],
            )
        except StaleWorkerStateError:
            # A reconnected remote worker lost its cached table; re-ship
            # it in full.  (Local workers can never hit this: their
            # state lives exactly as long as their pipe.)
            self._published_fingerprint = None
            self.pool.run(
                _TASK_INIT,
                [
                    (("table", table), order, constraints, priors,
                     tuple(subsets[a:b]))
                    for a, b in bounds
                ],
            )
        self._order_args = (table, order, constraints, priors)
        self._last_table = table
        # _published_fingerprint deliberately survives order boundaries:
        # when nothing was adopted at the previous order the model (and
        # its joint segment) is unchanged, so the next order's first scan
        # skips the republish too.
        if self.transport == "shm":
            self._begin_order_shm(table, [subsets[a:b] for a, b in bounds])

    def _begin_order_shm(self, table: ContingencyTable, shard_subsets) -> None:
        """Acquire per-shard output slabs sized to the order's shards.

        A slab holds a shard's six float columns laid out back to back;
        the cell-count upper bound (every marginal cell of every shard
        subset — candidates can only be fewer) sizes it once per order.
        """
        self._release_slabs()
        schema = table.schema
        for subsets in shard_subsets:
            cells = 0
            for names in subsets:
                size = 1
                for name in names:
                    size *= schema.attribute(name).cardinality
                cells += size
            floats = cells * 6
            if floats * 8 >= self.result_threshold_bytes:
                handle, view = self._tensor_pool.acquire(
                    (floats,), np.float64
                )
                self._slab_handles.append(handle)
                self._slab_views.append(view)
            else:
                self._slab_handles.append(None)
                self._slab_views.append(None)
            self._data_cache.append({})

    def scan(
        self, model: MaxEntModel
    ) -> tuple[LazyScanTests, CellTest | None]:
        """One whole-order scan.

        Returns ``(tests, best)``: the lazily-materialized CellTest list
        (canonical order) and the most significant cell — the same one
        :func:`~repro.significance.mml.most_significant` would pick from
        the serial scan, merged from shard-local bests without decoding
        the full results.
        """
        if self._active_shards == 0:
            raise ParallelError("no active order; call begin_order first")
        if self.transport == "shm":
            replies = self._dispatch_scan_shm(model)
            shard_columns = self._decode_shm_replies(replies)
            merged = [(columns, reply[2]) for columns, reply in
                      zip(shard_columns, replies)]
        elif self.transport == "tcp":
            merged = self._dispatch_scan_tcp(model)
            shard_columns = [columns for columns, _best in merged]
        else:
            joint = np.ascontiguousarray(model.joint())
            self.counters.broadcasts_total += 1
            self.counters.bytes_pickled += (
                joint.nbytes * self._active_shards
            )
            merged = self.pool.run(
                _TASK_SCAN, [(joint,)] * self._active_shards
            )
            shard_columns = [columns for columns, _best in merged]
            self.counters.bytes_pickled += 8 * 6 * sum(
                len(subset_columns[1])
                for columns in shard_columns
                for subset_columns in columns
            )
        best_shard = None
        best_index = None
        best_delta = 0.0
        for shard, (_columns, best) in enumerate(merged):
            if best is None:
                continue
            index, delta = best
            # Strict < : the earliest shard keeps ties, exactly like the
            # serial min() over the concatenated candidate list.
            if best_index is None or delta < best_delta:
                best_shard, best_index, best_delta = shard, index, delta
        chosen = (
            _test_at(shard_columns[best_shard], best_index)
            if best_index is not None
            else None
        )
        return LazyScanTests(shard_columns), chosen

    def _dispatch_scan_shm(self, model: MaxEntModel) -> list:
        """Publish the joint (fingerprint-amortized) and run the shard scans."""
        counters = self.counters
        fingerprint = model.fingerprint()
        counters.broadcasts_total += 1
        if (
            self._joint_handle is not None
            and fingerprint == self._published_fingerprint
        ):
            # Same model since the last scan: the segment already holds
            # this exact joint — skip materialization and the copy.
            counters.broadcasts_skipped += 1
        else:
            joint = np.ascontiguousarray(model.joint())
            if (
                self._joint_handle is not None
                and self._joint_handle.shape == joint.shape
                and self._joint_handle.dtype == joint.dtype.str
            ):
                self._joint_view[...] = joint
                self._joint_handle = self._tensor_pool.restamp(
                    self._joint_handle
                )
            else:
                if self._joint_handle is not None:
                    self._tensor_pool.release(self._joint_handle)
                self._joint_handle, self._joint_view = (
                    self._tensor_pool.acquire(joint.shape, joint.dtype)
                )
                self._joint_view[...] = joint
            self._published_fingerprint = fingerprint
            counters.bytes_shared += joint.nbytes
        return self.pool.run(
            _TASK_SCAN_SHM,
            [
                (self._joint_handle, self._slab_handles[shard])
                for shard in range(self._active_shards)
            ],
        )

    def _dispatch_scan_tcp(self, model: MaxEntModel) -> list:
        """Ship the joint (fingerprint-amortized) and scan over TCP.

        A :class:`StaleWorkerStateError` from any worker — a reconnected
        connection whose pinned kernel/joint died with its predecessor —
        is recovered by replaying the whole order with full payloads
        (table, kernel state, joint) and scanning again.  The replay
        rebuilds each worker kernel from the master's *current*
        constraint set, which is exactly the state an uninterrupted
        worker holds, so the retried scan stays bit-identical.
        """
        counters = self.counters
        fingerprint = model.fingerprint()
        counters.broadcasts_total += 1
        if fingerprint == self._published_fingerprint:
            counters.broadcasts_skipped += 1
            joint_ref = ("cached", fingerprint)
        else:
            joint = np.ascontiguousarray(model.joint())
            counters.bytes_pickled += joint.nbytes * self._active_shards
            joint_ref = ("joint", fingerprint, joint)
        try:
            replies = self.pool.run(
                _TASK_SCAN_TCP, [(joint_ref,)] * self._active_shards
            )
        except StaleWorkerStateError:
            self._replay_order()
            joint = np.ascontiguousarray(model.joint())
            counters.broadcasts_total += 1
            counters.bytes_pickled += joint.nbytes * self._active_shards
            replies = self.pool.run(
                _TASK_SCAN_TCP,
                [(("joint", fingerprint, joint),)] * self._active_shards,
            )
        self._published_fingerprint = fingerprint
        counters.bytes_pickled += 8 * 6 * sum(
            len(subset_columns[1])
            for columns, _best in replies
            for subset_columns in columns
        )
        return replies

    def _replay_order(self) -> None:
        """Re-ship the active order in full after a stale-state report."""
        if self._order_args is None:
            raise ParallelError("no active order; call begin_order first")
        table, order, constraints, priors = self._order_args
        self._last_table = None
        self._published_fingerprint = None
        self.begin_order(table, order, constraints, priors)

    def _decode_shm_replies(self, replies: list) -> list:
        """Rebuild per-shard columnar results from slabs and metadata.

        Float columns are sliced out of one private copy of the slab's
        used region (the slab itself is rewritten next scan; LazyScanTests
        may be read long after), data-side columns come from the reply or
        from the per-shard version cache.
        """
        counters = self.counters
        shard_columns = []
        for shard, (meta, block, _best, attach_ns) in enumerate(replies):
            counters.attach_ns += attach_ns
            floats_used = 6 * sum(entry[-1] for entry in meta)
            if block is None:
                block = self._slab_views[shard][:floats_used].copy()
                counters.bytes_shared += floats_used * 8
            else:
                counters.bytes_pickled += block.nbytes
            cache = self._data_cache[shard]
            columns = []
            offset = 0
            for entry in meta:
                if entry[0] == "data":
                    (_kind, names, candidate_values, observed, determined,
                     feasible, version, count) = entry
                    cache[names] = (
                        version, candidate_values, observed, determined,
                        feasible,
                    )
                else:
                    _kind, names, version, count = entry
                    cached = cache.get(names)
                    if cached is None or cached[0] != version:
                        raise ParallelError(
                            f"shard {shard} referenced data columns "
                            f"{names}@{version} the master does not hold"
                        )
                    (_version, candidate_values, observed, determined,
                     feasible) = cached
                floats = []
                for _ in range(6):
                    floats.append(block[offset : offset + count])
                    offset += count
                columns.append(
                    (names, candidate_values, observed, *floats,
                     determined, feasible)
                )
            shard_columns.append(columns)
        return shard_columns

    def notify_adopted(self, constraint: CellConstraint) -> None:
        """Sync an adoption into every worker's constraint copy."""
        if self._active_shards == 0:
            raise ParallelError("no active order; call begin_order first")
        self.pool.run(_TASK_ADOPT, [(constraint,)] * self._active_shards)

    def end_order(self) -> None:
        """Drop worker-side kernels (workers stay alive for the next order).

        Safe on a dead pool: the engine calls this from a ``finally``, and
        raising here would mask the error that killed the scan.
        """
        if self._active_shards and not self.pool.closed:
            self.pool.run(_TASK_END, [()] * self._active_shards)
        self._active_shards = 0
        self._release_slabs()

    def _release_slabs(self) -> None:
        if self._tensor_pool is not None and not self._tensor_pool.closed:
            for handle in self._slab_handles:
                if handle is not None:
                    self._tensor_pool.release(handle)
        self._slab_handles = []
        self._slab_views = []
        self._data_cache = []

    def close(self) -> None:
        self._active_shards = 0
        self._slab_handles = []
        self._slab_views = []
        self._data_cache = []
        self._joint_handle = None
        self._joint_view = None
        self._published_fingerprint = None
        self._last_table = None
        self._order_args = None
        if self._tensor_pool is not None:
            self._tensor_pool.close()
        self.pool.close()

    def __enter__(self) -> "ShardedScanExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ShardedScanExecutor(pool={self.pool!r})"


def scan_order_sharded(
    table: ContingencyTable,
    model: MaxEntModel,
    order: int,
    constraints: ConstraintSet,
    priors=None,
    shards: list[tuple[int, int]] | None = None,
    num_shards: int = 2,
) -> list[CellTest]:
    """One sharded whole-order scan, run in-process.

    The pure sharding algebra without a pool: split the order's subsets at
    ``shards`` bounds (default: :func:`~repro.parallel.pool.shard_bounds`
    over ``num_shards``), scan each slice with a restricted kernel, and
    concatenate.  Exists so equivalence tests can exercise arbitrary —
    including adversarially uneven — splits cheaply; the executor above
    runs the same per-shard code in worker processes.
    """
    subsets = table.subsets_of_order(order)
    if shards is None:
        shards = shard_bounds(len(subsets), num_shards)
    joint = model.joint()
    tests: list[CellTest] = []
    for start, stop in shards:
        kernel = OrderScanKernel(
            table,
            order,
            constraints,
            priors,
            subsets=tuple(subsets[start:stop]),
        )
        tests.extend(kernel.scan(None, joint=joint))
    return tests
