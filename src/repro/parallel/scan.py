"""Sharded discovery scans: one order's candidate pool across workers.

The discovery loop's hot path is the per-order candidate scan; PR 3
vectorized it, this module spreads it over cores.  The unit of sharding is
the attribute *subset*: each worker builds an
:class:`~repro.significance.kernels.OrderScanKernel` restricted to a
contiguous slice of the order's canonical subset list, so its data-side
statistics (counts, coefficient arrays, Eq-41 range tables) are built once
per order per worker and survive across the scan-adopt-refit rounds
exactly as the serial kernel's do.

Per scan the master materializes the model's joint once and broadcasts the
array; per adoption it broadcasts the adopted constraint so every worker's
constraint-set copy (and kernel cache invalidation) tracks the master's.

Two things keep the parallel path fast where a naive port would not be:

- workers ship scans in **columnar** form (lists of primitives — several
  times cheaper to pickle than CellTest objects) and compute their
  shard-local greedy argmax themselves, so the master's per-scan serial
  work is a cheap decode of a few lists plus a max over shard bests;
- the full :class:`~repro.significance.result.CellTest` list the audit
  trail wants is wrapped in :class:`LazyScanTests` and only materialized
  when something actually reads it (trace serialization, summaries,
  equality checks) — never on the scan-adopt-refit hot path.

**Bit-identity.**  Candidate-pool accounting inside each shard kernel is
global (Eq 45 counts the whole order), every float is produced by the same
kernel code on the same inputs, shards are contiguous slices of the
canonical subset order, and the shard-best merge reproduces ``min()``'s
first-of-equals tie-breaking — so decisions, traces, and fitted models are
bit-identical to the serial path.  ``tests/parallel/`` enforces this
across shard counts and uneven splits.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.exceptions import ParallelError
from repro.maxent.constraints import CellConstraint, ConstraintSet
from repro.maxent.model import MaxEntModel
from repro.parallel.pool import WorkerPool, shard_bounds
from repro.significance.kernels import OrderScanKernel, tests_from_columns
from repro.significance.result import CellTest

__all__ = ["LazyScanTests", "ShardedScanExecutor", "scan_order_sharded"]

_TASK_INIT = f"{__name__}:_init_order"
_TASK_SCAN = f"{__name__}:_scan_shard"
_TASK_ADOPT = f"{__name__}:_adopt"
_TASK_END = f"{__name__}:_end_order"


def _best_in_columns(columns) -> tuple[int, float] | None:
    """Shard-local greedy argmax: ``(flat index, m2 - m1)`` of the most
    significant cell, or None.  Mirrors
    :func:`repro.significance.mml.most_significant` exactly — strict
    ``<`` keeps the first of equal deltas, matching ``min()``."""
    best_index = None
    best_delta = 0.0
    offset = 0
    for subset_columns in columns:
        m1 = subset_columns[7]
        m2 = subset_columns[8]
        for i in range(len(m1)):
            delta = m2[i] - m1[i]
            if delta < 0.0 and (best_index is None or delta < best_delta):
                best_index = offset + i
                best_delta = delta
        offset += len(m1)
    if best_index is None:
        return None
    return best_index, best_delta


def _test_at(columns, index: int) -> CellTest:
    """Materialize the single CellTest at a flat position in a shard.

    Slices a one-row view of the owning subset's columns and reuses
    :func:`~repro.significance.kernels.tests_from_columns` — one
    construction site for the columnar-to-CellTest mapping.
    """
    for subset_columns in columns:
        count = len(subset_columns[1])
        if index < count:
            row = (
                subset_columns[0],
                *([column[index]] for column in subset_columns[1:]),
            )
            return tests_from_columns([row])[0]
        index -= count
    raise ParallelError(f"flat index {index} beyond the shard's cells")


class LazyScanTests(Sequence):
    """The scan's CellTest list, materialized only when read.

    Behaves as the list the serial path produces — same length, items,
    order, equality — but the decode from columnar shard payloads runs on
    first access, keeping it off the scan-adopt-refit hot path.  The
    engine stores these in :class:`~repro.discovery.trace.ScanRecord`;
    trace serialization, summaries and equality checks materialize them
    transparently.
    """

    def __init__(self, shard_columns: list):
        self._shards = shard_columns
        self._count = sum(
            len(subset_columns[1])
            for columns in shard_columns
            for subset_columns in columns
        )
        self._tests: list[CellTest] | None = None

    def _materialize(self) -> list[CellTest]:
        if self._tests is None:
            tests: list[CellTest] = []
            for columns in self._shards:
                tests.extend(tests_from_columns(columns))
            self._tests = tests
            self._shards = None  # the columns are no longer needed
        return self._tests

    @property
    def materialized(self) -> bool:
        return self._tests is not None

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self):
        return iter(self._materialize())

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyScanTests):
            return self._materialize() == other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        state = "materialized" if self.materialized else "lazy"
        return f"LazyScanTests({self._count} tests, {state})"


# -- worker-side tasks ------------------------------------------------------------


def _init_order(state, table, order, constraints, priors, subsets) -> None:
    # Each worker owns a private constraint copy that evolves via _adopt
    # broadcasts.  Process workers get one implicitly from pickling; the
    # explicit copy keeps the inline fallback identical (adopting into
    # the master's set through a shared reference would double-add).
    state["kernel"] = OrderScanKernel(
        table, order, constraints.copy(), priors, subsets=subsets
    )


def _scan_shard(state, joint):
    kernel = state.get("kernel")
    if kernel is None:
        raise ParallelError("scan worker has no active order")
    columns = kernel.scan_columns(None, joint=joint)
    return columns, _best_in_columns(columns)


def _adopt(state, constraint) -> None:
    kernel = state.get("kernel")
    if kernel is None:
        raise ParallelError("scan worker has no active order")
    kernel.constraints.add_cell(constraint)
    kernel.notify_adopted(constraint.key)


def _end_order(state) -> None:
    state.pop("kernel", None)


# -- master side ------------------------------------------------------------------


class ShardedScanExecutor:
    """Runs per-order candidate scans sharded across a worker pool.

    The executor mirrors the engine's use of a single
    :class:`~repro.significance.kernels.OrderScanKernel`:
    :meth:`begin_order` distributes the order's subsets,
    :meth:`scan` evaluates the whole candidate pool (lazy tests plus the
    globally most significant cell, merged from shard bests),
    :meth:`notify_adopted` keeps worker constraint copies in sync after
    each adoption, :meth:`end_order` drops worker state.

    One executor (and its pool) serves a whole discovery run — workers
    persist across orders, only their per-order kernels are rebuilt.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        pool: WorkerPool | None = None,
        start_method: str | None = None,
    ):
        if pool is None:
            if max_workers is None:
                raise ParallelError(
                    "ShardedScanExecutor needs max_workers or a pool"
                )
            pool = WorkerPool(max_workers, start_method=start_method)
        self.pool = pool
        self.max_workers = pool.max_workers
        self._active_shards = 0

    def begin_order(
        self,
        table: ContingencyTable,
        order: int,
        constraints: ConstraintSet,
        priors=None,
    ) -> None:
        """Broadcast the order's state; shard its subsets over workers."""
        subsets = table.subsets_of_order(order)
        shards = max(1, min(self.max_workers, len(subsets)))
        bounds = shard_bounds(len(subsets), shards)
        self._active_shards = shards
        self.pool.run(
            _TASK_INIT,
            [
                (table, order, constraints, priors, tuple(subsets[a:b]))
                for a, b in bounds
            ],
        )

    def scan(
        self, model: MaxEntModel
    ) -> tuple[LazyScanTests, CellTest | None]:
        """One whole-order scan.

        Returns ``(tests, best)``: the lazily-materialized CellTest list
        (canonical order) and the most significant cell — the same one
        :func:`~repro.significance.mml.most_significant` would pick from
        the serial scan, merged from shard-local bests without decoding
        the full results.
        """
        if self._active_shards == 0:
            raise ParallelError("no active order; call begin_order first")
        joint = np.ascontiguousarray(model.joint())
        replies = self.pool.run(
            _TASK_SCAN, [(joint,)] * self._active_shards
        )
        shard_columns = [columns for columns, _best in replies]
        best_shard = None
        best_index = None
        best_delta = 0.0
        for shard, (columns, best) in enumerate(replies):
            if best is None:
                continue
            index, delta = best
            # Strict < : the earliest shard keeps ties, exactly like the
            # serial min() over the concatenated candidate list.
            if best_index is None or delta < best_delta:
                best_shard, best_index, best_delta = shard, index, delta
        chosen = (
            _test_at(shard_columns[best_shard], best_index)
            if best_index is not None
            else None
        )
        return LazyScanTests(shard_columns), chosen

    def notify_adopted(self, constraint: CellConstraint) -> None:
        """Sync an adoption into every worker's constraint copy."""
        if self._active_shards == 0:
            raise ParallelError("no active order; call begin_order first")
        self.pool.run(_TASK_ADOPT, [(constraint,)] * self._active_shards)

    def end_order(self) -> None:
        """Drop worker-side kernels (workers stay alive for the next order).

        Safe on a dead pool: the engine calls this from a ``finally``, and
        raising here would mask the error that killed the scan.
        """
        if self._active_shards and not self.pool.closed:
            self.pool.run(_TASK_END, [()] * self._active_shards)
        self._active_shards = 0

    def close(self) -> None:
        self._active_shards = 0
        self.pool.close()

    def __enter__(self) -> "ShardedScanExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ShardedScanExecutor(pool={self.pool!r})"


def scan_order_sharded(
    table: ContingencyTable,
    model: MaxEntModel,
    order: int,
    constraints: ConstraintSet,
    priors=None,
    shards: list[tuple[int, int]] | None = None,
    num_shards: int = 2,
) -> list[CellTest]:
    """One sharded whole-order scan, run in-process.

    The pure sharding algebra without a pool: split the order's subsets at
    ``shards`` bounds (default: :func:`~repro.parallel.pool.shard_bounds`
    over ``num_shards``), scan each slice with a restricted kernel, and
    concatenate.  Exists so equivalence tests can exercise arbitrary —
    including adversarially uneven — splits cheaply; the executor above
    runs the same per-shard code in worker processes.
    """
    subsets = table.subsets_of_order(order)
    if shards is None:
        shards = shard_bounds(len(subsets), num_shards)
    joint = model.joint()
    tests: list[CellTest] = []
    for start, stop in shards:
        kernel = OrderScanKernel(
            table,
            order,
            constraints,
            priors,
            subsets=tuple(subsets[start:stop]),
        )
        tests.extend(kernel.scan(None, joint=joint))
    return tests
