"""Experiment harness: regenerate every table and figure of the paper.

Each ``reproduce_*`` function returns ``(rows, text)`` — structured rows
for assertions plus a rendered report — and is shared by the benchmark
suite and the CLI.  Experiment ids follow DESIGN.md's index (E1-E8 paper
artifacts, A1-A3 ablations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.bic_selector import BICSelectorConfig, discover_bic
from repro.baselines.chi2_selector import Chi2SelectorConfig, discover_chi2
from repro.baselines.independence import independence_model
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import discover
from repro.discovery.trace import DiscoveryResult
from repro.eval.paper import (
    PAPER_TABLE1,
    TABLE2_CELL,
    paper_table,
)
from repro.eval.tables import format_table
from repro.maxent import elimination
from repro.maxent.constraints import ConstraintSet
from repro.maxent.gevarter import fit_gevarter
from repro.maxent.ipf import fit_ipf
from repro.significance.mml import scan_order
from repro.synth.generators import (
    random_planted_population,
    recovery_score,
)


# -- E1 / E2: Figures 1 and 2 -------------------------------------------------------


def reproduce_figure1() -> str:
    """Figure 1: the two contingency-table slices."""
    table = paper_table()
    return (
        "FIGURE 1: DATA ON SMOKING AND CANCER (N = "
        f"{table.total})\n\n" + table.render("SMOKING", "CANCER")
    )


def reproduce_figure2() -> str:
    """Figure 2: same slices with marginal sums, plus the collapsed AB table."""
    table = paper_table()
    collapsed = table.marginal_table(["SMOKING", "CANCER"])
    return (
        "FIGURE 2: CANCER DATA WITH MARGINALS\n\n"
        + table.render("SMOKING", "CANCER", show_marginals=True)
        + "\n\nRELATION OF SMOKING TO CANCER (summed over FAMILY_HISTORY)\n"
        + collapsed.render("SMOKING", "CANCER", show_marginals=True)
    )


# -- E3: Table 1 --------------------------------------------------------------------


@dataclass
class Table1Comparison:
    """One cell's paper-vs-measured Table-1 row."""

    subset: tuple[str, str]
    values: tuple[int, int]
    ours_probability: float
    ours_mean: float
    ours_sd: float
    ours_num_sd: float
    ours_delta: float
    ours_ratio: float
    paper_delta: float
    paper_ratio: float | None
    sign_match: bool


def reproduce_table1() -> tuple[list[Table1Comparison], str]:
    """Table 1: second-order MML scan at the independence model."""
    table = paper_table()
    model = independence_model(table)
    constraints = ConstraintSet.first_order(table)
    tests = {
        (t.attributes, t.values): t
        for t in scan_order(table, model, 2, constraints)
    }
    comparisons = []
    for reference in PAPER_TABLE1:
        ours = tests[(reference.subset, reference.values)]
        comparisons.append(
            Table1Comparison(
                subset=reference.subset,
                values=reference.values,
                ours_probability=ours.predicted_probability,
                ours_mean=ours.mean,
                ours_sd=ours.sd,
                ours_num_sd=ours.num_sd,
                ours_delta=ours.delta,
                ours_ratio=ours.likelihood_ratio,
                paper_delta=reference.delta,
                paper_ratio=reference.ratio,
                sign_match=(ours.delta < 0) == (reference.delta < 0),
            )
        )
    headers = [
        "cell", "p (ours)", "mean", "sd", "#sd", "m2-m1 (ours)",
        "m2-m1 (paper)", "ratio (ours)", "ratio (paper)", "sign ok",
    ]
    rows = []
    for c in comparisons:
        label = "".join(n[0] for n in c.subset) + "".join(
            str(v + 1) for v in c.values
        )
        rows.append(
            [
                label,
                c.ours_probability,
                c.ours_mean,
                c.ours_sd,
                c.ours_num_sd,
                c.ours_delta,
                c.paper_delta,
                min(c.ours_ratio, 9999.0),
                c.paper_ratio if c.paper_ratio is not None else "<.1",
                c.sign_match,
            ]
        )
    text = "TABLE 1: SECOND-ORDER SIGNIFICANCE SCAN\n\n" + format_table(
        headers, rows
    )
    return comparisons, text


# -- E4: Table 2 --------------------------------------------------------------------

#: Trace columns shown for Table 2 (the paper's b, c, a's selection).
TABLE2_COLUMNS = [
    "a^SMOKING,FAMILY_HISTORY_1,2",
    "a^SMOKING_1",
    "a^SMOKING_2",
    "a^SMOKING_3",
    "a^CANCER_1",
    "a^CANCER_2",
    "a^FAMILY_HISTORY_1",
    "a^FAMILY_HISTORY_2",
    "a0",
]


def reproduce_table2(tol: float = 1e-10, max_sweeps: int = 200):
    """Table 2: Gevarter iteration trace fitting the N^AC(1,2) constraint.

    Returns ``(fit result, text)``; the fit's trace holds one full a-value
    snapshot per sweep, starting with the first-order initial values.
    """
    table = paper_table()
    constraints = ConstraintSet.first_order(table)
    subset, values = TABLE2_CELL
    constraints.add_cell(
        constraints.cell_from_table(table, list(subset), list(values))
    )
    fit = fit_gevarter(
        constraints, tol=tol, max_sweeps=max_sweeps, record_trace=True
    )
    headers = ["sweep"] + [c.split("^")[-1] for c in TABLE2_COLUMNS]
    rows = []
    for sweep, snapshot in enumerate(fit.trace):
        rows.append([sweep] + [snapshot[c] for c in TABLE2_COLUMNS])
    text = (
        "TABLE 2: ITERATIVE CALCULATION OF a VALUES "
        f"(converged={fit.converged}, sweeps={fit.sweeps})\n\n"
        + format_table(headers, rows, floatfmt=".4f")
    )
    return fit, text


# -- E5: Figure 3 (full discovery) ---------------------------------------------------


def reproduce_discovery(
    config: DiscoveryConfig | None = None,
) -> tuple[DiscoveryResult, str]:
    """Figure 3: the complete discovery run on the paper's data."""
    table = paper_table()
    result = discover(table, config)
    lines = ["FIGURE 3: FULL DISCOVERY RUN\n", result.summary(), ""]
    model = result.model
    lines.append("Sample queries against the acquired knowledge:")
    for query_target, query_given in [
        ({"CANCER": "yes"}, {"SMOKING": "smoker"}),
        ({"CANCER": "yes"}, {"SMOKING": "non-smoker"}),
        ({"CANCER": "yes"}, {"FAMILY_HISTORY": "yes"}),
        ({"CANCER": "yes"}, {}),
    ]:
        probability = (
            model.conditional(query_target, query_given)
            if query_given
            else model.probability(query_target)
        )
        given_text = (
            " | " + ", ".join(f"{k}={v}" for k, v in query_given.items())
            if query_given
            else ""
        )
        target_text = ", ".join(f"{k}={v}" for k, v in query_target.items())
        lines.append(f"  P({target_text}{given_text}) = {probability:.4f}")
    return result, "\n".join(lines)


# -- E6: Figure 4 (solver comparison) -------------------------------------------------


def reproduce_solver_comparison(tol: float = 1e-10):
    """Figure 4 ablation: IPF vs Gevarter convergence on the same system."""
    table = paper_table()
    constraints = ConstraintSet.first_order(table)
    subset, values = TABLE2_CELL
    constraints.add_cell(
        constraints.cell_from_table(table, list(subset), list(values))
    )
    ipf = fit_ipf(constraints, tol=tol)
    gevarter = fit_gevarter(constraints, tol=tol, record_trace=False)
    agreement = float(
        np.abs(ipf.model.joint() - gevarter.model.joint()).max()
    )
    headers = ["solver", "sweeps", "final violation", "joint max |diff|"]
    rows = [
        ["ipf", ipf.sweeps, ipf.max_violation, agreement],
        ["gevarter", gevarter.sweeps, gevarter.max_violation, agreement],
    ]
    text = "FIGURE 4: SOLVER COMPARISON\n\n" + format_table(
        headers, rows, floatfmt=".3e"
    )
    return (ipf, gevarter), text


# -- A1: selector recovery ablation ---------------------------------------------------


@dataclass
class RecoveryRow:
    """Recovery of planted structure by one selector on one trial."""

    selector: str
    trial: int
    precision: float
    recall: float
    found: int


def selector_recovery_experiment(
    seed: int = 0,
    trials: int = 5,
    n: int = 20000,
    num_attributes: int = 4,
    num_planted: int = 2,
    strength: float = 3.0,
) -> tuple[list[RecoveryRow], str]:
    """A1: MML vs chi-square vs BIC on planted-correlation populations."""
    rows: list[RecoveryRow] = []
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        population = random_planted_population(
            rng,
            num_attributes=num_attributes,
            num_planted=num_planted,
            strength=strength,
        )
        table = population.sample_table(n, rng)

        mml = discover(table, DiscoveryConfig(max_order=2))
        mml_keys = {(c.attributes, c.values) for c in mml.found}
        precision, recall = recovery_score(population, mml_keys)
        rows.append(RecoveryRow("mml", trial, precision, recall, len(mml_keys)))

        chi2 = discover_chi2(table, Chi2SelectorConfig(max_order=2))
        chi2_keys = {(c.attributes, c.values) for c in chi2.found}
        precision, recall = recovery_score(population, chi2_keys)
        rows.append(
            RecoveryRow("chi2", trial, precision, recall, len(chi2_keys))
        )

        bic = discover_bic(table, BICSelectorConfig(max_order=2))
        bic_keys = {(c.attributes, c.values) for c in bic.found}
        precision, recall = recovery_score(population, bic_keys)
        rows.append(RecoveryRow("bic", trial, precision, recall, len(bic_keys)))

    headers = ["selector", "mean precision", "mean recall", "mean found"]
    summary_rows = []
    for selector in ("mml", "chi2", "bic"):
        chosen = [r for r in rows if r.selector == selector]
        summary_rows.append(
            [
                selector,
                float(np.mean([r.precision for r in chosen])),
                float(np.mean([r.recall for r in chosen])),
                float(np.mean([r.found for r in chosen])),
            ]
        )
    text = (
        f"A1: PLANTED-CORRELATION RECOVERY ({trials} trials, N={n}, "
        f"{num_planted} planted order-2 cells, strength {strength})\n\n"
        + format_table(headers, summary_rows)
    )
    return rows, text


# -- A8: prior sensitivity ------------------------------------------------------------


@dataclass
class PriorSensitivityRow:
    """Discovery outcome under one hypothesis prior."""

    p_h2_prime: float
    prior_shift: float
    num_constraints: int
    first_key: tuple | None


def prior_sensitivity_experiment(
    priors: tuple[float, ...] = (0.5, 0.6, 0.8),
) -> tuple[list[PriorSensitivityRow], str]:
    """A8: how the p(H2') prior moves discovery on the paper's data.

    The paper notes p(H2') = .6 shifts (m2 - m1) by −.40 and .8 by −1.39 —
    more prior belief in further constraints makes the test more eager.
    The shift is monotone, so the adopted constraint count is
    non-decreasing in p(H2').
    """
    from repro.significance.mml import MMLPriors

    table = paper_table()
    rows: list[PriorSensitivityRow] = []
    for p in priors:
        config = DiscoveryConfig(
            priors=MMLPriors(p_h1=1.0 - p, p_h2_prime=p)
        )
        result = discover(table, config)
        rows.append(
            PriorSensitivityRow(
                p_h2_prime=p,
                prior_shift=config.priors.prior_shift,
                num_constraints=len(result.found),
                first_key=result.found[0].key if result.found else None,
            )
        )
    headers = ["p(H2')", "prior shift in m2-m1", "constraints found", "first adoption"]
    rendered = [
        [
            row.p_h2_prime,
            row.prior_shift,
            row.num_constraints,
            "none" if row.first_key is None else str(row.first_key),
        ]
        for row in rows
    ]
    text = (
        "A8: SENSITIVITY TO THE HYPOTHESIS PRIOR (paper data)\n\n"
        + format_table(headers, rendered)
    )
    return rows, text


# -- E8: Appendix B ------------------------------------------------------------------


def reproduce_appendix_b() -> tuple[list, str]:
    """E8: factored (elimination) vs dense partition sums and queries."""
    result, _ = reproduce_discovery()
    model = result.model
    dense_z = float(model.unnormalized().sum())
    factored_z = elimination.partition_sum(model)
    rows = [["partition sum", dense_z, factored_z, abs(dense_z - factored_z)]]
    queries = [
        ({"CANCER": "yes"}, {"SMOKING": "smoker"}),
        ({"CANCER": "yes"}, {"SMOKING": "smoker", "FAMILY_HISTORY": "yes"}),
    ]
    for target, given in queries:
        dense = model.conditional(target, given)
        factored = elimination.query(model, target, given)
        label = "P(" + ",".join(f"{k}={v}" for k, v in target.items()) + "|...)"
        rows.append([label, dense, factored, abs(dense - factored)])
    headers = ["quantity", "dense", "elimination", "|diff|"]
    text = "APPENDIX B: FACTORED VS DENSE EVALUATION\n\n" + format_table(
        headers, rows, floatfmt=".10f"
    )
    return rows, text
