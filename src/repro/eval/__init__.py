"""Evaluation: paper fixtures, table rendering, reports, and scorecards.

The package holds the read-side of the validation fleet: paper fixtures
(:mod:`repro.eval.paper`), plain-text and markdown table rendering
(:mod:`repro.eval.tables`), the conformance-matrix report
(:mod:`repro.eval.conformance`), the experiment harness
(:mod:`repro.eval.harness`), and the cross-run scenario scorecard
(:mod:`repro.eval.scorecard`).
"""

from repro.eval.conformance import (
    conformance_report,
    render_baseline_comparison,
    render_conformance_matrix,
)
from repro.eval.paper import paper_schema, paper_table
from repro.eval.scorecard import (
    build_scorecard,
    render_scorecard_markdown,
    scenario_entries_from_registry,
    scenario_entries_from_trajectory,
)
from repro.eval.tables import format_table, markdown_table

__all__ = [
    "build_scorecard",
    "conformance_report",
    "format_table",
    "markdown_table",
    "paper_schema",
    "paper_table",
    "render_baseline_comparison",
    "render_conformance_matrix",
    "render_scorecard_markdown",
    "scenario_entries_from_registry",
    "scenario_entries_from_trajectory",
]
