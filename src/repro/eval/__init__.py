"""Evaluation: paper fixtures, table rendering, experiment harness."""

from repro.eval.paper import paper_schema, paper_table
from repro.eval.tables import format_table

__all__ = ["format_table", "paper_schema", "paper_table"]
