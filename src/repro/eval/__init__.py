"""Evaluation: paper fixtures, table rendering, experiment harness."""

from repro.eval.conformance import (
    conformance_report,
    render_baseline_comparison,
    render_conformance_matrix,
)
from repro.eval.paper import paper_schema, paper_table
from repro.eval.tables import format_table

__all__ = [
    "conformance_report",
    "format_table",
    "paper_schema",
    "paper_table",
    "render_baseline_comparison",
    "render_conformance_matrix",
]
