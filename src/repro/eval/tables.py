"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence


def format_cell(value, floatfmt: str = ".3f") -> str:
    """Render one table cell: floats formatted, None blank, rest str()."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    floatfmt: str = ".3f",
) -> str:
    """Align headers and rows into a monospace table."""
    rendered = [[format_cell(v, floatfmt) for v in row] for row in rows]
    columns = len(headers)
    for number, row in enumerate(rendered):
        if len(row) != columns:
            raise ValueError(
                f"row {number} has {len(row)} cells, header has {columns}"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered))
        if rendered
        else len(headers[c])
        for c in range(columns)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    floatfmt: str = ".3f",
) -> str:
    """Render a GitHub-flavored markdown pipe table."""
    rendered = [[format_cell(v, floatfmt) for v in row] for row in rows]
    columns = len(headers)
    for number, row in enumerate(rendered):
        if len(row) != columns:
            raise ValueError(
                f"row {number} has {len(row)} cells, header has {columns}"
            )
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rendered:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
