"""One-shot experiment report: every paper artifact regenerated live.

:func:`generate_report` runs the full E1-E8 harness (and a reduced A1
recovery ablation) and assembles a single markdown document — the live
counterpart of the repository's EXPERIMENTS.md.  Exposed on the CLI as
``repro report``.
"""

from __future__ import annotations

from pathlib import Path

from repro.eval import harness


def generate_report(recovery_trials: int = 2, recovery_n: int = 8000) -> str:
    """Run every experiment and return the assembled markdown report."""
    sections: list[tuple[str, str]] = []
    sections.append(("E1 — Figure 1", harness.reproduce_figure1()))
    sections.append(("E2 — Figure 2", harness.reproduce_figure2()))

    _comparisons, table1_text = harness.reproduce_table1()
    sections.append(("E3 — Table 1", table1_text))

    _fit, table2_text = harness.reproduce_table2()
    sections.append(("E4 — Table 2", table2_text))

    _result, discovery_text = harness.reproduce_discovery()
    sections.append(("E5 — Figure 3 (discovery)", discovery_text))

    _fits, solver_text = harness.reproduce_solver_comparison()
    sections.append(("E6 — Figure 4 (solvers)", solver_text))

    _rows, appendix_text = harness.reproduce_appendix_b()
    sections.append(("E8 — Appendix B", appendix_text))

    _rows, recovery_text = harness.selector_recovery_experiment(
        seed=0, trials=recovery_trials, n=recovery_n
    )
    sections.append(("A1 — selector recovery", recovery_text))

    parts = [
        "# Reproduction report",
        "",
        "Generated live by `repro report`; see EXPERIMENTS.md for the "
        "curated paper-vs-measured discussion.",
        "",
    ]
    for title, body in sections:
        parts.append(f"## {title}")
        parts.append("")
        parts.append("```")
        parts.append(body)
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def write_report(
    path: str | Path, recovery_trials: int = 2, recovery_n: int = 8000
) -> Path:
    """Generate the report and write it to ``path``."""
    path = Path(path)
    path.write_text(generate_report(recovery_trials, recovery_n))
    return path
