"""Exact fixtures from the paper: Figure 1 data and reference tables.

Everything here is transcribed from NASA TM-88224.  The contingency counts
(Figure 1) are exact; Table 1's reference values carry the paper's own
2-digit rounding of the first-order probabilities (it computes
``p^AB_11 = .38 × .13`` where full precision gives ``.376 × .126``), so our
full-precision reproduction matches signs, rankings and orders of
magnitude rather than the second decimal.  The AC row for (3,1) is
internally inconsistent in the original (its printed mean does not equal
``N·p``); see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.contingency import ContingencyTable
from repro.data.schema import Schema
from repro.synth.surveys import smoking_cancer_schema

#: Total individuals surveyed (paper: "a survey of 3428 individuals").
PAPER_N = 3428

#: Attribute names in the paper's A, B, C roles.
A, B, C = "SMOKING", "CANCER", "FAMILY_HISTORY"


def paper_schema() -> Schema:
    """The questionnaire schema (3 smoking values, 2 cancer, 2 history)."""
    return smoking_cancer_schema()


def paper_table() -> ContingencyTable:
    """Figure 1's exact counts as a contingency table.

    Axis order (SMOKING, CANCER, FAMILY_HISTORY); slice ``[:, :, 0]`` is
    Figure 1a (family history = yes), ``[:, :, 1]`` is Figure 1b.
    """
    counts = np.zeros((3, 2, 2), dtype=np.int64)
    counts[:, :, 0] = [[130, 410], [62, 580], [78, 520]]
    counts[:, :, 1] = [[110, 640], [31, 460], [22, 385]]
    return ContingencyTable(paper_schema(), counts)


#: Figure 2's marginal counts, for regression-testing the marginal code.
FIGURE2_MARGINALS = {
    (A,): [1290, 1133, 1005],
    (B,): [433, 2995],
    (C,): [1780, 1648],
    (A, B): [[240, 1050], [93, 1040], [100, 905]],
    (A, C): [[540, 750], [642, 491], [598, 407]],
    (B, C): [[270, 163], [1510, 1485]],
}


@dataclass(frozen=True)
class Table1Row:
    """One reference row of the paper's Table 1.

    ``ratio`` is the printed ``p(H1|D)/p(H2|D)``; the paper prints "<.1"
    for the most extreme rows, encoded here as ``None``.
    """

    subset: tuple[str, str]
    values: tuple[int, int]
    probability: float
    observed: int
    mean: float
    sd: float
    num_sd: float
    delta: float
    ratio: float | None


#: The paper's Table 1, transcribed row by row (2-digit-rounded inputs).
PAPER_TABLE1 = [
    Table1Row((A, B), (0, 0), 0.048, 240, 165.0, 12.5, 6.03, -11.57, None),
    Table1Row((A, B), (0, 1), 0.329, 1050, 1128.0, 27.5, -2.83, 1.75, 5.8),
    Table1Row((A, B), (1, 0), 0.042, 93, 144.0, 11.7, -4.34, -4.74, None),
    Table1Row((A, B), (1, 1), 0.289, 1040, 990.0, 26.5, 1.86, 3.83, 46.1),
    Table1Row((A, B), (2, 0), 0.037, 100, 127.0, 11.1, -2.43, 2.44, 11.5),
    Table1Row((A, B), (2, 1), 0.256, 905, 877.6, 25.6, 1.07, 4.97, 144.0),
    Table1Row((B, C), (0, 0), 0.065, 270, 223.0, 14.4, 3.27, 0.59, 1.8),
    Table1Row((B, C), (0, 1), 0.061, 163, 209.0, 14.0, -3.29, -0.21, 0.8),
    Table1Row((B, C), (1, 0), 0.454, 1510, 1556.0, 29.2, -1.59, 4.77, 118.0),
    # The paper prints 1486 here, but its own Figure 2 sums to 1485
    # (640 + 460 + 385); we pin the internally consistent value.
    Table1Row((B, C), (1, 1), 0.420, 1485, 1440.0, 28.9, 1.56, 4.62, 101.0),
    Table1Row((A, C), (0, 0), 0.195, 540, 668.0, 23.2, -5.54, -10.54, None),
    Table1Row((A, C), (0, 1), 0.181, 750, 620.0, 22.5, 5.75, -9.95, None),
    Table1Row((A, C), (1, 0), 0.172, 642, 590.0, 22.1, 2.37, 2.87, 17.6),
    Table1Row((A, C), (1, 1), 0.159, 491, 545.0, 21.4, -2.52, 2.63, 13.9),
    Table1Row((A, C), (2, 0), 0.152, 598, 521.0, 22.1, 0.22, -0.64, 0.5),
    Table1Row((A, C), (2, 1), 0.141, 407, 483.0, 20.4, -3.75, -1.49, 0.2),
]

#: The Table-2 walkthrough constraint: cell (SMOKING=smoker, FH=no),
#: the paper's "N^AC with b = N^AC/N = .219" (750 / 3428).
TABLE2_CELL = ((A, C), (0, 1))
TABLE2_TARGET = 750 / 3428

#: Number of second-order cells the paper counts for the example.
PAPER_SECOND_ORDER_CELLS = 16

#: Paper's first-order probabilities as rounded in its Eq 49-56.
PAPER_FIRST_ORDER = {
    A: [0.38, 0.33, 0.29],
    B: [0.13, 0.87],
    C: [0.52, 0.48],
}
