"""Scenario scorecard: per-scenario outcomes rolled up across runs.

One conformance run produces one JSON document; a trajectory of runs
produces a pile of them.  The scorecard is the aggregation layer: it
reads every scenario outcome recorded in a
:class:`~repro.store.runs.RunRegistry` (both dedicated ``scenario`` runs
and the per-scenario entries embedded in ``benchmark`` trajectory
records), groups them by scenario, and renders one markdown/JSON table
with pass/fail and trend columns — the report
``benchmarks/check_regression.py`` embeds and the ``repro scorecard``
CLI prints.

The trend column compares each scenario's two most recent outcomes:
``regressed`` (passed, now failing), ``improved`` (failed, now passing),
``steady`` (no status change), or ``new`` (first recorded outcome).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.eval.tables import markdown_table

__all__ = [
    "build_scorecard",
    "render_scorecard_markdown",
    "scenario_entries_from_registry",
    "scenario_entries_from_trajectory",
]


def _outcome_entry(metrics: dict, created_at: str, git_sha: str) -> dict:
    """Normalize one outcome document into a scorecard entry."""
    return {
        "scenario": metrics.get("scenario", "?"),
        "tier": metrics.get("tier", "smoke"),
        "smoke": bool(metrics.get("smoke", True)),
        "created_at": created_at,
        "git_sha": git_sha,
        "passed": bool(metrics.get("passed", False)),
        "precision": float(metrics.get("precision", 0.0)),
        "recall": float(metrics.get("recall", 0.0)),
        "kl": float(metrics.get("kl_empirical_fitted", 0.0)),
        "seconds": float(metrics.get("seconds", 0.0)),
        "query_p99_ms": float(
            (metrics.get("query_replay") or {}).get("p99_ms", 0.0)
        ),
        "gate_failures": list(metrics.get("gate_failures", ())),
        "slo_failures": list(metrics.get("slo_failures", ())),
    }


def scenario_entries_from_registry(
    registry, smoke: bool | None = None
) -> list[dict]:
    """Every recorded scenario outcome, oldest first.

    Scans both record kinds a :class:`~repro.store.runs.RunRegistry`
    holds: dedicated ``scenario`` runs (whose metrics document is one
    outcome dict) and ``benchmark`` trajectory runs (whose metrics embed
    a ``scenarios`` list).  ``smoke`` filters by sample-size mode; None
    keeps both.
    """
    entries: list[dict] = []
    for record in registry.runs(kind="scenario", smoke=smoke):
        entries.append(
            _outcome_entry(record.metrics, record.created_at, record.git_sha)
        )
    for record in registry.runs(kind="benchmark", smoke=smoke):
        for metrics in record.metrics.get("scenarios", ()):
            entries.append(
                _outcome_entry(metrics, record.created_at, record.git_sha)
            )
    entries.sort(key=lambda e: (e["created_at"], e["scenario"]))
    return entries


def scenario_entries_from_trajectory(records: Iterable[dict]) -> list[dict]:
    """Scorecard entries from raw trajectory records, oldest first.

    Takes the record dicts ``benchmarks/run_all.py --json`` appends (each
    embeds a ``scenarios`` list and a ``timestamp``) — the path
    ``check_regression.py`` uses to score a baseline-plus-candidate set
    without a registry on disk.
    """
    entries: list[dict] = []
    for record in records:
        created_at = str(record.get("timestamp", ""))
        git_sha = str(record.get("git_sha", ""))
        for metrics in record.get("scenarios") or ():
            entries.append(_outcome_entry(metrics, created_at, git_sha))
    entries.sort(key=lambda e: (e["created_at"], e["scenario"]))
    return entries


def _trend(history: Sequence[dict]) -> str:
    """Status movement between the two most recent outcomes."""
    if len(history) < 2:
        return "new"
    previous, latest = history[-2]["passed"], history[-1]["passed"]
    if previous and not latest:
        return "regressed"
    if not previous and latest:
        return "improved"
    return "steady"


def build_scorecard(entries: Iterable[dict]) -> dict:
    """Group outcome entries by scenario and summarize each history.

    Returns a JSON-ready document: per-scenario rows (latest metrics,
    run count, pass/fail, trend) plus fleet-level totals.  Entries are
    expected oldest-first, as
    :func:`scenario_entries_from_registry` returns them.
    """
    by_scenario: dict[str, list[dict]] = {}
    for entry in entries:
        by_scenario.setdefault(entry["scenario"], []).append(entry)

    rows = []
    for name in sorted(by_scenario):
        history = by_scenario[name]
        latest = history[-1]
        rows.append(
            {
                "scenario": name,
                "tier": latest["tier"],
                "runs": len(history),
                "passed": latest["passed"],
                "trend": _trend(history),
                "precision": latest["precision"],
                "recall": latest["recall"],
                "kl": latest["kl"],
                "query_p99_ms": latest["query_p99_ms"],
                "seconds": latest["seconds"],
                "last_run": latest["created_at"],
                "git_sha": latest["git_sha"],
                "gate_failures": latest["gate_failures"],
                "slo_failures": latest["slo_failures"],
            }
        )
    return {
        "scenarios": rows,
        "total_scenarios": len(rows),
        "total_outcomes": sum(len(h) for h in by_scenario.values()),
        "failing": [r["scenario"] for r in rows if not r["passed"]],
        "regressed": [r["scenario"] for r in rows if r["trend"] == "regressed"],
    }


def render_scorecard_markdown(scorecard: dict) -> str:
    """The scorecard as a markdown document with one table row per scenario."""
    lines = ["# Scenario scorecard", ""]
    rows = scorecard["scenarios"]
    if not rows:
        lines.append("No scenario outcomes recorded.")
        lines.append("")
        return "\n".join(lines)
    lines.append(
        f"{scorecard['total_scenarios']} scenarios, "
        f"{scorecard['total_outcomes']} recorded outcomes; "
        f"{len(scorecard['failing'])} failing, "
        f"{len(scorecard['regressed'])} regressed."
    )
    lines.append("")
    headers = [
        "scenario",
        "tier",
        "runs",
        "status",
        "trend",
        "precision",
        "recall",
        "KL",
        "q p99 ms",
        "last run",
    ]
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row["scenario"],
                row["tier"],
                row["runs"],
                "pass" if row["passed"] else "FAIL",
                row["trend"],
                f"{row['precision']:.2f}",
                f"{row['recall']:.2f}",
                f"{row['kl']:.4f}",
                f"{row['query_p99_ms']:.1f}",
                row["last_run"],
            ]
        )
    lines.append(markdown_table(headers, table_rows))
    failures = [r for r in rows if not r["passed"]]
    if failures:
        lines.append("")
        lines.append("## Failures")
        lines.append("")
        for row in failures:
            misses = row["gate_failures"] + row["slo_failures"]
            detail = "; ".join(misses) if misses else "unspecified"
            lines.append(f"- **{row['scenario']}**: {detail}")
    lines.append("")
    return "\n".join(lines)
