"""Rendering of scenario-conformance results as report tables.

Consumed by ``repro scenarios run`` and ``examples/scenario_tour.py``:
one matrix table (per-scenario recovery / KL / stage timings / gate
verdict) plus a selector-comparison table pitting the paper's MML
criterion against the chi-square and BIC baselines on every scenario.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.eval.tables import format_table
from repro.scenarios.runner import ScenarioOutcome

__all__ = [
    "conformance_report",
    "render_baseline_comparison",
    "render_conformance_matrix",
]


def render_conformance_matrix(outcomes: Sequence[ScenarioOutcome]) -> str:
    """The per-scenario conformance table (quality gates + latency SLOs)."""
    headers = [
        "scenario",
        "tier",
        "N",
        "attrs",
        "order",
        "truth",
        "found",
        "precision",
        "recall",
        "KL",
        "scan s",
        "fit s",
        "total s",
        "q p99 ms",
        "gates",
    ]
    rows = []
    for outcome in outcomes:
        rows.append(
            [
                outcome.scenario,
                outcome.tier,
                outcome.n_samples,
                outcome.num_attributes,
                outcome.max_order,
                outcome.truth_size,
                outcome.constraints_found,
                outcome.precision,
                outcome.recall,
                format(outcome.kl_empirical_fitted, ".4f"),
                format(outcome.scan_seconds, ".3f"),
                format(outcome.fit_seconds, ".3f"),
                format(outcome.seconds, ".3f"),
                format(outcome.query_replay.get("p99_ms", 0.0), ".1f"),
                "pass" if outcome.passed else "FAIL",
            ]
        )
    return format_table(headers, rows)


def render_baseline_comparison(outcomes: Sequence[ScenarioOutcome]) -> str:
    """MML vs baseline selectors, one row per scenario and selector."""
    headers = ["scenario", "selector", "precision", "recall", "found", "s"]
    rows = []
    for outcome in outcomes:
        rows.append(
            [
                outcome.scenario,
                "mml",
                outcome.precision,
                outcome.recall,
                outcome.constraints_found,
                format(outcome.seconds, ".3f"),
            ]
        )
        for baseline in outcome.baselines:
            rows.append(
                [
                    outcome.scenario,
                    baseline.selector,
                    baseline.precision,
                    baseline.recall,
                    baseline.found,
                    format(baseline.seconds, ".3f"),
                ]
            )
    if not rows:
        return "(no outcomes)"
    return format_table(headers, rows)


def conformance_report(outcomes: Sequence[ScenarioOutcome]) -> str:
    """Full text report: matrix, failures, and baseline comparison."""
    mode = "smoke" if (outcomes and outcomes[0].smoke) else "full"
    lines = [
        f"SCENARIO CONFORMANCE MATRIX ({len(outcomes)} scenarios, "
        f"{mode} mode)",
        "",
        render_conformance_matrix(outcomes),
    ]
    failures = [o for o in outcomes if not o.passed]
    if failures:
        lines.append("")
        lines.append("gate failures:")
        for outcome in failures:
            for failure in outcome.gate_failures:
                lines.append(f"  {outcome.scenario}: {failure}")
            for failure in outcome.slo_failures:
                lines.append(f"  {outcome.scenario}: SLO {failure}")
    else:
        lines.append("")
        lines.append("all conformance gates and latency SLOs passed")
    if any(o.baselines for o in outcomes):
        lines.append("")
        lines.append("selector comparison (MML vs baselines):")
        lines.append("")
        lines.append(render_baseline_comparison(outcomes))
    return "\n".join(lines)
