"""Baseline learners behind the Estimator lifecycle.

The count-based baselines (independence, empirical, naive Bayes) are
closed-form in the accumulated counts, so their ``update`` *is* a refit of
the merged table — exact and cheap, reported as ``mode="cold"``.  The
log-linear forward selection is iterative like the paper's engine and gets
a genuine warm path: previously adopted interaction subsets are re-imposed
and refitted from the previous factor tables before scanning for new terms.
"""

from __future__ import annotations

from repro.baselines.empirical import empirical_model
from repro.baselines.independence import independence_model
from repro.baselines.loglinear import (
    LogLinearConfig,
    LogLinearResult,
    discover_loglinear,
)
from repro.baselines.naive_bayes import NaiveBayesClassifier
from repro.data.contingency import ContingencyTable
from repro.estimators.base import Estimator, UpdateReport, register_estimator
from repro.exceptions import ConstraintError, ConvergenceError, DataError
from repro.maxent.model import MaxEntModel


class _ModelEstimator(Estimator):
    """Shared plumbing for estimators whose model is rebuilt from counts."""

    def __init__(self) -> None:
        super().__init__()
        self._model = None

    @property
    def model(self):
        if self._model is None:
            raise DataError(
                f"estimator {self.name!r} is not fitted; call fit() first"
            )
        return self._model


@register_estimator
class IndependenceEstimator(_ModelEstimator):
    """First-order maxent model ``p_ijk = p_i p_j p_k`` (the floor)."""

    name = "independence"

    def _fit(self, table: ContingencyTable) -> None:
        self._model = independence_model(table)


@register_estimator
class EmpiricalEstimator(_ModelEstimator):
    """Saturated model: raw (optionally smoothed) relative frequencies."""

    name = "empirical"

    def __init__(self, smoothing: float = 0.0):
        super().__init__()
        if smoothing < 0:
            raise DataError(f"smoothing must be >= 0, got {smoothing}")
        self.smoothing = smoothing

    def _fit(self, table: ContingencyTable) -> None:
        self._model = empirical_model(table, smoothing=self.smoothing)


@register_estimator
class NaiveBayesEstimator(_ModelEstimator):
    """Categorical naive Bayes over the accumulated counts.

    The model is a :class:`~repro.baselines.naive_bayes.NaiveBayesClassifier`
    (not a maxent model); updates rebuild it from the merged table, which
    costs one pass over the pairwise marginals.
    """

    name = "naive_bayes"

    def __init__(self, class_attribute: str, smoothing: float = 1.0):
        super().__init__()
        self.class_attribute = class_attribute
        self.smoothing = smoothing

    @property
    def model(self) -> NaiveBayesClassifier:
        return super().model

    def _fit(self, table: ContingencyTable) -> None:
        if self.class_attribute not in table.schema.names:
            raise DataError(
                f"class attribute {self.class_attribute!r} is not in the "
                f"schema {list(table.schema.names)}"
            )
        self._model = NaiveBayesClassifier(
            table, self.class_attribute, smoothing=self.smoothing
        )


@register_estimator
class LogLinearEstimator(Estimator):
    """Cheeseman-style whole-margin selection with warm-started updates.

    Warm updates re-verify every previously adopted interaction term with
    the G² test before re-imposing it; a term the merged data no longer
    support triggers a cold re-selection that drops it (reported in
    :attr:`UpdateReport.dropped`).
    """

    name = "loglinear"

    def __init__(self, config: LogLinearConfig | None = None):
        super().__init__()
        self.config = config or LogLinearConfig()
        self._result: LogLinearResult | None = None

    @property
    def result(self) -> LogLinearResult:
        if self._result is None:
            raise DataError(
                "estimator 'loglinear' is not fitted; call fit() first"
            )
        return self._result

    @property
    def model(self) -> MaxEntModel:
        return self.result.model

    def _fit(self, table: ContingencyTable) -> None:
        self._result = discover_loglinear(table, self.config)

    def _update(
        self, merged: ContingencyTable, delta: ContingencyTable
    ) -> UpdateReport:
        previous = self.result
        before = set(previous.constraints.subset_margins)
        try:
            result = discover_loglinear(
                merged, self.config, warm_start=previous
            )
            mode = "warm"
        except (ConstraintError, ConvergenceError):
            result = discover_loglinear(merged, self.config)
            mode = "cold"
        self._result = result
        after = set(result.constraints.subset_margins)
        # Whole-margin terms are identified by their attribute subset
        # alone (see UpdateReport: subset keys for margin estimators).
        return UpdateReport(
            mode=mode,
            added=tuple(sorted(after - before)),
            dropped=tuple(sorted(before - after)),
        )
