"""The discovery engine behind the Estimator lifecycle.

``fit`` runs the full Figure-3 procedure; ``update`` merges the delta and
reruns discovery *warm-started* from the previous
:class:`~repro.discovery.trace.DiscoveryResult` — previously adopted
constraints are re-imposed at their new observed probabilities and the
solver restarts from the last calculated ``a`` values (Figure 4), so the
usual streaming batch costs one verification scan and one warm fit per
order instead of a full greedy rerun.  When the new data contradict an old
constraint (re-imposition fails), the update falls back to a cold
rediscovery automatically and reports ``mode="cold"``.
"""

from __future__ import annotations

from repro.data.contingency import ContingencyTable
from repro.discovery.config import DiscoveryConfig
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.trace import DiscoveryResult
from repro.estimators.base import Estimator, UpdateReport, register_estimator
from repro.exceptions import ConstraintError, ConvergenceError, DataError
from repro.maxent.model import MaxEntModel
from repro.significance.mml import scan_order


@register_estimator
class DiscoveryEstimator(Estimator):
    """Figure-3 discovery with warm-started incremental updates."""

    name = "discovery"

    def __init__(self, config: DiscoveryConfig | None = None):
        super().__init__()
        self.config = config or DiscoveryConfig()
        self._result: DiscoveryResult | None = None

    @classmethod
    def from_result(
        cls, result: DiscoveryResult, config: DiscoveryConfig | None = None
    ) -> "DiscoveryEstimator":
        """Rehydrate an estimator from a saved discovery trace.

        This is how a knowledge base loaded from a format-3 file regains
        the ability to ``update()``: the trace carries the training table
        and the adopted constraints, which is all warm rediscovery needs.
        """
        estimator = cls(config or result.config)
        estimator._result = result
        estimator._table = result.table
        return estimator

    @property
    def result(self) -> DiscoveryResult:
        """The current discovery result (model + constraints + audit)."""
        if self._result is None:
            raise DataError(
                "estimator 'discovery' is not fitted; call fit() first"
            )
        return self._result

    @property
    def model(self) -> MaxEntModel:
        return self.result.model

    def _fit(self, table: ContingencyTable) -> None:
        with DiscoveryEngine(self.config) as engine:
            self._result = engine.run(table)

    def _update(
        self, merged: ContingencyTable, delta: ContingencyTable
    ) -> UpdateReport:
        previous = self.result
        before = previous.constraints.cell_keys()
        with DiscoveryEngine(self.config) as engine:
            try:
                result = engine.rerun(merged, previous)
                mode = "warm"
            except (ConstraintError, ConvergenceError):
                # The new data contradict a previously adopted constraint
                # (or the warm fit cannot converge from the old a values):
                # restart cold, IC3-style — incremental strengthening
                # where possible, clean rebuild when the frame breaks.
                result = engine.run(merged)
                mode = "cold"
        self._result = result
        after = result.constraints.cell_keys()
        return UpdateReport(
            mode=mode,
            added=tuple(sorted(after - before)),
            dropped=tuple(sorted(before - after)),
        )


def scan_for_new_significance(
    table: ContingencyTable,
    result: DiscoveryResult,
    config: DiscoveryConfig | None = None,
) -> bool:
    """Probe: would pending data change the discovered structure?

    Scans every order of ``table`` against the *current* model and
    constraint set and reports whether any unconstrained cell tests
    significant.  This is a heuristic trigger (the model's targets come
    from the pre-delta table), meant for update policies that refit on
    evidence of drift rather than on a sample count.
    """
    config = config or result.config or DiscoveryConfig()
    schema = table.schema
    highest = min(config.max_order or len(schema), len(schema))
    for order in range(2, highest + 1):
        try:
            tests = scan_order(
                table, result.model, order, result.constraints, config.priors
            )
        except DataError:
            # No candidate cells left at this order.
            continue
        if any(test.significant for test in tests):
            return True
    return False
