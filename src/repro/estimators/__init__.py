"""Model lifecycle: the ``fit`` / ``update`` / ``refresh`` protocol.

Mirrors :mod:`repro.api` on the learning side: where backends make *serving*
pluggable, estimators make *learning* pluggable — one protocol
(:class:`Estimator`), a registry (:func:`register_estimator` /
:func:`create_estimator`), and implementations for the paper's discovery
engine (with warm-started rediscovery) and every baseline.

Quickstart::

    from repro.estimators import create_estimator

    est = create_estimator("discovery").fit(table)
    report = est.update(next_batch)     # warm-started; report.mode == "warm"
    est.model                           # the refined MaxEntModel
"""

from repro.estimators.base import (
    Estimator,
    UpdateReport,
    as_table,
    available_estimators,
    create_estimator,
    register_estimator,
    unregister_estimator,
)
from repro.estimators.baselines import (
    EmpiricalEstimator,
    IndependenceEstimator,
    LogLinearEstimator,
    NaiveBayesEstimator,
)
from repro.estimators.discovery import (
    DiscoveryEstimator,
    scan_for_new_significance,
)

__all__ = [
    "DiscoveryEstimator",
    "EmpiricalEstimator",
    "Estimator",
    "IndependenceEstimator",
    "LogLinearEstimator",
    "NaiveBayesEstimator",
    "UpdateReport",
    "as_table",
    "available_estimators",
    "create_estimator",
    "register_estimator",
    "scan_for_new_significance",
    "unregister_estimator",
]
