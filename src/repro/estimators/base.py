"""The model-lifecycle protocol: ``fit`` / ``update`` / ``refresh``.

The paper's data sources (surveys, telemetry downlinks) arrive over time,
so a learner is not a function but a *lifecycle*: fit once on what you
have, then absorb deltas as they land.  :class:`Estimator` is that
protocol; every learner in the package implements it —

- ``discovery`` — the Figure-3 engine, with warm-started rediscovery
  (:mod:`repro.estimators.discovery`);
- ``loglinear``, ``naive_bayes``, ``empirical``, ``independence`` — the
  baselines (:mod:`repro.estimators.baselines`).

A registry mirrors :mod:`repro.api.backends`: ``@register_estimator`` on a
subclass adds it to :func:`available_estimators` and callers construct by
name with :func:`create_estimator`.

The base class owns the accumulated contingency table (no raw samples are
kept), validates every delta's schema, and dispatches:

- :meth:`Estimator.fit` — cold fit on fresh data;
- :meth:`Estimator.update` — merge a delta and refine, warm-started where
  the implementation supports it; returns an :class:`UpdateReport` saying
  what happened;
- :meth:`Estimator.refresh` — full cold refit of the accumulated table
  (the escape hatch when incremental refinement has drifted or the caller
  wants a guaranteed-clean model).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import ClassVar

from repro.data.contingency import ContingencyTable
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.data.streaming import TableBuilder, describe_schema_mismatch
from repro.exceptions import DataError
from repro.maxent.constraints import CellKey

_REGISTRY: dict[str, type["Estimator"]] = {}


def register_estimator(cls: type["Estimator"]) -> type["Estimator"]:
    """Class decorator adding an estimator to the registry under ``cls.name``.

    Duplicate names are rejected; call :func:`unregister_estimator` first
    to replace one deliberately (mirrors the backend registry's policy).
    """
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(
            f"estimator class {cls.__name__} needs a non-empty name"
        )
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(
            f"an estimator named {name!r} is already registered "
            f"({_REGISTRY[name].__name__}); unregister it first to replace it"
        )
    _REGISTRY[name] = cls
    return cls


def unregister_estimator(name: str) -> None:
    """Remove an estimator from the registry (mainly for tests/plugins)."""
    _REGISTRY.pop(name, None)


def available_estimators() -> tuple[str, ...]:
    """Names of all registered estimators, sorted."""
    return tuple(sorted(_REGISTRY))


def create_estimator(name: str, **options) -> "Estimator":
    """Instantiate a registered estimator by name.

    ``options`` are passed to the estimator's constructor (e.g.
    ``class_attribute`` for ``naive_bayes``, ``config`` for ``discovery``).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise DataError(
            f"unknown estimator {name!r}; available: "
            f"{list(available_estimators())}"
        ) from None
    return cls(**options)


def as_table(data, schema: Schema | None = None) -> ContingencyTable:
    """Coerce batch-shaped data into a contingency table.

    Accepts a :class:`ContingencyTable`, :class:`Dataset`,
    :class:`TableBuilder` (snapshotted), or — when ``schema`` is known —
    an iterable of samples (sequences in schema order) or records (dicts).
    """
    if isinstance(data, ContingencyTable):
        return data
    if isinstance(data, Dataset):
        return data.to_contingency()
    if isinstance(data, TableBuilder):
        return data.snapshot()
    if schema is not None and isinstance(data, Iterable):
        rows = list(data)
        if rows and isinstance(rows[0], Mapping):
            return ContingencyTable.from_records(schema, rows)
        return ContingencyTable.from_samples(schema, rows)
    raise DataError(
        f"cannot interpret {type(data).__name__} as a batch of observations; "
        f"pass a ContingencyTable, Dataset, TableBuilder, or (with a known "
        f"schema) an iterable of samples or records"
    )


@dataclass(frozen=True)
class UpdateReport:
    """What one lifecycle operation did to the model.

    Attributes
    ----------
    mode:
        ``"warm"`` — the previous state was refined incrementally;
        ``"cold"`` — the model was refitted from the accumulated table;
        ``"noop"`` — the delta was empty, nothing changed.
    added / dropped:
        Identifiers of constraints that appeared / disappeared relative
        to the previous model: ``(attributes, values)``
        :data:`~repro.maxent.constraints.CellKey` tuples for cell-based
        estimators (``discovery``), bare attribute-subset tuples for
        whole-margin estimators (``loglinear``), empty for estimators
        without discovered structure.
    """

    mode: str
    added: tuple[CellKey | tuple[str, ...], ...] = field(default=())
    dropped: tuple[CellKey | tuple[str, ...], ...] = field(default=())


class Estimator(ABC):
    """A learner with a lifecycle: fit once, update on deltas, refresh.

    Subclasses implement ``_fit`` (cold fit from a table) and may override
    ``_update`` (incremental refinement given the merged table and the
    delta); the default ``_update`` falls back to a cold refit, which is
    always correct and — for the count-based baselines — already cheap.
    """

    name: ClassVar[str] = ""

    def __init__(self) -> None:
        self._table: ContingencyTable | None = None

    # -- state --------------------------------------------------------------------

    @property
    def table(self) -> ContingencyTable:
        """The accumulated training table."""
        self._require_fitted()
        return self._table

    @property
    def fitted(self) -> bool:
        return self._table is not None

    @property
    @abstractmethod
    def model(self):
        """The current fitted model (estimator-specific type)."""

    def _require_fitted(self) -> None:
        if self._table is None:
            raise DataError(
                f"estimator {self.name!r} is not fitted; call fit() first"
            )

    # -- lifecycle ----------------------------------------------------------------

    def fit(self, data) -> "Estimator":
        """Cold fit on fresh data, replacing any prior state."""
        table = as_table(data)
        if table.total == 0:
            raise DataError("cannot fit an estimator on an empty table")
        self._fit(table)
        self._table = table
        return self

    def update(self, delta) -> UpdateReport:
        """Merge a delta batch into the accumulated table and refine.

        The delta may be a table, dataset, or raw samples/records (the
        fitted schema is known).  A :class:`TableBuilder` is rejected:
        update does not consume it, so passing the same accumulating
        builder every window would silently re-absorb its whole history
        each time — pass ``builder.snapshot()`` (and ``reset()`` the
        builder) instead, or use the knowledge-base facade's ``ingest``.
        Schema incompatibilities raise a :class:`DataError` naming every
        difference; empty deltas are no-ops.
        """
        self._require_fitted()
        if isinstance(delta, TableBuilder):
            raise DataError(
                "update does not consume a TableBuilder, so passing one "
                "repeatedly would re-absorb its whole history every call; "
                "pass builder.snapshot() and reset() the builder (or use "
                "ProbabilisticKnowledgeBase.ingest, which does both)"
            )
        table = as_table(delta, schema=self._table.schema)
        mismatch = describe_schema_mismatch(self._table.schema, table.schema)
        if mismatch:
            raise DataError(
                f"update batch schema is incompatible with the fitted "
                f"schema: {mismatch}"
            )
        if table.total == 0:
            return UpdateReport(mode="noop")
        merged = self._table + table
        report = self._update(merged, table)
        self._table = merged
        return report

    def refresh(self) -> UpdateReport:
        """Full cold refit of the accumulated table."""
        self._require_fitted()
        self._fit(self._table)
        return UpdateReport(mode="cold")

    # -- hooks --------------------------------------------------------------------

    @abstractmethod
    def _fit(self, table: ContingencyTable) -> None:
        """Cold fit from ``table``."""

    def _update(
        self, merged: ContingencyTable, delta: ContingencyTable
    ) -> UpdateReport:
        """Refine after a merge; default is a cold refit of ``merged``."""
        self._fit(merged)
        return UpdateReport(mode="cold")

    def __repr__(self) -> str:
        state = f"N={self._table.total}" if self._table is not None else "unfitted"
        return f"{type(self).__name__}({state})"
