"""Master-side TCP worker pool and the transport/address resolver.

:class:`TcpWorkerPool` is a drop-in for
:class:`repro.parallel.pool.WorkerPool` (same ``run`` / ``broadcast`` /
``close`` surface, same pinned-dispatch and failure contract) whose
workers are connections to remote :class:`WorkerServer` daemons instead
of child processes.  Pool slot ``i`` is one TCP connection to
``addresses[i]`` — repeating an address gives several independent
pinned workers on one daemon, which is how a single host serves a
multi-shard pool (and how the tests get N workers from one in-process
server).

Failure semantics, deliberately identical to the process pool:

- connection *establishment* is retried per :class:`RetryPolicy`
  (bounded attempts, exponential backoff);
- a connection that fails *mid-run* — send error, read timeout, EOF,
  truncated frame — closes the whole pool and raises
  :class:`ParallelError`.  There is no transparent mid-run reconnect: a
  reconnected worker has lost its pinned shard state, so continuing
  would be silently wrong.  Owners that can rebuild state (the sharded
  scan, the query evaluator) construct a fresh pool and re-ship.

:func:`resolve_distribution` centralizes how a transport choice and a
worker-address list combine, layering the address sources (explicit
argument > ``REPRO_WORKER_ADDRESSES``) onto the existing
:func:`~repro.parallel.shm.resolve_transport` precedence.
"""

from __future__ import annotations

import os
import pickle
import socket

from repro.distributed.protocol import (
    HEADER_BYTES,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.distributed.retry import DEFAULT_RETRY, RetryPolicy
from repro.exceptions import ParallelError
from repro.parallel.pool import _raise_remote
from repro.parallel.shm import TransportCounters

__all__ = [
    "TcpWorkerPool",
    "WORKERS_ENV_VAR",
    "parse_worker_addresses",
    "resolve_distribution",
]

#: Comma-separated ``HOST:PORT`` list naming the remote worker daemons,
#: consulted when the transport resolves to ``tcp`` and no explicit
#: address list was given.  Machine-local, like
#: ``REPRO_PARALLEL_TRANSPORT`` — never part of a stored config hash.
WORKERS_ENV_VAR = "REPRO_WORKER_ADDRESSES"


def parse_worker_addresses(value) -> tuple[str, ...]:
    """Normalize an address spec to a validated ``("host:port", ...)``.

    Accepts a comma-separated string (the env-var / CLI form) or an
    iterable of strings; every entry must parse as ``HOST:PORT``.
    """
    if value is None:
        return ()
    if isinstance(value, str):
        entries = [part.strip() for part in value.split(",") if part.strip()]
    else:
        entries = [str(part).strip() for part in value]
    return tuple(
        format_address(parse_address(entry)) for entry in entries
    )


def resolve_distribution(
    transport: str | None,
    worker_addresses=None,
) -> tuple[str, tuple[str, ...]]:
    """Combine a transport choice with a worker-address list.

    Returns the ``(transport, addresses)`` pair to actually run with:

    - explicit addresses imply ``tcp`` (and contradict an explicit
      ``pipe``/``shm`` request loudly);
    - a transport that resolves to ``tcp`` (explicitly or via
      ``REPRO_PARALLEL_TRANSPORT``) takes its addresses from
      ``REPRO_WORKER_ADDRESSES`` when none were passed;
    - ``tcp`` with an empty worker set **degrades to local execution**
      (shm where available, else pipe) rather than erroring — a config
      that names no workers should run, just not remotely.
    """
    from repro.parallel.shm import resolve_transport, shm_available

    addresses = parse_worker_addresses(worker_addresses)
    if addresses:
        if transport in ("pipe", "shm"):
            raise ParallelError(
                f"worker addresses were given but transport={transport!r} "
                f"is local; pass transport='tcp' (or leave it unset)"
            )
        return "tcp", addresses
    resolved = resolve_transport(transport)
    if resolved != "tcp":
        return resolved, ()
    addresses = parse_worker_addresses(os.environ.get(WORKERS_ENV_VAR))
    if addresses:
        return "tcp", addresses
    return ("shm" if shm_available() else "pipe"), ()


class TcpWorkerPool:
    """Pinned remote workers over length-prefixed TCP frames.

    Parameters
    ----------
    addresses:
        One ``HOST:PORT`` per pool slot; duplicates give independent
        workers on the same daemon.
    retry:
        Connect/read timeout and retry policy; defaults to
        :data:`~repro.distributed.retry.DEFAULT_RETRY`.
    counters:
        A :class:`TransportCounters` to charge wire traffic to; the
        sharded executors pass their own so ``--profile`` and bench
        records see ``bytes_wire`` / ``round_trips``.
    """

    transport = "tcp"

    def __init__(
        self,
        addresses,
        retry: RetryPolicy | None = None,
        counters: TransportCounters | None = None,
    ):
        self.addresses = parse_worker_addresses(addresses)
        if not self.addresses:
            raise ParallelError("TcpWorkerPool needs at least one address")
        self.max_workers = len(self.addresses)
        self.retry = retry or DEFAULT_RETRY
        self.counters = counters if counters is not None else (
            TransportCounters()
        )
        self._sockets: list[socket.socket] | None = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._sockets is not None

    @property
    def closed(self) -> bool:
        return self._closed

    def _connect(self, address: str) -> socket.socket:
        host, port = parse_address(address)

        def attempt() -> socket.socket:
            sock = socket.create_connection(
                (host, port), timeout=self.retry.connect_timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.retry.read_timeout)
            return sock

        try:
            return self.retry.call(attempt)
        except OSError as error:
            raise ParallelError(
                f"could not connect to worker {address} after "
                f"{self.retry.attempts} attempts: {error}"
            ) from error

    def _ensure_started(self) -> None:
        if self._closed:
            raise ParallelError("worker pool is closed")
        if self._sockets is None:
            sockets = []
            try:
                for address in self.addresses:
                    sockets.append(self._connect(address))
            except ParallelError:
                for sock in sockets:
                    self._close_socket(sock)
                raise
            self._sockets = sockets

    @staticmethod
    def _close_socket(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass

    def _drop_connections(self) -> None:
        sockets, self._sockets = self._sockets, None
        for sock in sockets or ():
            self._close_socket(sock)

    def reconnect(self) -> None:
        """Drop every connection; the next :meth:`run` reconnects.

        Fresh connections get fresh worker-side state — this is the
        hook the stale-state tests (and owners recovering from
        :class:`~repro.exceptions.StaleWorkerStateError`) use to model a
        worker restart.
        """
        if self._closed:
            raise ParallelError("worker pool is closed")
        self._drop_connections()

    def close(self) -> None:
        """Send a best-effort exit to each worker and drop connections."""
        if self._closed:
            return
        self._closed = True
        sockets, self._sockets = self._sockets, None
        for sock in sockets or ():
            try:
                send_frame(
                    sock,
                    pickle.dumps(
                        ("exit",), protocol=pickle.HIGHEST_PROTOCOL
                    ),
                )
            except OSError:
                pass
            self._close_socket(sock)

    def __enter__(self) -> "TcpWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except BaseException:
            pass

    # -- dispatch -----------------------------------------------------------------

    def _send(self, sock: socket.socket, message) -> None:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        self.counters.bytes_wire += send_frame(sock, payload)

    def _recv(self, sock: socket.socket):
        payload = recv_frame(sock)
        if payload is None:
            raise ParallelError("worker closed the connection")
        self.counters.bytes_wire += HEADER_BYTES + len(payload)
        return pickle.loads(payload)

    def run(self, task: str, args_per_worker: list[tuple]) -> list:
        """Pinned dispatch with the :class:`WorkerPool` failure contract.

        Shard ``i`` goes to the connection for ``addresses[i]``; all
        replies are collected (keeping every stream in sync) before the
        first worker-side error is raised — :class:`ReproError`
        subclasses as themselves, the rest as :class:`ParallelError`.  A
        transport failure (dead daemon, timeout, truncated frame) closes
        the pool and raises :class:`ParallelError`.
        """
        if len(args_per_worker) > self.max_workers:
            raise ParallelError(
                f"{len(args_per_worker)} shards for {self.max_workers} "
                f"workers; shard count cannot exceed the pool size"
            )
        self._ensure_started()
        active = self._sockets[: len(args_per_worker)]
        self.counters.round_trips += 1
        for index, (sock, args) in enumerate(zip(active, args_per_worker)):
            try:
                self._send(sock, ("call", task, args))
            except OSError as error:
                self.close()
                raise ParallelError(
                    f"could not dispatch task {task!r} to worker "
                    f"{self.addresses[index]}: {error}"
                ) from None
        results = []
        failure = None
        for index, sock in enumerate(active):
            try:
                reply = self._recv(sock)
            except (ParallelError, OSError, EOFError) as error:
                self.close()
                raise ParallelError(
                    f"worker {self.addresses[index]} died while running "
                    f"task {task!r}: {error}"
                ) from None
            if reply[0] == "ok":
                results.append(reply[1])
            else:
                results.append(None)
                if failure is None:
                    failure = reply[1:]
        if failure is not None:
            _raise_remote(*failure)
        return results

    def broadcast(self, task: str, *args) -> list:
        """Run ``task`` with the same arguments on every worker."""
        return self.run(task, [args] * self.max_workers)

    def __repr__(self) -> str:
        return (
            f"TcpWorkerPool(addresses={list(self.addresses)!r}, "
            f"closed={self._closed})"
        )
