"""Length-prefixed frame protocol for the TCP worker transport.

Every message on the wire is one *frame*::

    +----------+----------------------+---------------------+
    | magic    | payload length       | payload             |
    | 4 bytes  | 8 bytes, big-endian  | ``length`` bytes    |
    +----------+----------------------+---------------------+

The payload is a pickled message tuple — the same ``("call", task,
args)`` / ``("ok", result)`` / ``("error", ...)`` shapes the in-process
:class:`repro.parallel.pool.WorkerPool` exchanges over pipes, so the
remote worker loop is a socket-backed mirror of ``_worker_main``.

Pickle over a socket executes arbitrary code on unpickling: this
transport is for **trusted, private networks only** (the same trust
model as the multiprocessing pipe transport, extended across hosts).
The magic prefix and the frame-size cap reject accidental cross-talk
(something that isn't a repro worker connecting to the port) before any
byte reaches the unpickler.

A clean EOF *between* frames returns ``None`` (the peer closed in an
orderly way); EOF *inside* a frame — a truncated header or payload — is
a protocol violation and raises :class:`ParallelError`, as do a bad
magic prefix and an oversized length header.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from repro.exceptions import ParallelError

#: Frame prefix: "Repro Protocol Worker, version 1".  Changing the wire
#: format bumps the digit so mismatched peers fail loudly at the first
#: frame instead of misinterpreting payloads.
MAGIC = b"RPW1"

#: Upper bound on a single frame's payload.  Large enough for any
#: realistic packed model or columnar shard result (the biggest real
#: payloads are a few MB), small enough that a garbage length header
#: can't make ``recv_exact`` try to buffer gigabytes.
MAX_FRAME_BYTES = 1 << 30

_LENGTH = struct.Struct(">Q")
HEADER_BYTES = len(MAGIC) + _LENGTH.size


def parse_address(text: str, listen: bool = False) -> tuple[str, int]:
    """Parse ``HOST:PORT`` into ``(host, port)``.

    The split is on the *last* colon so bare IPv6 forms like
    ``::1:9000`` keep working without bracket syntax.  Port 0 (bind an
    ephemeral port) is only meaningful for ``listen`` addresses; as a
    connect target it is rejected like any other unusable port.
    """
    host, sep, port_text = text.strip().rpartition(":")
    if not sep or not host:
        raise ParallelError(
            f"worker address {text!r} is not of the form HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ParallelError(
            f"worker address {text!r} has a non-numeric port"
        ) from None
    if not (0 if listen else 1) <= port < 65536:
        raise ParallelError(
            f"worker address {text!r} has an out-of-range port"
        )
    return host, port


def format_address(address: tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


def recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, looping over partial reads.

    Returns ``None`` on a clean EOF before the *first* byte; raises
    :class:`ParallelError` when the stream ends mid-read (a truncated
    frame).
    """
    chunks: list[bytes] = []
    received = 0
    while received < count:
        chunk = sock.recv(min(count - received, 1 << 20))
        if not chunk:
            if received == 0:
                return None
            raise ParallelError(
                f"connection closed mid-frame: expected {count} bytes, "
                f"got {received}"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: bytes) -> int:
    """Write one frame; returns the total bytes put on the wire."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ParallelError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(cap {MAX_FRAME_BYTES})"
        )
    header = MAGIC + _LENGTH.pack(len(payload))
    sock.sendall(header + payload)
    return len(header) + len(payload)


def recv_frame(sock: socket.socket) -> bytes | None:
    """Read one frame's payload, or ``None`` on clean EOF."""
    header = recv_exact(sock, HEADER_BYTES)
    if header is None:
        return None
    magic, length_bytes = header[: len(MAGIC)], header[len(MAGIC) :]
    if magic != MAGIC:
        raise ParallelError(
            f"bad frame magic {magic!r}: peer is not a repro worker "
            f"(or a protocol-version mismatch)"
        )
    (length,) = _LENGTH.unpack(length_bytes)
    if length > MAX_FRAME_BYTES:
        raise ParallelError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    payload = recv_exact(sock, length)
    if payload is None and length > 0:
        raise ParallelError(
            "connection closed between a frame header and its payload"
        )
    return payload if payload is not None else b""


def send_message(sock: socket.socket, message: Any) -> int:
    """Pickle and send one message; returns bytes-on-wire."""
    return send_frame(
        sock, pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    )


def recv_message(sock: socket.socket) -> Any:
    """Receive one message, or ``None`` on clean EOF.

    ``None`` is never a legal message on this protocol (every payload is
    a non-empty tuple), so the sentinel is unambiguous.
    """
    payload = recv_frame(sock)
    if payload is None:
        return None
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise ParallelError(
            f"could not unpickle a {len(payload)}-byte frame: {error}"
        ) from error
