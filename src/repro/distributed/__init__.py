"""Distributed worker transport: pinned workers over length-prefixed TCP.

The third transport next to ``pipe`` and ``shm``:
:class:`TcpWorkerPool` speaks the same ``("call", task, args)`` protocol
as the in-process :class:`~repro.parallel.pool.WorkerPool`, against
:class:`WorkerServer` daemons started with ``repro worker --listen``.
:func:`resolve_distribution` decides when a run goes remote (explicit
addresses > ``REPRO_WORKER_ADDRESSES`` under a ``tcp`` transport) and
degrades to local execution when the worker set is empty.
"""

from repro.distributed.client import (
    TcpWorkerPool,
    WORKERS_ENV_VAR,
    parse_worker_addresses,
    resolve_distribution,
)
from repro.distributed.protocol import (
    MAX_FRAME_BYTES,
    format_address,
    parse_address,
)
from repro.distributed.retry import DEFAULT_RETRY, RetryPolicy
from repro.distributed.worker import WorkerServer

__all__ = [
    "DEFAULT_RETRY",
    "MAX_FRAME_BYTES",
    "RetryPolicy",
    "TcpWorkerPool",
    "WORKERS_ENV_VAR",
    "WorkerServer",
    "format_address",
    "parse_address",
    "parse_worker_addresses",
    "resolve_distribution",
]
