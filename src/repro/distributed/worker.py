"""The remote worker daemon: a socket-backed mirror of ``_worker_main``.

A :class:`WorkerServer` accepts TCP connections and runs one handler
thread per connection.  Each connection owns a **fresh, private** state
dict — the same contract as one pipe-connected worker process — so one
daemon can serve several pool slots at once (each slot's connection is
an independent pinned worker), and a *re*-connection never sees the
previous connection's pinned state.  That is the property that makes
reconnect-after-anything safe: a worker that lost its state raises
:class:`StaleWorkerStateError` when the master references cached data,
instead of silently serving a stale joint or session.

Tasks execute in threads, which is fine for this workload: the shard
kernels spend their time in numpy (GIL released), and correctness never
depends on thread-level parallelism — only the *master's* shard merge
does, and it treats each connection as an opaque worker.

``repro worker --listen HOST:PORT`` wraps :func:`serve_forever`.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import traceback

from repro.distributed.protocol import (
    format_address,
    recv_message,
    send_message,
)
from repro.parallel.pool import resolve_task

__all__ = ["WorkerServer"]


class WorkerServer:
    """Listen on ``(host, port)`` and serve worker connections.

    ``start()`` binds, listens, and spins up the accept thread, then
    returns — tests run a server in-process next to the pool under
    test.  ``serve_forever()`` blocks until :meth:`close` (the daemon
    entry point).  ``close()`` stops accepting, closes every live
    connection, and joins the handler threads; idempotent.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._listen_address = (host, port)
        self._socket: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[threading.Thread] = []
        self._connections: list[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The bound address (with the real port when bound to port 0)."""
        if self._socket is None:
            raise RuntimeError("server is not started")
        return self._socket.getsockname()[:2]

    @property
    def address_text(self) -> str:
        return format_address(self.address)

    def start(self) -> "WorkerServer":
        if self._socket is not None:
            return self
        server = socket.create_server(
            self._listen_address, reuse_port=False
        )
        server.listen()
        # A blocked accept() is not reliably woken by close() alone (the
        # fd dies but the thread can stay parked), so the accept loop
        # polls: shutdown() in close() wakes it immediately on platforms
        # that support it, the timeout is the portable backstop.
        server.settimeout(0.5)
        self._socket = server
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-worker-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`close`."""
        self.start()
        self._closed.wait()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        if self._socket is not None:
            with contextlib.suppress(OSError):
                self._socket.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                self._socket.close()
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            with contextlib.suppress(OSError):
                connection.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                connection.close()
        if (
            self._accept_thread is not None
            and self._accept_thread is not threading.current_thread()
        ):
            self._accept_thread.join(timeout=2.0)
        for handler in list(self._handlers):
            if handler is not threading.current_thread():
                handler.join(timeout=2.0)

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ----------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._socket is not None
        while not self._closed.is_set():
            try:
                connection, _peer = self._socket.accept()
            except TimeoutError:
                continue  # poll tick: re-check the closed flag
            except OSError:
                break  # listener closed
            # accept() hands over the listener's poll timeout; handler
            # connections block until the master speaks (or hangs up).
            connection.settimeout(None)
            connection.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            with self._lock:
                self._connections.append(connection)
            handler = threading.Thread(
                target=self._handle,
                args=(connection,),
                name="repro-worker-conn",
                daemon=True,
            )
            self._handlers.append(handler)
            handler.start()

    def _handle(self, connection: socket.socket) -> None:
        """One connection = one pinned worker with fresh private state.

        The loop is ``_worker_main`` over frames: ``("call", task,
        args)`` in, ``("ok", result)`` or ``("error", module, name,
        message, trace)`` out, ``("exit",)`` or EOF to finish.  Every
        task exception — including :class:`StaleWorkerStateError` from a
        cached-state miss — is shipped back rather than killing the
        connection, so the master can recover by re-sending full state.
        """
        handlers: dict = {}
        state: dict = {}
        try:
            while True:
                try:
                    message = recv_message(connection)
                except Exception:
                    break  # truncated frame / reset: connection is gone
                if message is None or message[0] == "exit":
                    break
                _, task, args = message
                try:
                    handler = handlers.get(task)
                    if handler is None:
                        handler = resolve_task(task)
                        handlers[task] = handler
                    reply = ("ok", handler(state, *args))
                except BaseException as error:
                    reply = (
                        "error",
                        type(error).__module__,
                        type(error).__name__,
                        str(error),
                        traceback.format_exc(),
                    )
                try:
                    send_message(connection, reply)
                except OSError:
                    break
        finally:
            with contextlib.suppress(OSError):
                connection.close()
            with self._lock:
                if connection in self._connections:
                    self._connections.remove(connection)


def serve(address: str) -> None:
    """Blocking daemon entry point for ``repro worker --listen``."""
    from repro.distributed.protocol import parse_address

    host, port = parse_address(address, listen=True)
    server = WorkerServer(host, port)
    server.start()
    print(f"repro worker listening on {server.address_text}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
