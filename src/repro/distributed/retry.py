"""Bounded retry with backoff, shared by every worker transport.

One policy object covers the whole error-path surface: the TCP pool
uses it for connection establishment, the in-process pool's inline
fallback uses the *same* object for transient task failures, so the
error-path tests exercise one code path regardless of transport.

Only *transient* errors are retried — :class:`OSError` (which covers
``ConnectionError`` and ``socket.timeout``) and :class:`TimeoutError`.
Library errors (:class:`ReproError` subclasses) are never retried: a
worker that raised ``DataError`` will raise it again, and retrying a
:class:`ParallelError` would hide a dead worker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.exceptions import ParallelError, ReproError

T = TypeVar("T")

#: Exception types worth retrying: infrastructure hiccups, not logic.
TRANSIENT_ERRORS = (OSError, TimeoutError)


@dataclass(frozen=True)
class RetryPolicy:
    """Timeouts and bounded retry for worker connections and calls.

    ``connect_timeout`` bounds a single connection attempt,
    ``read_timeout`` bounds each blocking read while waiting for a
    worker's reply (``None`` waits forever), ``attempts`` is the total
    number of tries (1 = no retry), and ``backoff`` is the initial sleep
    between tries, doubled each retry.
    """

    connect_timeout: float = 5.0
    read_timeout: float | None = 120.0
    attempts: int = 3
    backoff: float = 0.1

    def __post_init__(self) -> None:
        if self.connect_timeout <= 0:
            raise ParallelError("connect_timeout must be positive")
        if self.read_timeout is not None and self.read_timeout <= 0:
            raise ParallelError("read_timeout must be positive or None")
        if self.attempts < 1:
            raise ParallelError("attempts must be at least 1")
        if self.backoff < 0:
            raise ParallelError("backoff must be non-negative")

    def call(self, action: Callable[[], T]) -> T:
        """Run ``action``, retrying transient errors up to ``attempts``.

        :class:`ReproError` subclasses propagate immediately even though
        ``TimeoutError``/``OSError`` appear in their MRO context — the
        transient check explicitly excludes the library hierarchy.
        """
        delay = self.backoff
        last_error: BaseException | None = None
        for attempt in range(self.attempts):
            try:
                return action()
            except TRANSIENT_ERRORS as error:
                if isinstance(error, ReproError):
                    raise
                last_error = error
                if attempt + 1 < self.attempts and delay > 0:
                    time.sleep(delay)
                    delay *= 2
        assert last_error is not None
        raise last_error


#: The default policy used when callers don't pass one explicitly.
DEFAULT_RETRY = RetryPolicy()
